//! The `→_k` preorder over the entities of a training database — the spine
//! of Lemma 5.4, Algorithm 1 (classification) and Algorithm 2 (optimal
//! approximate relabeling).
//!
//! For entities `e, e'` define `e ⪯ e'` iff `(D, e) →_k (D, e')`, i.e.
//! `e' ∈ q_e(D)` for the (possibly astronomically large) canonical feature
//! query `q_e` of Lemma 5.4. The preorder's equivalence classes are the
//! `GHW(k)`-indistinguishability classes; its topological sort yields the
//! implicit chain statistic `Π = (q_{e_1}, …, q_{e_m})` that the paper's
//! algorithms use *without materializing it*.

use crate::cache::GameCache;
use interrupt::{Interrupt, Stop};
use relational::{Database, Val};

/// The computed preorder `⪯` over a list of elements of one database.
#[derive(Clone, Debug)]
pub struct CoverPreorder {
    pub k: usize,
    /// The elements, in the order the matrix is indexed by.
    pub elems: Vec<Val>,
    /// `leq[i][j] = (D, elems[i]) →_k (D, elems[j])`.
    pub leq: Vec<Vec<bool>>,
    /// Equivalence class id of each element (classes are `⪯`-mutual sets).
    pub class_of: Vec<usize>,
    /// Classes in topological order: `class i ⪯ class j` implies `i ≤ j`
    /// in this ordering. Each class lists element indices.
    pub classes: Vec<Vec<usize>>,
}

impl CoverPreorder {
    /// Compute the preorder over `elems` (typically `η(D)`).
    ///
    /// Cost: one cover-game analysis per ordered pair — `O(|elems|²)`
    /// polynomial-time game solves, exactly as in Theorem 5.3's test.
    /// The solves fan out over all cores (one shared [`UnionSkeleton`])
    /// and memoize through the process-wide [`crate::cache::global`]
    /// table, so re-sweeping an unchanged database is nearly free.
    pub fn compute(d: &Database, elems: &[Val], k: usize) -> CoverPreorder {
        Self::compute_with(d, elems, k, crate::cache::global())
    }

    /// [`CoverPreorder::compute`] against a caller-supplied cache —
    /// for tests and for callers that want an isolated lifetime or
    /// capacity.
    pub fn compute_with(d: &Database, elems: &[Val], k: usize, cache: &GameCache) -> CoverPreorder {
        Self::compute_inner(d, elems, k, cache, None)
            .expect("uninterruptible preorder sweep cannot stop")
    }

    /// Interruptible [`CoverPreorder::compute_with`]: every pairwise game
    /// observes `intr`. Workers that trip mid-batch report a filler
    /// verdict; stickiness means the post-fan-in re-check below sees the
    /// trip, discards the whole (possibly bogus) matrix, and propagates
    /// [`Stop`]. Completed games keep their cache entries, so a re-run on
    /// the same cache resumes where the sweep left off.
    pub fn compute_int(
        d: &Database,
        elems: &[Val],
        k: usize,
        cache: &GameCache,
        intr: &Interrupt,
    ) -> Result<CoverPreorder, Stop> {
        Self::compute_inner(d, elems, k, cache, Some(intr))
    }

    fn compute_inner(
        d: &Database,
        elems: &[Val],
        k: usize,
        cache: &GameCache,
        intr: Option<&Interrupt>,
    ) -> Result<CoverPreorder, Stop> {
        if let Some(h) = intr {
            h.check()?;
        }
        let n = elems.len();
        // One skeleton for all n² games (the unions depend only on D).
        let skeleton = crate::skeleton::UnionSkeleton::build(d, k);
        let cells: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .filter(|&(i, j)| i != j)
            .collect();
        let verdicts = relational::hom::par::par_map(&cells, |&(i, j)| match intr {
            None => cache.implies_with_skeleton(d, &[elems[i]], d, &[elems[j]], &skeleton),
            Some(h) => cache
                .implies_with_skeleton_int(d, &[elems[i]], d, &[elems[j]], &skeleton, h)
                .unwrap_or(false),
        });
        if let Some(h) = intr {
            // The sticky re-check that makes the filler verdicts safe.
            h.check()?;
        }
        let mut leq = vec![vec![false; n]; n];
        for (i, row) in leq.iter_mut().enumerate() {
            row[i] = true;
        }
        for (&(i, j), v) in cells.iter().zip(verdicts) {
            leq[i][j] = v;
        }
        Ok(Self::from_matrix(elems.to_vec(), leq, k))
    }

    /// The original sequential, uncached sweep. Kept as the reference
    /// implementation for the agreement property tests and the engine
    /// benchmarks.
    pub fn compute_seq(d: &Database, elems: &[Val], k: usize) -> CoverPreorder {
        let n = elems.len();
        let skeleton = crate::skeleton::UnionSkeleton::build(d, k);
        let mut leq = vec![vec![false; n]; n];
        for i in 0..n {
            for j in 0..n {
                leq[i][j] = i == j
                    || crate::game::CoverGame::analyze_with_skeleton(
                        d,
                        &[elems[i]],
                        d,
                        &[elems[j]],
                        &skeleton,
                    )
                    .duplicator_wins();
            }
        }
        Self::from_matrix(elems.to_vec(), leq, k)
    }

    /// Build the class structure from a precomputed matrix (exposed for
    /// tests and for reuse by callers that batch the game solves).
    pub fn from_matrix(elems: Vec<Val>, leq: Vec<Vec<bool>>, k: usize) -> CoverPreorder {
        let n = elems.len();
        // Equivalence classes: mutual ⪯.
        let mut class_of = vec![usize::MAX; n];
        let mut reps: Vec<usize> = Vec::new();
        for i in 0..n {
            let found = reps.iter().position(|&r| leq[i][r] && leq[r][i]);
            match found {
                Some(c) => class_of[i] = c,
                None => {
                    class_of[i] = reps.len();
                    reps.push(i);
                }
            }
        }
        // Topological sort of classes by ⪯ (Kahn on the strict order).
        let m = reps.len();
        let mut edges = vec![vec![false; m]; m]; // edges[c][d]: c ⪯ d, c != d
        for (c, &rc) in reps.iter().enumerate() {
            for (e, &re) in reps.iter().enumerate() {
                if c != e && leq[rc][re] {
                    edges[c][e] = true;
                }
            }
        }
        let mut indeg: Vec<usize> = (0..m)
            .map(|e| (0..m).filter(|&c| edges[c][e]).count())
            .collect();
        let mut order: Vec<usize> = Vec::with_capacity(m);
        let mut ready: Vec<usize> = (0..m).filter(|&e| indeg[e] == 0).collect();
        while let Some(c) = ready.pop() {
            order.push(c);
            for e in 0..m {
                if edges[c][e] {
                    indeg[e] -= 1;
                    if indeg[e] == 0 {
                        ready.push(e);
                    }
                }
            }
        }
        debug_assert_eq!(order.len(), m, "preorder classes must be acyclic");

        // Renumber classes by topological position.
        let mut topo_pos = vec![0usize; m];
        for (pos, &c) in order.iter().enumerate() {
            topo_pos[c] = pos;
        }
        let mut classes: Vec<Vec<usize>> = vec![Vec::new(); m];
        for i in 0..n {
            class_of[i] = topo_pos[class_of[i]];
            classes[class_of[i]].push(i);
        }
        CoverPreorder {
            k,
            elems,
            leq,
            class_of,
            classes,
        }
    }

    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// A representative element index of class `c` (the first member).
    pub fn representative(&self, c: usize) -> usize {
        self.classes[c][0]
    }

    /// Is class `c` ⪯ class `d`? (Well-defined on classes.)
    pub fn class_leq(&self, c: usize, d: usize) -> bool {
        self.leq[self.representative(c)][self.representative(d)]
    }

    /// The ±1 feature vector of class `c` under the implicit chain
    /// statistic `Π = (q_{e_1}, …, q_{e_m})` of Lemma 5.4: component `j`
    /// is `+1` iff `e_j ⪯ e_c`, i.e. `e_c ∈ q_{e_j}(D)`.
    pub fn chain_vector(&self, c: usize) -> Vec<i32> {
        (0..self.class_count())
            .map(|j| if self.class_leq(j, c) { 1 } else { -1 })
            .collect()
    }

    /// Evaluate the implicit statistic on a *new* element of an evaluation
    /// database: component `j` is `+1` iff `(D, e_j) →_k (D', f)` (the key
    /// step of Algorithm 1, lines 3–9).
    pub fn chain_vector_for(&self, d: &Database, d2: &Database, f: Val) -> Vec<i32> {
        self.chain_vector_for_with(d, d2, f, crate::cache::global())
    }

    /// [`CoverPreorder::chain_vector_for`] against a caller-supplied
    /// cache (an engine's own table instead of the process-wide one).
    pub fn chain_vector_for_with(
        &self,
        d: &Database,
        d2: &Database,
        f: Val,
        cache: &GameCache,
    ) -> Vec<i32> {
        (0..self.class_count())
            .map(|j| {
                let rep = self.elems[self.representative(j)];
                if cache.implies(d, &[rep], d2, &[f], self.k) {
                    1
                } else {
                    -1
                }
            })
            .collect()
    }

    /// Interruptible [`CoverPreorder::chain_vector_for_with`]: each of
    /// the `class_count` games observes `intr`; the partial vector is
    /// discarded on [`Stop`].
    pub fn chain_vector_for_int(
        &self,
        d: &Database,
        d2: &Database,
        f: Val,
        cache: &GameCache,
        intr: &Interrupt,
    ) -> Result<Vec<i32>, Stop> {
        (0..self.class_count())
            .map(|j| {
                let rep = self.elems[self.representative(j)];
                Ok(if cache.implies_int(d, &[rep], d2, &[f], self.k, intr)? {
                    1
                } else {
                    -1
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{DbBuilder, Schema};

    fn graph(edges: &[(&str, &str)], entities: &[&str]) -> Database {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        let mut b = DbBuilder::new(s);
        for &(x, y) in edges {
            b = b.fact("E", &[x, y]);
        }
        for &e in entities {
            b = b.entity(e);
        }
        b.build()
    }

    #[test]
    fn path_gives_distinct_singleton_classes() {
        let d = graph(&[("1", "2"), ("2", "3")], &["1", "2", "3"]);
        let pre = CoverPreorder::compute(&d, &d.entities(), 1);
        assert_eq!(pre.class_count(), 3);
        assert!(pre.classes.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn cycle_elements_collapse_to_one_class() {
        let d = graph(&[("a", "b"), ("b", "c"), ("c", "a")], &["a", "b", "c"]);
        for k in 1..=2 {
            let pre = CoverPreorder::compute(&d, &d.entities(), k);
            assert_eq!(pre.class_count(), 1, "k={k}");
            assert_eq!(pre.classes[0].len(), 3);
        }
    }

    #[test]
    fn topological_order_respects_preorder() {
        // Two disjoint out-stars of different sizes plus an isolated
        // entity: star-2 center ⪯ ... relationships vary; just check the
        // topological invariant on whatever structure comes out.
        let d = graph(
            &[
                ("a", "a1"),
                ("a", "a2"),
                ("b", "b1"),
                ("c", "c1"),
                ("c", "c2"),
            ],
            &["a", "b", "c", "z"],
        );
        let pre = CoverPreorder::compute(&d, &d.entities(), 1);
        for c in 0..pre.class_count() {
            for e in 0..pre.class_count() {
                if pre.class_leq(c, e) && c != e {
                    assert!(c < e, "topological violation: {c} ⪯ {e}");
                }
            }
        }
    }

    #[test]
    fn chain_vectors_are_monotone() {
        // e ⪯ e' implies chain_vector(e) ≤ chain_vector(e') pointwise.
        let d = graph(&[("1", "2"), ("2", "3"), ("3", "4")], &["1", "2", "3", "4"]);
        let pre = CoverPreorder::compute(&d, &d.entities(), 1);
        for c in 0..pre.class_count() {
            let vc = pre.chain_vector(c);
            assert_eq!(vc[c], 1, "class selects its own feature");
            for e in 0..pre.class_count() {
                if pre.class_leq(c, e) {
                    let ve = pre.chain_vector(e);
                    for j in 0..vc.len() {
                        assert!(vc[j] <= ve[j]);
                    }
                }
            }
        }
    }

    #[test]
    fn chain_vector_for_matches_training_side() {
        // Evaluating the implicit statistic on the training database
        // itself must reproduce chain_vector.
        let d = graph(&[("1", "2"), ("2", "3")], &["1", "2", "3"]);
        let pre = CoverPreorder::compute(&d, &d.entities(), 1);
        for (i, &e) in pre.elems.iter().enumerate() {
            let via_eval = pre.chain_vector_for(&d, &d, e);
            let via_class = pre.chain_vector(pre.class_of[i]);
            assert_eq!(via_eval, via_class);
        }
    }

    #[test]
    fn isolated_entities_share_a_class() {
        let d = graph(&[("a", "b")], &["x", "y", "a"]);
        let pre = CoverPreorder::compute(&d, &d.entities(), 1);
        let xi = pre
            .elems
            .iter()
            .position(|&v| d.val_name(v) == "x")
            .unwrap();
        let yi = pre
            .elems
            .iter()
            .position(|&v| d.val_name(v) == "y")
            .unwrap();
        let ai = pre
            .elems
            .iter()
            .position(|&v| d.val_name(v) == "a")
            .unwrap();
        assert_eq!(pre.class_of[xi], pre.class_of[yi]);
        assert_ne!(pre.class_of[xi], pre.class_of[ai]);
    }
}
