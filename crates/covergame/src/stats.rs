//! Global instrumentation counters for the cover-game engine, mirroring
//! `relational::hom::stats` one layer up the stack.
//!
//! The fixpoint solver ([`crate::game::CoverGame`]) counts the positions
//! it enumerated and the sweeps its greatest-fixpoint computation took,
//! and flushes them here once per analysis; the memo cache
//! ([`crate::cache`]) contributes hit/miss counts. [`GameStats`]
//! snapshots the lot, so a caller (the CLI `--stats` flag, the bench
//! harness) can difference two snapshots around a region of interest.
//!
//! Counters are process-global atomics: cheap to bump from the parallel
//! driver's worker threads and aggregated without any locking.

use std::sync::atomic::{AtomicU64, Ordering};

static GAMES_SOLVED: AtomicU64 = AtomicU64::new(0);
static POSITIONS_EXPLORED: AtomicU64 = AtomicU64::new(0);
static FIXPOINT_SWEEPS: AtomicU64 = AtomicU64::new(0);

/// Flush one analysis's worth of counters (called by the solver).
pub(crate) fn record_game(positions: u64, sweeps: u64) {
    GAMES_SOLVED.fetch_add(1, Ordering::Relaxed);
    POSITIONS_EXPLORED.fetch_add(positions, Ordering::Relaxed);
    FIXPOINT_SWEEPS.fetch_add(sweeps, Ordering::Relaxed);
}

/// A point-in-time aggregate of the cover-game engine counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GameStats {
    /// Full game analyses run (cache misses included, cache hits
    /// excluded — a hit runs no fixpoint).
    pub games_solved: u64,
    /// Duplicator positions enumerated across all analyses.
    pub positions_explored: u64,
    /// Greatest-fixpoint sweeps over the position table.
    pub fixpoint_sweeps: u64,
    /// Memo-cache hits (verdicts served without an analysis).
    pub cache_hits: u64,
    /// Memo-cache misses (verdicts computed and then memoized).
    pub cache_misses: u64,
}

impl GameStats {
    /// Read all counters now.
    pub fn snapshot() -> GameStats {
        let cache = crate::cache::global();
        GameStats {
            games_solved: GAMES_SOLVED.load(Ordering::Relaxed),
            positions_explored: POSITIONS_EXPLORED.load(Ordering::Relaxed),
            fixpoint_sweeps: FIXPOINT_SWEEPS.load(Ordering::Relaxed),
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
        }
    }

    /// Counter deltas since an earlier snapshot (saturating, so a
    /// concurrent reset cannot produce bogus huge values).
    pub fn since(&self, earlier: &GameStats) -> GameStats {
        GameStats {
            games_solved: self.games_solved.saturating_sub(earlier.games_solved),
            positions_explored: self
                .positions_explored
                .saturating_sub(earlier.positions_explored),
            fixpoint_sweeps: self.fixpoint_sweeps.saturating_sub(earlier.fixpoint_sweeps),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
        }
    }

    /// Human-readable multi-line report (used by the CLI's `--stats`).
    pub fn report(&self) -> String {
        let lookups = self.cache_hits + self.cache_misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64 * 100.0
        };
        format!(
            "cover-game engine stats:\n\
             \x20 games solved:        {}\n\
             \x20 positions explored:  {}\n\
             \x20 fixpoint sweeps:     {}\n\
             \x20 cache hits:          {}\n\
             \x20 cache misses:        {}\n\
             \x20 cache hit rate:      {hit_rate:.1}%",
            self.games_solved,
            self.positions_explored,
            self.fixpoint_sweeps,
            self.cache_hits,
            self.cache_misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::cover_implies;
    use relational::{DbBuilder, Schema};

    #[test]
    fn analyses_bump_the_counters() {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        let c3 = DbBuilder::new(s.clone())
            .fact("E", &["a", "b"])
            .fact("E", &["b", "c"])
            .fact("E", &["c", "a"])
            .build();
        let p = DbBuilder::new(s)
            .fact("E", &["x", "y"])
            .fact("E", &["y", "z"])
            .build();
        let before = GameStats::snapshot();
        let a = c3.val_by_name("a").unwrap();
        let x = p.val_by_name("x").unwrap();
        // Spoiler wins this one, which takes at least one sweep.
        assert!(!cover_implies(&c3, &[a], &p, &[x], 1));
        let delta = GameStats::snapshot().since(&before);
        assert!(delta.games_solved >= 1, "delta={delta:?}");
        assert!(delta.positions_explored >= 1, "delta={delta:?}");
        assert!(delta.fixpoint_sweeps >= 1, "delta={delta:?}");
    }

    #[test]
    fn report_mentions_every_counter() {
        let st = GameStats {
            games_solved: 1,
            positions_explored: 2,
            fixpoint_sweeps: 3,
            cache_hits: 5,
            cache_misses: 5,
        };
        let r = st.report();
        for needle in [
            "games solved",
            "positions",
            "sweeps",
            "hits",
            "misses",
            "50.0%",
        ] {
            assert!(r.contains(needle), "missing {needle:?} in {r}");
        }
    }
}
