//! A sharded, concurrent, size-capped memo table for `→_k` verdicts —
//! the cover-game twin of `relational::hom::cache`.
//!
//! The paper's algorithms repeat the same game question exactly the way
//! they repeat plain hom questions: the separability test probes pairs
//! the preorder sweep re-asks, classification replays training-side games
//! per evaluation entity, and Algorithm 2's relabeling re-runs the whole
//! preorder on a database whose *content* has not changed. Keys are
//! `(from.fingerprint(), to.fingerprint(), ā, b̄, k)`, so equal-content
//! databases (clones, relabelings) share entries.
//!
//! The table is split into [`SHARDS`] independently locked shards and
//! verdicts are computed *outside* the shard lock, so the parallel
//! driver's workers never serialize on one another's game solves. Each
//! shard keeps two generations of entries (insert into the current one,
//! rotate when full, promote previous-generation hits), bounding total
//! size at ~2× the configured capacity while keeping the hot working set
//! resident — the same policy as the hom cache, documented there.

use crate::game::CoverGame;
use crate::skeleton::UnionSkeleton;
use crate::stats::GameStats;
use interrupt::{Interrupt, Stop};
use relational::{Containment, Database, Lineage, Val};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Shard count; a small power of two comfortably above typical worker
/// counts so lock contention stays negligible.
const SHARDS: usize = 16;

/// Default total entry capacity (split across shards; the two-generation
/// scheme holds at most ~2× this many entries).
pub const DEFAULT_CAPACITY: usize = 1 << 20;

type Key = (u128, u128, Vec<Val>, Vec<Val>, usize);

/// One shard's two generations of memoized verdicts.
#[derive(Default)]
struct Generations {
    cur: HashMap<Key, bool>,
    prev: HashMap<Key, bool>,
}

impl Generations {
    fn insert(&mut self, key: Key, ans: bool, cap: usize) {
        if self.cur.len() >= cap && !self.cur.contains_key(&key) {
            self.prev = std::mem::take(&mut self.cur);
        }
        self.cur.insert(key, ans);
    }
}

/// The memo table. Most callers use the process-wide [`global`] instance
/// via [`cover_implies_cached`]; independent instances exist for tests
/// and for callers that want isolated lifetimes or capacities.
pub struct GameCache {
    shards: Vec<Mutex<Generations>>,
    per_shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    // Per-cache game-effort counters, bumped only by analyses this cache
    // itself ran (its miss and uncached paths) — the cover-game twin of
    // the per-cache counters on `relational::HomCache`, making an
    // isolated `Engine` a self-contained stats domain.
    games: AtomicU64,
    positions: AtomicU64,
    sweeps: AtomicU64,
    /// Entries imported from a persisted table (see `import_entry`).
    restored: AtomicU64,
    /// Verdicts served by delta subsumption instead of a fresh analysis
    /// (see [`GameCache::implies_sub`]); counted as neither hit nor miss.
    sub_hits: AtomicU64,
}

impl GameCache {
    pub fn new() -> GameCache {
        GameCache::with_capacity(DEFAULT_CAPACITY)
    }

    /// A cache holding roughly `capacity` entries (at most ~2× across the
    /// two generations) before old entries start aging out.
    pub fn with_capacity(capacity: usize) -> GameCache {
        GameCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(Generations::default()))
                .collect(),
            per_shard_cap: (capacity / SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            games: AtomicU64::new(0),
            positions: AtomicU64::new(0),
            sweeps: AtomicU64::new(0),
            restored: AtomicU64::new(0),
            sub_hits: AtomicU64::new(0),
        }
    }

    /// Run one analysis, note its effort against this cache's counters,
    /// and return the verdict.
    fn solve_counted(&self, game: &CoverGame) -> bool {
        self.games.fetch_add(1, Ordering::Relaxed);
        self.positions
            .fetch_add(game.position_count(), Ordering::Relaxed);
        self.sweeps
            .fetch_add(game.sweeps() as u64, Ordering::Relaxed);
        game.duplicator_wins()
    }

    /// Memoized `(D, ā) →_k (D', b̄)`. Builds a fresh [`UnionSkeleton`]
    /// on a miss; batch callers replaying many games over one left-hand
    /// database should use [`GameCache::implies_with_skeleton`].
    pub fn implies(&self, d: &Database, a: &[Val], d2: &Database, b: &[Val], k: usize) -> bool {
        self.lookup_or(d, a, d2, b, k, || {
            self.solve_counted(&CoverGame::analyze(d, a, d2, b, k))
        })
    }

    /// [`GameCache::implies`] with delta subsumption: on an exact-key
    /// miss, verdicts cached for lineage ancestors of either database are
    /// consulted under the monotone rules of `subsumed_via` before a
    /// fresh analysis. Subsumption-served verdicts count only in
    /// [`GameCache::subsumption_hits`].
    pub fn implies_sub(
        &self,
        d: &Database,
        a: &[Val],
        d2: &Database,
        b: &[Val],
        k: usize,
        lineage: Option<&Lineage>,
    ) -> bool {
        self.lookup_or_sub(d, a, d2, b, k, lineage, || {
            self.solve_counted(&CoverGame::analyze(d, a, d2, b, k))
        })
    }

    /// [`GameCache::implies_with_skeleton`] with delta subsumption.
    pub fn implies_with_skeleton_sub(
        &self,
        d: &Database,
        a: &[Val],
        d2: &Database,
        b: &[Val],
        skeleton: &UnionSkeleton,
        lineage: Option<&Lineage>,
    ) -> bool {
        self.lookup_or_sub(d, a, d2, b, skeleton.k, lineage, || {
            self.solve_counted(&CoverGame::analyze_with_skeleton(d, a, d2, b, skeleton))
        })
    }

    /// Interruptible [`GameCache::implies_sub`].
    #[allow(clippy::too_many_arguments)]
    pub fn implies_sub_int(
        &self,
        d: &Database,
        a: &[Val],
        d2: &Database,
        b: &[Val],
        k: usize,
        lineage: Option<&Lineage>,
        intr: &Interrupt,
    ) -> Result<bool, Stop> {
        self.lookup_or_sub_int(d, a, d2, b, k, lineage, || {
            CoverGame::analyze_int(d, a, d2, b, k, intr).map(|g| self.solve_counted(&g))
        })
    }

    /// Interruptible [`GameCache::implies_with_skeleton_sub`].
    #[allow(clippy::too_many_arguments)]
    pub fn implies_with_skeleton_sub_int(
        &self,
        d: &Database,
        a: &[Val],
        d2: &Database,
        b: &[Val],
        skeleton: &UnionSkeleton,
        lineage: Option<&Lineage>,
        intr: &Interrupt,
    ) -> Result<bool, Stop> {
        self.lookup_or_sub_int(d, a, d2, b, skeleton.k, lineage, || {
            CoverGame::analyze_with_skeleton_int(d, a, d2, b, skeleton, intr)
                .map(|g| self.solve_counted(&g))
        })
    }

    /// Interruptible [`GameCache::implies`]: hits return instantly;
    /// misses run an interruptible analysis and do **not** insert
    /// anything when the analysis is stopped, so the table never holds a
    /// verdict from a truncated fixpoint.
    pub fn implies_int(
        &self,
        d: &Database,
        a: &[Val],
        d2: &Database,
        b: &[Val],
        k: usize,
        intr: &Interrupt,
    ) -> Result<bool, Stop> {
        self.lookup_or_int(d, a, d2, b, k, || {
            CoverGame::analyze_int(d, a, d2, b, k, intr).map(|g| self.solve_counted(&g))
        })
    }

    /// Interruptible [`GameCache::implies_with_skeleton`]; same
    /// no-insert-on-stop guarantee as [`GameCache::implies_int`].
    pub fn implies_with_skeleton_int(
        &self,
        d: &Database,
        a: &[Val],
        d2: &Database,
        b: &[Val],
        skeleton: &UnionSkeleton,
        intr: &Interrupt,
    ) -> Result<bool, Stop> {
        self.lookup_or_int(d, a, d2, b, skeleton.k, || {
            CoverGame::analyze_with_skeleton_int(d, a, d2, b, skeleton, intr)
                .map(|g| self.solve_counted(&g))
        })
    }

    /// Interruptible [`GameCache::implies_uncached`].
    pub fn implies_uncached_int(
        &self,
        d: &Database,
        a: &[Val],
        d2: &Database,
        b: &[Val],
        k: usize,
        intr: &Interrupt,
    ) -> Result<bool, Stop> {
        self.misses.fetch_add(1, Ordering::Relaxed);
        CoverGame::analyze_int(d, a, d2, b, k, intr).map(|g| self.solve_counted(&g))
    }

    /// Interruptible [`GameCache::implies_with_skeleton_uncached`].
    pub fn implies_with_skeleton_uncached_int(
        &self,
        d: &Database,
        a: &[Val],
        d2: &Database,
        b: &[Val],
        skeleton: &UnionSkeleton,
        intr: &Interrupt,
    ) -> Result<bool, Stop> {
        self.misses.fetch_add(1, Ordering::Relaxed);
        CoverGame::analyze_with_skeleton_int(d, a, d2, b, skeleton, intr)
            .map(|g| self.solve_counted(&g))
    }

    /// [`GameCache::implies`] minus the memo table: counted as a miss and
    /// solved afresh, but the table is neither consulted nor updated —
    /// the `no_cache` execution mode of an engine.
    pub fn implies_uncached(
        &self,
        d: &Database,
        a: &[Val],
        d2: &Database,
        b: &[Val],
        k: usize,
    ) -> bool {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.solve_counted(&CoverGame::analyze(d, a, d2, b, k))
    }

    /// [`GameCache::implies_with_skeleton`] minus the memo table.
    pub fn implies_with_skeleton_uncached(
        &self,
        d: &Database,
        a: &[Val],
        d2: &Database,
        b: &[Val],
        skeleton: &UnionSkeleton,
    ) -> bool {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.solve_counted(&CoverGame::analyze_with_skeleton(d, a, d2, b, skeleton))
    }

    /// Memoized `(D, ā) →_k (D', b̄)` reusing a prebuilt skeleton of
    /// `(d, skeleton.k)` for the miss path. The skeleton does not enter
    /// the key: it is a pure function of `(d, k)`, which the fingerprint
    /// and `k` already determine.
    pub fn implies_with_skeleton(
        &self,
        d: &Database,
        a: &[Val],
        d2: &Database,
        b: &[Val],
        skeleton: &UnionSkeleton,
    ) -> bool {
        self.lookup_or(d, a, d2, b, skeleton.k, || {
            self.solve_counted(&CoverGame::analyze_with_skeleton(d, a, d2, b, skeleton))
        })
    }

    /// Exact-key probe with previous-generation promotion; counts a hit.
    fn probe_exact(&self, key: &Key) -> Option<bool> {
        let shard = &self.shards[Self::shard_of(key)];
        let mut g = shard.lock().unwrap();
        if let Some(&ans) = g.cur.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(ans);
        }
        if let Some(ans) = g.prev.remove(key) {
            g.insert(key.clone(), ans, self.per_shard_cap);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(ans);
        }
        None
    }

    /// Read-only probe of either generation — no promotion, no counters.
    fn peek(&self, key: &Key) -> Option<bool> {
        let g = self.shards[Self::shard_of(key)].lock().unwrap();
        g.cur.get(key).or_else(|| g.prev.get(key)).copied()
    }

    fn store(&self, key: Key, ans: bool) {
        let shard = &self.shards[Self::shard_of(&key)];
        shard.lock().unwrap().insert(key, ans, self.per_shard_cap);
    }

    /// Try to answer `key` from verdicts cached for lineage ancestors.
    /// `(D, ā) →_k (D', b̄)` says every ≤k-cover of `ā` in `D` is matched
    /// by one of `b̄` in `D'` — duplicator's options grow with `D'` and
    /// spoiler's with `D`, so the verdict is monotone in the right-hand
    /// database and antitone in the left, the exact shape of the hom
    /// rules (documented on `relational::HomCache`):
    ///
    /// * right side: positive from an ancestor `A ⊆ D'` carries up;
    ///   negative from `A ⊇ D'` carries down;
    /// * left side: positive from `A ⊇ D` restricts; negative from
    ///   `A ⊆ D` extends.
    ///
    /// The pinned tuples `ā`/`b̄` carry over verbatim: `Val`s are
    /// append-only interned indices, stable along any edit chain.
    fn subsumed_via(&self, key: &Key, lineage: &Lineage) -> Option<bool> {
        for (anc, cont) in lineage.ancestors(key.1) {
            if let Some(ans) = self.peek(&(key.0, anc, key.2.clone(), key.3.clone(), key.4)) {
                match cont {
                    Containment::Subset if ans => return Some(true),
                    Containment::Superset if !ans => return Some(false),
                    _ => {}
                }
            }
        }
        for (anc, cont) in lineage.ancestors(key.0) {
            if let Some(ans) = self.peek(&(anc, key.1, key.2.clone(), key.3.clone(), key.4)) {
                match cont {
                    Containment::Superset if ans => return Some(true),
                    Containment::Subset if !ans => return Some(false),
                    _ => {}
                }
            }
        }
        None
    }

    fn try_subsume(&self, key: &Key, lineage: Option<&Lineage>) -> Option<bool> {
        let lineage = lineage.filter(|l| !l.no_edges())?;
        let ans = self.subsumed_via(key, lineage)?;
        self.sub_hits.fetch_add(1, Ordering::Relaxed);
        // Promote to an exact entry: the next query is a plain hit.
        self.store(key.clone(), ans);
        Some(ans)
    }

    #[allow(clippy::too_many_arguments)]
    fn lookup_or_sub(
        &self,
        d: &Database,
        a: &[Val],
        d2: &Database,
        b: &[Val],
        k: usize,
        lineage: Option<&Lineage>,
        solve: impl FnOnce() -> bool,
    ) -> bool {
        let key: Key = (d.fingerprint(), d2.fingerprint(), a.to_vec(), b.to_vec(), k);
        if let Some(ans) = self.probe_exact(&key) {
            return ans;
        }
        if let Some(ans) = self.try_subsume(&key, lineage) {
            return ans;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Solve with the lock released; a fixpoint analysis must not
        // serialize unrelated lookups on this shard. Two threads may race
        // to compute the same key; both get the same verdict.
        let ans = solve();
        self.store(key, ans);
        ans
    }

    fn lookup_or(
        &self,
        d: &Database,
        a: &[Val],
        d2: &Database,
        b: &[Val],
        k: usize,
        solve: impl FnOnce() -> bool,
    ) -> bool {
        self.lookup_or_sub(d, a, d2, b, k, None, solve)
    }

    /// The interruptible twin of [`GameCache::lookup_or_sub`]: a stopped
    /// solve propagates [`Stop`] and leaves the table untouched.
    #[allow(clippy::too_many_arguments)]
    fn lookup_or_sub_int(
        &self,
        d: &Database,
        a: &[Val],
        d2: &Database,
        b: &[Val],
        k: usize,
        lineage: Option<&Lineage>,
        solve: impl FnOnce() -> Result<bool, Stop>,
    ) -> Result<bool, Stop> {
        let key: Key = (d.fingerprint(), d2.fingerprint(), a.to_vec(), b.to_vec(), k);
        if let Some(ans) = self.probe_exact(&key) {
            return Ok(ans);
        }
        if let Some(ans) = self.try_subsume(&key, lineage) {
            return Ok(ans);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let ans = solve()?;
        self.store(key, ans);
        Ok(ans)
    }

    fn lookup_or_int(
        &self,
        d: &Database,
        a: &[Val],
        d2: &Database,
        b: &[Val],
        k: usize,
        solve: impl FnOnce() -> Result<bool, Stop>,
    ) -> Result<bool, Stop> {
        self.lookup_or_sub_int(d, a, d2, b, k, None, solve)
    }

    fn shard_of(key: &Key) -> usize {
        let mut h = key.0 as u64 ^ (key.0 >> 64) as u64 ^ (key.1 as u64).rotate_left(32);
        for v in key.2.iter().chain(key.3.iter()) {
            h = h
                .rotate_left(13)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(v.index() as u64);
        }
        h = h.rotate_left(7).wrapping_add(key.4 as u64);
        (h as usize) % SHARDS
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Verdicts served by delta subsumption (neither hit nor miss).
    pub fn subsumption_hits(&self) -> u64 {
        self.sub_hits.load(Ordering::Relaxed)
    }

    /// Number of memoized verdicts (both generations; they are disjoint).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let g = s.lock().unwrap();
                g.cur.len() + g.prev.len()
            })
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity (entries across all shards; the table can
    /// transiently hold up to ~2× this while both generations are full).
    pub fn capacity(&self) -> usize {
        self.per_shard_cap * SHARDS
    }

    /// Drop all memoized verdicts (counters are left running).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut g = s.lock().unwrap();
            g.cur.clear();
            g.prev.clear();
        }
    }

    /// This cache's own counters as a [`GameStats`]: analysis effort from
    /// its miss/uncached paths plus its hit/miss counts — attributable to
    /// exactly the queries routed through this cache instance, unlike the
    /// process-global [`GameStats::snapshot`].
    pub fn stats(&self) -> GameStats {
        GameStats {
            games_solved: self.games.load(Ordering::Relaxed),
            positions_explored: self.positions.load(Ordering::Relaxed),
            fixpoint_sweeps: self.sweeps.load(Ordering::Relaxed),
            cache_hits: self.hits(),
            cache_misses: self.misses(),
        }
    }

    /// Zero every counter (the memo table itself is untouched).
    pub fn reset_stats(&self) {
        for c in [
            &self.hits,
            &self.misses,
            &self.games,
            &self.positions,
            &self.sweeps,
            &self.restored,
            &self.sub_hits,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Entries imported from a persisted table since the last
    /// [`GameCache::reset_stats`].
    pub fn restored(&self) -> u64 {
        self.restored.load(Ordering::Relaxed)
    }

    /// Dump every memoized verdict for persistence.
    #[allow(clippy::type_complexity)]
    pub fn export_entries(&self) -> Vec<(u128, u128, Vec<Val>, Vec<Val>, usize, bool)> {
        let mut out = Vec::new();
        for s in &self.shards {
            let g = s.lock().unwrap();
            for (k, &ans) in g.cur.iter().chain(g.prev.iter()) {
                out.push((k.0, k.1, k.2.clone(), k.3.clone(), k.4, ans));
            }
        }
        out
    }

    /// Insert one persisted verdict. Fingerprints are content hashes, so
    /// a restored verdict is valid for any database with the same
    /// content; the import counts as neither a hit nor a miss, only as
    /// `restored`.
    pub fn import_entry(
        &self,
        d_fp: u128,
        d2_fp: u128,
        a: Vec<Val>,
        b: Vec<Val>,
        k: usize,
        ans: bool,
    ) {
        let key: Key = (d_fp, d2_fp, a, b, k);
        let shard = &self.shards[Self::shard_of(&key)];
        shard.lock().unwrap().insert(key, ans, self.per_shard_cap);
        self.restored.fetch_add(1, Ordering::Relaxed);
    }
}

impl Default for GameCache {
    fn default() -> GameCache {
        GameCache::new()
    }
}

static GLOBAL: OnceLock<Arc<GameCache>> = OnceLock::new();

/// The process-wide cache instance used by the legacy (engine-less)
/// entry points and `Engine::global()`.
pub fn global() -> &'static GameCache {
    GLOBAL.get_or_init(|| Arc::new(GameCache::new()))
}

/// The global cache as a shared handle, so an `Engine` can co-own it.
pub fn global_arc() -> Arc<GameCache> {
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(GameCache::new())))
}

/// Memoized [`crate::game::cover_implies`] through the [`global`] cache.
pub fn cover_implies_cached(d: &Database, a: &[Val], d2: &Database, b: &[Val], k: usize) -> bool {
    global().implies(d, a, d2, b, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::cover_implies;
    use relational::{DbBuilder, Schema};

    fn graph(edges: &[(&str, &str)]) -> Database {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        let mut b = DbBuilder::new(s);
        for &(x, y) in edges {
            b = b.fact("E", &[x, y]);
        }
        b.build()
    }

    fn v(d: &Database, n: &str) -> Val {
        d.val_by_name(n).unwrap()
    }

    #[test]
    fn second_lookup_is_a_hit() {
        let cache = GameCache::new();
        let c3 = graph(&[("a", "b"), ("b", "c"), ("c", "a")]);
        let p = graph(&[("1", "2"), ("2", "3")]);
        let (a, one) = (v(&c3, "a"), v(&p, "1"));
        assert!(!cache.implies(&c3, &[a], &p, &[one], 1));
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        assert!(!cache.implies(&c3, &[a], &p, &[one], 1));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn k_is_part_of_the_key() {
        let c3 = graph(&[("a", "b"), ("b", "c"), ("c", "a")]);
        let c2 = graph(&[("x", "y"), ("y", "x")]);
        let cache = GameCache::new();
        // C3 ->_1 C2 holds but ->_2 fails: distinct entries, no clash.
        assert!(cache.implies(&c3, &[], &c2, &[], 1));
        assert!(!cache.implies(&c3, &[], &c2, &[], 2));
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn equal_content_clones_share_entries() {
        let cache = GameCache::new();
        let p = graph(&[("s", "t")]);
        let q = p.clone();
        let (s, t) = (v(&p, "s"), v(&p, "t"));
        assert!(!cache.implies(&p, &[s], &p, &[t], 1));
        assert!(!cache.implies(&q, &[s], &q, &[t], 1));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn skeleton_and_plain_paths_share_entries() {
        let p = graph(&[("s", "t")]);
        let (s, t) = (v(&p, "s"), v(&p, "t"));
        let cache = GameCache::new();
        let skeleton = UnionSkeleton::build(&p, 1);
        let first = cache.implies_with_skeleton(&p, &[t], &p, &[s], &skeleton);
        assert_eq!(first, cover_implies(&p, &[t], &p, &[s], 1));
        assert_eq!(cache.implies(&p, &[t], &p, &[s], 1), first);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn subsumption_reuses_verdicts_across_deltas() {
        use relational::{Delta, Lineage};
        let cache = GameCache::new();
        let lineage = Lineage::new();
        let d = graph(&[("a", "b"), ("b", "c"), ("c", "a")]); // 3-cycle
        let mut d2 = graph(&[("x", "y"), ("y", "x")]); // 2-cycle
        let positive = cache.implies_sub(&d, &[], &d2, &[], 1, Some(&lineage));
        assert!(positive, "C3 ->_1 C2 holds");
        // Enrich the right side: duplicator only gains options.
        d2.apply_via(&Delta::new().add_fact("E", &["y", "z"]), &lineage)
            .unwrap();
        assert!(cache.implies_sub(&d, &[], &d2, &[], 1, Some(&lineage)));
        assert_eq!(cache.misses(), 1, "no fresh analysis after the append");
        assert_eq!(cache.subsumption_hits(), 1);
        // Against the cold solver: subsumption was exact.
        assert!(cover_implies(&d, &[], &d2, &[], 1));

        // Negative verdicts survive right-side deletions.
        let d3 = graph(&[("a", "b"), ("b", "c"), ("c", "a")]);
        let mut poor = graph(&[("x", "y"), ("y", "x")]);
        assert!(!cache.implies_sub(&d3, &[], &poor, &[], 2, Some(&lineage)));
        poor.apply_via(&Delta::new().remove_fact("E", &["y", "x"]), &lineage)
            .unwrap();
        assert!(!cache.implies_sub(&d3, &[], &poor, &[], 2, Some(&lineage)));
        assert_eq!(cache.subsumption_hits(), 2);
        assert!(!cover_implies(&d3, &[], &poor, &[], 2));
    }

    #[test]
    fn subsumption_respects_direction_for_games() {
        use relational::{Delta, Lineage};
        let cache = GameCache::new();
        let lineage = Lineage::new();
        // Positive with a pinned tuple, then delete from the RIGHT side:
        // the positive may not carry over, and the fresh analysis gives
        // the true (now negative) verdict.
        let d = graph(&[("s", "t")]);
        let mut d2 = graph(&[("u", "v")]);
        let (s, u) = (v(&d, "s"), v(&d2, "u"));
        assert!(cache.implies_sub(&d, &[s], &d2, &[u], 1, Some(&lineage)));
        d2.apply_via(&Delta::new().remove_fact("E", &["u", "v"]), &lineage)
            .unwrap();
        let after = cache.implies_sub(&d, &[s], &d2, &[u], 1, Some(&lineage));
        assert_eq!(after, cover_implies(&d, &[s], &d2, &[u], 1));
        assert_eq!(cache.subsumption_hits(), 0);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn eviction_bounds_size_and_preserves_correctness() {
        // Per-shard capacity 1: constant churn. Every verdict must still
        // match the uncached solver, before and after eviction.
        let cache = GameCache::with_capacity(SHARDS);
        assert_eq!(cache.capacity(), SHARDS);
        let d = graph(&[("1", "2"), ("2", "3"), ("3", "4")]);
        let dom: Vec<Val> = d.dom().collect();
        for &a in &dom {
            for &b in &dom {
                assert_eq!(
                    cache.implies(&d, &[a], &d, &[b], 1),
                    cover_implies(&d, &[a], &d, &[b], 1),
                    "cold"
                );
            }
        }
        assert!(
            cache.len() <= 2 * cache.capacity(),
            "len {} > 2×cap {}",
            cache.len(),
            2 * cache.capacity()
        );
        for &a in &dom {
            for &b in &dom {
                assert_eq!(
                    cache.implies(&d, &[a], &d, &[b], 1),
                    cover_implies(&d, &[a], &d, &[b], 1),
                    "re-query after eviction"
                );
            }
        }
    }
}
