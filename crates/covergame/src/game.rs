//! Deciding `(D, ā) →_k (D', b̄)`: the greatest-fixpoint solver for the
//! existential k-cover game (union-jump formulation; see the crate docs).
//!
//! The solver records, for every killed position, *when* it died and
//! *which* union Spoiler should jump to from it (the witness). Those
//! records are exactly a Spoiler winning strategy, which [`crate::extract`]
//! unfolds into a distinguishing `GHW(k)` query.

use crate::skeleton::UnionSkeleton;
use interrupt::{Interrupt, Stop};
use relational::{Database, Val};
use std::collections::HashMap;

/// One candidate pebble region: the element set of a union of ≤ k facts.
#[derive(Clone, Debug)]
pub struct Union {
    /// Sorted element set.
    pub elems: Vec<Val>,
    /// Indices (into `D.facts()`) of all facts fully inside
    /// `elems ∪ ā` that involve at least one element of `elems`.
    pub facts_inside: Vec<usize>,
    /// Indices of ≤ k facts whose union of elements is exactly `elems`
    /// (the cover that generated this region; used for width bookkeeping).
    pub cover: Vec<usize>,
}

/// A Duplicator response at a union: the images of `elems`, parallel to
/// `Union::elems`, plus death bookkeeping.
#[derive(Clone, Debug)]
pub struct Position {
    pub map: Vec<Val>,
    /// `None` while alive. `Some((seq, w))`: the `seq`-th kill overall,
    /// because union `w` admits no surviving agreeing response. Every
    /// agreeing response on `w` died with a strictly smaller `seq` — the
    /// well-foundedness that strategy extraction recurses on.
    pub death: Option<(u32, u32)>,
}

/// The fully analyzed game for one `(D, ā) → (D', b̄)` instance.
pub struct CoverGame<'a> {
    pub d: &'a Database,
    pub d2: &'a Database,
    pub k: usize,
    pub a: Vec<Val>,
    pub b: Vec<Val>,
    /// `ā → b̄` as a consistent map; `None` if `ā → b̄` is not a function
    /// or violates some fact inside `ā` (then Spoiler wins outright).
    base: Option<HashMap<Val, Val>>,
    pub unions: Vec<Union>,
    pub positions: Vec<Vec<Position>>,
    /// A union with no surviving positions, if any (Spoiler's opening).
    pub spoiler_opening: Option<u32>,
    sweeps: u32,
}

impl<'a> CoverGame<'a> {
    /// Analyze the game. Exhaustive for fixed `k` and arity: the number of
    /// regions is `O(|D|^k)` and responses per region are bounded by
    /// `|dom(D')|^{k·arity}` before the partial-homomorphism pruning.
    pub fn analyze(
        d: &'a Database,
        a: &[Val],
        d2: &'a Database,
        b: &[Val],
        k: usize,
    ) -> CoverGame<'a> {
        let skeleton = UnionSkeleton::build(d, k);
        CoverGame::analyze_with_skeleton(d, a, d2, b, &skeleton)
    }

    /// Interruptible [`CoverGame::analyze`]: the position exploration and
    /// every fixpoint sweep observe `intr` at bounded intervals. On
    /// [`Stop`] the partial effort (positions enumerated, sweeps run so
    /// far) is still flushed to the global stats; the half-built game is
    /// discarded.
    pub fn analyze_int(
        d: &'a Database,
        a: &[Val],
        d2: &'a Database,
        b: &[Val],
        k: usize,
        intr: &Interrupt,
    ) -> Result<CoverGame<'a>, Stop> {
        intr.check()?;
        let skeleton = UnionSkeleton::build(d, k);
        CoverGame::analyze_inner(d, a, d2, b, &skeleton, Some(intr))
    }

    /// Analyze reusing a prebuilt [`UnionSkeleton`] of `(d, k)`. The
    /// paper's algorithms solve `O(|η(D)|²)` games over one database —
    /// sharing the skeleton removes the dominant per-game setup cost.
    pub fn analyze_with_skeleton(
        d: &'a Database,
        a: &[Val],
        d2: &'a Database,
        b: &[Val],
        skeleton: &UnionSkeleton,
    ) -> CoverGame<'a> {
        CoverGame::analyze_inner(d, a, d2, b, skeleton, None)
            .expect("uninterruptible analysis cannot stop")
    }

    /// Interruptible [`CoverGame::analyze_with_skeleton`].
    pub fn analyze_with_skeleton_int(
        d: &'a Database,
        a: &[Val],
        d2: &'a Database,
        b: &[Val],
        skeleton: &UnionSkeleton,
        intr: &Interrupt,
    ) -> Result<CoverGame<'a>, Stop> {
        CoverGame::analyze_inner(d, a, d2, b, skeleton, Some(intr))
    }

    fn analyze_inner(
        d: &'a Database,
        a: &[Val],
        d2: &'a Database,
        b: &[Val],
        skeleton: &UnionSkeleton,
        intr: Option<&Interrupt>,
    ) -> Result<CoverGame<'a>, Stop> {
        assert_eq!(a.len(), b.len(), "distinguished tuples must align");
        assert_eq!(d.schema(), d2.schema(), "cover game requires one schema");

        if let Some(i) = intr {
            i.check()?;
        }

        let mut game = CoverGame {
            d,
            d2,
            k: skeleton.k,
            a: a.to_vec(),
            b: b.to_vec(),
            base: None,
            unions: Vec::new(),
            positions: Vec::new(),
            spoiler_opening: None,
            sweeps: 0,
        };

        game.base = game.check_base();
        if game.base.is_none() {
            // Spoiler wins before any position exists.
            crate::stats::record_game(0, 0);
            return Ok(game);
        }
        game.instantiate_unions(skeleton);
        let run = game
            .build_positions(intr)
            .and_then(|()| game.fixpoint(&skeleton.neighbors, intr));
        // Flush effort whether the analysis completed or was stopped:
        // partial work is still attributable work.
        let positions: u64 = game.positions.iter().map(|p| p.len() as u64).sum();
        crate::stats::record_game(positions, game.sweeps as u64);
        run.map(|()| game)
    }

    /// Does Duplicator win, i.e. does `(D, ā) →_k (D', b̄)` hold?
    pub fn duplicator_wins(&self) -> bool {
        self.base.is_some() && self.spoiler_opening.is_none()
    }

    /// Number of fixpoint sweeps performed (diagnostics / benches).
    pub fn sweeps(&self) -> u32 {
        self.sweeps
    }

    /// Total positions enumerated across all unions (diagnostics; the
    /// same figure `analyze` flushes into the global stats).
    pub fn position_count(&self) -> u64 {
        self.positions.iter().map(|p| p.len() as u64).sum()
    }

    /// The base map `ā → b̄` (None when inconsistent).
    pub fn base_map(&self) -> Option<&HashMap<Val, Val>> {
        self.base.as_ref()
    }

    /// `ā → b̄` must be a function, and every fact of `D` inside `ā` must
    /// map to a fact of `D'`.
    fn check_base(&self) -> Option<HashMap<Val, Val>> {
        let mut m: HashMap<Val, Val> = HashMap::new();
        for (&x, &y) in self.a.iter().zip(self.b.iter()) {
            if let Some(prev) = m.insert(x, y) {
                if prev != y {
                    return None;
                }
            }
        }
        for f in self.d.facts() {
            if f.args.iter().all(|v| m.contains_key(v)) {
                let args: Vec<Val> = f.args.iter().map(|v| m[v]).collect();
                if !self.d2.has_fact(f.rel, &args) {
                    return None;
                }
            }
        }
        Some(m)
    }

    /// Instantiate the per-game unions from the shared skeleton: the
    /// element sets and inner facts are copied; a boundary fact joins iff
    /// its outside arguments are all covered by the distinguished tuple.
    fn instantiate_unions(&mut self, skeleton: &UnionSkeleton) {
        let base = self.base.as_ref().unwrap();
        self.unions = skeleton
            .unions
            .iter()
            .map(|su| {
                let mut facts_inside = su.inner_facts.clone();
                for &fi in &su.boundary_facts {
                    let f = self.d.fact(fi);
                    let ok = f
                        .args
                        .iter()
                        .all(|v| su.elems.binary_search(v).is_ok() || base.contains_key(v));
                    if ok {
                        facts_inside.push(fi);
                    }
                }
                facts_inside.sort_unstable();
                Union {
                    elems: su.elems.clone(),
                    facts_inside,
                    cover: su.cover.clone(),
                }
            })
            .collect();
    }

    /// Enumerate all valid Duplicator responses at every union. With an
    /// interrupt handle, the DFS stops between node expansions; the
    /// partially filled position table stays on `self` for accounting.
    fn build_positions(&mut self, intr: Option<&Interrupt>) -> Result<(), Stop> {
        let base = self.base.clone().unwrap();
        for u in &self.unions {
            let mut maps: Vec<Vec<Val>> = Vec::new();
            let mut cur: Vec<Option<Val>> = vec![None; u.elems.len()];
            let run = self.enumerate_maps(u, &base, 0, &mut cur, &mut maps, intr);
            self.positions.push(
                maps.into_iter()
                    .map(|map| Position { map, death: None })
                    .collect(),
            );
            run?;
        }
        Ok(())
    }

    /// DFS over assignments of `u.elems`, pruning with facts whose
    /// arguments are fully decided. Observes `intr` once per node
    /// expansion (the same cadence as the hom backtracker).
    fn enumerate_maps(
        &self,
        u: &Union,
        base: &HashMap<Val, Val>,
        i: usize,
        cur: &mut Vec<Option<Val>>,
        out: &mut Vec<Vec<Val>>,
        intr: Option<&Interrupt>,
    ) -> Result<(), Stop> {
        if let Some(h) = intr {
            h.check()?;
        }
        if i == u.elems.len() {
            out.push(cur.iter().map(|x| x.unwrap()).collect());
            return Ok(());
        }
        let e = u.elems[i];
        let choices: Vec<Val> = match base.get(&e) {
            Some(&fixed) => vec![fixed],
            None => self.d2.dom().collect(),
        };
        for c in choices {
            cur[i] = Some(c);
            if self.consistent_so_far(u, base, cur, i) {
                self.enumerate_maps(u, base, i + 1, cur, out, intr)?;
            }
        }
        cur[i] = None;
        Ok(())
    }

    /// Check all inside-facts whose arguments are decided once position `i`
    /// is assigned (an argument is decided if it is `ā` or `≤ i` in elems).
    fn consistent_so_far(
        &self,
        u: &Union,
        base: &HashMap<Val, Val>,
        cur: &[Option<Val>],
        i: usize,
    ) -> bool {
        let value = |v: Val| -> Option<Val> {
            match u.elems.binary_search(&v) {
                Ok(pos) => cur[pos],
                Err(_) => base.get(&v).copied(),
            }
        };
        'facts: for &fi in &u.facts_inside {
            let f = self.d.fact(fi);
            // Only re-check facts that involve the just-assigned element;
            // earlier facts were checked at earlier depths.
            if !f.args.contains(&u.elems[i]) {
                continue;
            }
            let mut args = Vec::with_capacity(f.args.len());
            for &v in &f.args {
                match value(v) {
                    Some(x) => args.push(x),
                    None => continue 'facts,
                }
            }
            if !self.d2.has_fact(f.rel, &args) {
                return false;
            }
        }
        true
    }

    /// The greatest fixpoint: repeatedly kill positions that some
    /// neighboring union refutes; if a union runs dry, every remaining
    /// position (and the empty starting position) dies with that union as
    /// witness.
    fn fixpoint(
        &mut self,
        neighbors: &[crate::skeleton::NeighborRow],
        intr: Option<&Interrupt>,
    ) -> Result<(), Stop> {
        let n = self.unions.len();
        if n == 0 {
            return Ok(());
        }
        let mut alive_count: Vec<usize> = self.positions.iter().map(|p| p.len()).collect();

        let mut seq = 0u32;
        let mut sweeps = 0u32;
        loop {
            sweeps += 1;
            self.sweeps = sweeps;
            let mut changed = false;
            for ui in 0..n {
                // One check per union per sweep: each row below scans
                // `neighbors × positions`, so this bounds the interval
                // between checks without taxing the innermost loop.
                if let Some(h) = intr {
                    h.check()?;
                }
                for hi in 0..self.positions[ui].len() {
                    if self.positions[ui][hi].death.is_some() {
                        continue;
                    }
                    let mut killer: Option<u32> = None;
                    for (vi, pairs) in &neighbors[ui] {
                        let vi_us = *vi as usize;
                        let ok = self.positions[vi_us].iter().any(|p2| {
                            p2.death.is_none()
                                && pairs.iter().all(|&(i, j)| {
                                    self.positions[ui][hi].map[i as usize] == p2.map[j as usize]
                                })
                        });
                        if !ok {
                            killer = Some(*vi);
                            break;
                        }
                    }
                    if let Some(w) = killer {
                        self.positions[ui][hi].death = Some((seq, w));
                        seq += 1;
                        alive_count[ui] -= 1;
                        changed = true;
                    }
                }
            }
            if let Some(zero) = (0..n).find(|&ui| alive_count[ui] == 0) {
                // Spoiler wins: jumping to the dry union defeats every
                // still-alive position, so kill them all with it as the
                // witness; extraction then has a total, well-founded
                // strategy (the dry union's own positions all died with
                // smaller sequence numbers).
                for ui in 0..n {
                    for p in &mut self.positions[ui] {
                        if p.death.is_none() {
                            p.death = Some((seq, zero as u32));
                            seq += 1;
                        }
                    }
                }
                self.spoiler_opening = Some(zero as u32);
                return Ok(());
            }
            if !changed {
                return Ok(());
            }
        }
    }
}

/// `(D, ā) →_k (D', b̄)`: does every `GHW(k)` query satisfied at `ā`
/// transfer to `b̄` (Proposition 5.2)?
pub fn cover_implies(d: &Database, a: &[Val], d2: &Database, b: &[Val], k: usize) -> bool {
    CoverGame::analyze(d, a, d2, b, k).duplicator_wins()
}

/// Interruptible [`cover_implies`].
pub fn cover_implies_int(
    d: &Database,
    a: &[Val],
    d2: &Database,
    b: &[Val],
    k: usize,
    intr: &Interrupt,
) -> Result<bool, Stop> {
    Ok(CoverGame::analyze_int(d, a, d2, b, k, intr)?.duplicator_wins())
}

/// Mutual `→_k`: the entities are `GHW(k)`-indistinguishable.
pub fn cover_equivalent(d: &Database, a: Val, d2: &Database, b: Val, k: usize) -> bool {
    cover_implies(d, &[a], d2, &[b], k) && cover_implies(d2, &[b], d, &[a], k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{homomorphism_exists, DbBuilder, Schema};

    fn graph(edges: &[(&str, &str)]) -> Database {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        let mut b = DbBuilder::new(s);
        for &(x, y) in edges {
            b = b.fact("E", &[x, y]);
        }
        b.build()
    }

    fn v(d: &Database, n: &str) -> Val {
        d.val_by_name(n).unwrap()
    }

    #[test]
    fn hom_implies_cover_for_all_k() {
        let p2 = graph(&[("a", "b"), ("b", "c")]);
        let c3 = graph(&[("x", "y"), ("y", "z"), ("z", "x")]);
        // p2 -> c3 exists, so ->_k must hold for every k.
        for k in 1..=3 {
            assert!(cover_implies(&p2, &[v(&p2, "a")], &c3, &[v(&c3, "x")], k));
        }
    }

    #[test]
    fn k1_and_pointed_cycles() {
        // With a distinguished element the free point is "for free": facts
        // among pebbles AND the point count. Pebbling the single fact
        // {b,c} of the triangle puts all three triangle edges in scope, so
        // even k=1 forces Duplicator to realize a triangle through the
        // image point.
        let c3 = graph(&[("a", "b"), ("b", "c"), ("c", "a")]);
        let p6 = graph(&[("1", "2"), ("2", "3"), ("3", "4"), ("4", "5"), ("5", "6")]);
        // Hom p6 -> c3 with 1 -> a exists, so ->_1 holds.
        assert!(homomorphism_exists(&p6, &c3, &[]));
        assert!(cover_implies(&p6, &[v(&p6, "1")], &c3, &[v(&c3, "a")], 1));
        // (C3,a) ->_1 (P6,1) fails: the GHW(1) query
        // q(x) :- E(x,y), E(y,z), E(z,x) (bag {y,z} covered by E(y,z))
        // holds at a but at no path element.
        assert!(!cover_implies(&c3, &[v(&c3, "a")], &p6, &[v(&p6, "1")], 1));
        assert!(!homomorphism_exists(&c3, &p6, &[]));
    }

    #[test]
    fn cover_k_is_monotone_decreasing_in_k() {
        // ->_{k+1} ⊆ ->_k : if Duplicator wins with more constrained
        // Spoiler... i.e. winning at k+1 implies winning at k.
        let c4 = graph(&[("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")]);
        let c2 = graph(&[("x", "y"), ("y", "x")]);
        for (from, fa, to, ta) in [(&c4, "a", &c2, "x"), (&c2, "x", &c4, "a")] {
            let mut prev = true;
            for k in 1..=3 {
                let now = cover_implies(from, &[v(from, fa)], to, &[v(to, ta)], k);
                if !prev {
                    assert!(!now, "->_k not antitone in k at k={k}");
                }
                prev = now;
            }
        }
    }

    #[test]
    fn boolean_cycles_separate_at_the_right_width() {
        // Boolean (no distinguished tuple) comparisons of C2 and C3.
        let c3 = graph(&[("a", "b"), ("b", "c"), ("c", "a")]);
        let c2 = graph(&[("x", "y"), ("y", "x")]);
        // C2 ->_1 C3 fails already: the 2-cycle query ∃xy E(x,y)∧E(y,x)
        // has ghw 1 (bag {x,y} covered by one atom) and C3 has no 2-cycle.
        assert!(!cover_implies(&c2, &[], &c3, &[], 1));
        // C3 ->_1 C2 holds: width-1 patterns cannot pin down the odd
        // cycle (Duplicator walks the 2-cycle).
        assert!(cover_implies(&c3, &[], &c2, &[], 1));
        // ...but the triangle query has ghw 2, so ->_2 fails.
        assert!(!cover_implies(&c3, &[], &c2, &[], 2));
        // Sanity: no homomorphism C3 -> C2 (odd cycle into bipartite).
        assert!(!homomorphism_exists(&c3, &c2, &[]));
    }

    #[test]
    fn inconsistent_base_fails() {
        let d = graph(&[("a", "b")]);
        let a = v(&d, "a");
        let b = v(&d, "b");
        // a -> a and a -> b simultaneously: not a function.
        assert!(!cover_implies(&d, &[a, a], &d, &[a, b], 1));
        // Fact inside ā violated: E(a,b) with (a,b) -> (b,a) needs E(b,a).
        assert!(!cover_implies(&d, &[a, b], &d, &[b, a], 1));
        // Identity works.
        assert!(cover_implies(&d, &[a, b], &d, &[a, b], 1));
    }

    #[test]
    fn empty_database_trivialities() {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        let d = relational::Database::new(s);
        assert!(cover_implies(&d, &[], &d, &[], 1));
    }

    #[test]
    fn equivalence_on_cycle_elements() {
        let c3 = graph(&[("a", "b"), ("b", "c"), ("c", "a")]);
        assert!(cover_equivalent(&c3, v(&c3, "a"), &c3, v(&c3, "b"), 2));
        let p2 = graph(&[("s", "t")]);
        assert!(!cover_equivalent(&p2, v(&p2, "s"), &p2, v(&p2, "t"), 1));
    }

    #[test]
    fn path_endpoint_hierarchy_k1() {
        // In a directed path 1->2->3->4, (D, i) ->_1 (D, j) iff the tree
        // queries at i transfer to j; "out-path of length L" is the
        // relevant family, so i ->_1 j iff out-length(j) >= out-length(i)
        // ... combined with in-lengths. Element 1: out 3, in 0.
        // Element 2: out 2, in 1. Tree queries at 1 include out-path-3,
        // which 2 lacks.
        let p = graph(&[("1", "2"), ("2", "3"), ("3", "4")]);
        assert!(!cover_implies(&p, &[v(&p, "1")], &p, &[v(&p, "2")], 1));
        assert!(!cover_implies(&p, &[v(&p, "2")], &p, &[v(&p, "1")], 1));
    }

    #[test]
    fn cover_agrees_with_hom_when_target_rich() {
        // Against a reflexive complete digraph every query holds
        // everywhere, so ->_k always holds.
        let k2 = graph(&[("u", "u"), ("u", "w"), ("w", "u"), ("w", "w")]);
        let any = graph(&[("a", "b"), ("b", "c"), ("c", "a"), ("a", "a")]);
        for k in 1..=2 {
            assert!(cover_implies(&any, &[v(&any, "a")], &k2, &[v(&k2, "u")], k));
        }
    }
}
