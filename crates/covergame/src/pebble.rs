//! The k-pebble (partial isomorphism) game: FO_k-indistinguishability.
//!
//! §8 of the paper shows the k-variable fragment FO_k has the
//! dimension-collapse property and its separability reduces to
//! FO_k-indistinguishability of entity pairs. Two pointed structures are
//! FO_k-equivalent iff Duplicator wins the classic k-pebble game with
//! **back-and-forth** moves and **partial isomorphism** positions (FO has
//! equality and negation, so positions must be injective and must reflect
//! facts, not merely preserve them).
//!
//! The solver is the textbook greatest fixpoint: start from all partial
//! isomorphisms of size ≤ k, repeatedly delete positions that fail the
//! forth/back extension property (when smaller than k) or whose immediate
//! subfunctions died. Position counts are `O((|dom| · |dom'|)^k)`, so this
//! is polynomial for fixed k.

use relational::{Database, Val};
use std::collections::{HashMap, HashSet};

/// The analyzed k-pebble game between two databases.
pub struct PebbleGame<'a> {
    pub d: &'a Database,
    pub d2: &'a Database,
    pub k: usize,
    /// All currently-alive positions (partial isomorphisms, sorted pair
    /// lists) after the fixpoint.
    alive: HashSet<Vec<(Val, Val)>>,
}

impl<'a> PebbleGame<'a> {
    pub fn analyze(d: &'a Database, d2: &'a Database, k: usize) -> PebbleGame<'a> {
        assert!(k >= 1, "pebble game needs k >= 1");
        assert_eq!(d.schema(), d2.schema(), "pebble game requires one schema");
        let mut game = PebbleGame {
            d,
            d2,
            k,
            alive: HashSet::new(),
        };
        game.build();
        game.fixpoint();
        game
    }

    /// Is the position `pairs` (≤ k pebbles) still winning for Duplicator?
    pub fn duplicator_wins(&self, pairs: &[(Val, Val)]) -> bool {
        let mut p = pairs.to_vec();
        p.sort_unstable();
        p.dedup();
        self.alive.contains(&p)
    }

    fn build(&mut self) {
        // Enumerate all partial isomorphisms of size 0..=k by extension.
        let dom1: Vec<Val> = self.d.dom().collect();
        let dom2: Vec<Val> = self.d2.dom().collect();
        let mut frontier: Vec<Vec<(Val, Val)>> = vec![Vec::new()];
        self.alive.insert(Vec::new());
        for _ in 0..self.k {
            let mut next = Vec::new();
            for p in &frontier {
                for &c in &dom1 {
                    if p.iter().any(|&(x, _)| x == c) {
                        continue;
                    }
                    for &e in &dom2 {
                        if p.iter().any(|&(_, y)| y == e) {
                            continue;
                        }
                        let mut np = p.clone();
                        np.push((c, e));
                        np.sort_unstable();
                        if self.alive.contains(&np) {
                            continue;
                        }
                        if self.is_partial_iso(&np) {
                            self.alive.insert(np.clone());
                            next.push(np);
                        }
                    }
                }
            }
            frontier = next;
        }
    }

    /// Partial isomorphism check: injectivity is structural (pairs have
    /// distinct components by construction); facts within the domain must
    /// map to facts, and facts within the image must pull back to facts.
    fn is_partial_iso(&self, pairs: &[(Val, Val)]) -> bool {
        let fwd: HashMap<Val, Val> = pairs.iter().copied().collect();
        let bwd: HashMap<Val, Val> = pairs.iter().map(|&(x, y)| (y, x)).collect();
        for &(c, _) in pairs {
            for &fi in self.d.facts_of_val(c) {
                let f = self.d.fact(fi);
                if f.args.iter().all(|v| fwd.contains_key(v)) {
                    let args: Vec<Val> = f.args.iter().map(|v| fwd[v]).collect();
                    if !self.d2.has_fact(f.rel, &args) {
                        return false;
                    }
                }
            }
        }
        for &(_, e) in pairs {
            for &fi in self.d2.facts_of_val(e) {
                let f = self.d2.fact(fi);
                if f.args.iter().all(|v| bwd.contains_key(v)) {
                    let args: Vec<Val> = f.args.iter().map(|v| bwd[v]).collect();
                    if !self.d.has_fact(f.rel, &args) {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn fixpoint(&mut self) {
        let dom1: Vec<Val> = self.d.dom().collect();
        let dom2: Vec<Val> = self.d2.dom().collect();
        loop {
            let mut dead: Vec<Vec<(Val, Val)>> = Vec::new();
            for p in &self.alive {
                if !self.position_ok(p, &dom1, &dom2) {
                    dead.push(p.clone());
                }
            }
            if dead.is_empty() {
                return;
            }
            for p in dead {
                self.alive.remove(&p);
            }
        }
    }

    fn position_ok(&self, p: &[(Val, Val)], dom1: &[Val], dom2: &[Val]) -> bool {
        // Immediate subfunctions must be alive (pebble removal).
        for i in 0..p.len() {
            let mut sub = p.to_vec();
            sub.remove(i);
            if !self.alive.contains(&sub) {
                return false;
            }
        }
        if p.len() == self.k {
            return true;
        }
        // Forth: every c has a partner d.
        for &c in dom1 {
            if p.iter().any(|&(x, _)| x == c) {
                continue;
            }
            let ok = dom2.iter().any(|&e| {
                if p.iter().any(|&(_, y)| y == e) {
                    return false;
                }
                let mut np = p.to_vec();
                np.push((c, e));
                np.sort_unstable();
                self.alive.contains(&np)
            });
            if !ok {
                return false;
            }
        }
        // Back: every e has a partner c.
        for &e in dom2 {
            if p.iter().any(|&(_, y)| y == e) {
                continue;
            }
            let ok = dom1.iter().any(|&c| {
                if p.iter().any(|&(x, _)| x == c) {
                    return false;
                }
                let mut np = p.to_vec();
                np.push((c, e));
                np.sort_unstable();
                self.alive.contains(&np)
            });
            if !ok {
                return false;
            }
        }
        true
    }
}

/// Are `(D, a)` and `(D', b)` indistinguishable by FO formulas with at
/// most `k` variables? (The free variable counts as one of the k, so this
/// needs `k ≥ 1`.)
pub fn pebble_equivalent(d: &Database, a: Val, d2: &Database, b: Val, k: usize) -> bool {
    PebbleGame::analyze(d, d2, k).duplicator_wins(&[(a, b)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{DbBuilder, Schema};

    fn graph(edges: &[(&str, &str)]) -> Database {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        let mut b = DbBuilder::new(s);
        for &(x, y) in edges {
            b = b.fact("E", &[x, y]);
        }
        b.build()
    }

    fn v(d: &Database, n: &str) -> Val {
        d.val_by_name(n).unwrap()
    }

    #[test]
    fn automorphic_elements_are_equivalent_at_every_k() {
        let c4 = graph(&[("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")]);
        for k in 1..=3 {
            assert!(pebble_equivalent(&c4, v(&c4, "a"), &c4, v(&c4, "c"), k));
        }
    }

    #[test]
    fn two_variables_distinguish_out_degrees() {
        // q(x) = ∃y E(x,y) uses 2 variables.
        let d = graph(&[("a", "b")]);
        assert!(!pebble_equivalent(&d, v(&d, "a"), &d, v(&d, "b"), 2));
        // With a single variable only E(x,x)-style atoms exist; a and b
        // are indistinguishable.
        assert!(pebble_equivalent(&d, v(&d, "a"), &d, v(&d, "b"), 1));
    }

    #[test]
    fn fo2_counts_less_than_fo3() {
        // Distinguishing "has ≥2 distinct out-neighbors" needs 3
        // variables when phrased with equality... with 2 variables and no
        // counting quantifiers, a 1-out-star and a 2-out-star center are
        // FO_2-equivalent? FO_2 *can* say ∃y E(x,y) but to say "two
        // distinct successors" needs y ≠ z — three variables.
        let d = graph(&[("a", "b"), ("u", "v1"), ("u", "v2")]);
        let a = v(&d, "a");
        let u = v(&d, "u");
        assert!(!pebble_equivalent(&d, a, &d, u, 3));
        // NOTE: FO_2 with equality can still distinguish them here via
        // back-moves counting pebbled neighborhoods; assert only the
        // FO_3 result and the monotonicity below.
        if pebble_equivalent(&d, a, &d, u, 2) {
            // FO_2-equivalence must then also hold at k=1 (fewer vars).
            assert!(pebble_equivalent(&d, a, &d, u, 1));
        }
    }

    #[test]
    fn equivalence_is_monotone_decreasing_in_k() {
        let d = graph(&[("a", "b"), ("b", "c"), ("c", "a"), ("x", "y"), ("y", "x")]);
        let mut prev = true;
        for k in 1..=3 {
            let now = pebble_equivalent(&d, v(&d, "a"), &d, v(&d, "x"), k);
            if !prev {
                assert!(!now, "FO_k-equivalence not antitone at k={k}");
            }
            prev = now;
        }
        // At k=3 the triangle is expressible: distinguished.
        assert!(!pebble_equivalent(&d, v(&d, "a"), &d, v(&d, "x"), 3));
    }

    #[test]
    fn structures_of_different_sizes() {
        // One loop vs two loops: FO_1 already separates nothing pointed
        // here (both points sit on a loop), but FO_2 sees the second
        // element.
        let one = graph(&[("l", "l")]);
        let two = graph(&[("l", "l"), ("m", "m")]);
        assert!(pebble_equivalent(&one, v(&one, "l"), &two, v(&two, "l"), 1));
        assert!(!pebble_equivalent(
            &one,
            v(&one, "l"),
            &two,
            v(&two, "l"),
            2
        ));
    }
}
