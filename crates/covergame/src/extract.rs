//! Unfolding Spoiler's winning strategy into a distinguishing `GHW(k)`
//! query (the constructive heart of Proposition 5.6).
//!
//! When `(D, e) ↛_k (D', e')`, Proposition 5.2 guarantees a CQ
//! `q(x) ∈ GHW(k)` with `e ∈ q(D)` and `e' ∉ q(D')`. The fixpoint solver
//! in [`crate::game`] leaves behind exactly the data needed to build one:
//! every killed position `(U, h)` records a witness union Spoiler should
//! jump to. The query is the tree unfolding of that strategy:
//!
//! * each tree node is a played union `U`, contributing fresh variables
//!   for `U`'s elements (glued with its parent on `U ∩ U_parent`; the
//!   distinguished element `e` is always the free variable `x`) and one
//!   atom per fact of `D` inside `U ∪ {e}`;
//! * a node's children are the witness unions of the Duplicator responses
//!   consistent with the path so far — children with identical
//!   `(witness, constraint)` are merged.
//!
//! The node bags (existential variables per node) form a tree
//! decomposition of width ≤ k by construction: each node's variables are
//! covered by the ≤ k facts whose union the node plays. Soundness
//! (`e ∈ q(D)`) is the identity embedding; completeness (`e' ∉ q(D')`)
//! is the descent argument — a counter-model homomorphism would trace an
//! infinite strictly-decreasing chain of kill sequence numbers.
//!
//! Sizes can be exponential (Theorem 5.7 shows they must be in the worst
//! case), so extraction takes a node budget and fails loudly.

use crate::game::CoverGame;
use cq::{Atom, Cq, TreeDecomposition, Var};
use relational::{Database, Val};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt;

/// Failure modes of query extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractError {
    /// `(D, e) →_k (D', e')` holds: no distinguishing query exists.
    DuplicatorWins,
    /// The strategy unfolding exceeded the node budget.
    Budget { nodes: usize },
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::DuplicatorWins => {
                write!(f, "no distinguishing GHW(k) query exists (Duplicator wins)")
            }
            ExtractError::Budget { nodes } => {
                write!(f, "extraction exceeded the node budget of {nodes}")
            }
        }
    }
}

impl std::error::Error for ExtractError {}

/// Extract a unary CQ `q(x) ∈ GHW(k)` with `e ∈ q(D)` and `e' ∉ q(D')`,
/// together with a width-≤-k tree decomposition witnessing membership.
///
/// `max_nodes` bounds the strategy-tree size (each node contributes at
/// most `k · arity` variables and a handful of atoms).
pub fn extract_distinguishing_query(
    d: &Database,
    e: Val,
    d2: &Database,
    e2: Val,
    k: usize,
    max_nodes: usize,
) -> Result<(Cq, TreeDecomposition), ExtractError> {
    let game = CoverGame::analyze(d, &[e], d2, &[e2], k);
    extract_from_game(&game, max_nodes)
}

/// Extraction from an already-analyzed game (single distinguished point).
pub fn extract_from_game(
    game: &CoverGame<'_>,
    max_nodes: usize,
) -> Result<(Cq, TreeDecomposition), ExtractError> {
    assert_eq!(game.a.len(), 1, "extraction handles unary queries");
    let e = game.a[0];
    let d = game.d;

    let mut builder = Builder {
        game,
        e,
        atoms: Vec::new(),
        bags: Vec::new(),
        edges: Vec::new(),
        next_var: 1, // Var(0) is the free variable x
        max_nodes,
    };

    // Facts living entirely on the distinguished element (e.g. η(e)):
    // they belong to every position, so add them once, globally.
    for &fi in d.facts_of_val(e) {
        let f = d.fact(fi);
        if f.args.iter().all(|&v| v == e) {
            builder
                .atoms
                .push(Atom::new(f.rel, f.args.iter().map(|_| Var(0)).collect()));
        }
    }

    if game.base_map().is_none() {
        // ā → b̄ itself is inconsistent: the e-only facts distinguish.
        let q = Cq::new(d.schema().clone(), vec![Var(0)], builder.atoms);
        let td = TreeDecomposition::single(BTreeSet::new());
        return Ok((q, td));
    }

    let root_union = match game.spoiler_opening {
        None => return Err(ExtractError::DuplicatorWins),
        Some(z) => z,
    };

    let root = builder.build_node(root_union, &BTreeMap::new(), &BTreeMap::new())?;
    debug_assert_eq!(root, 0);

    let q = Cq::new(d.schema().clone(), vec![Var(0)], builder.atoms);
    let td = TreeDecomposition {
        bags: builder.bags,
        edges: builder.edges,
    };
    Ok((q, td))
}

struct Builder<'g, 'a> {
    game: &'g CoverGame<'a>,
    e: Val,
    atoms: Vec<Atom>,
    bags: Vec<BTreeSet<Var>>,
    edges: Vec<(usize, usize)>,
    next_var: u32,
    max_nodes: usize,
}

impl Builder<'_, '_> {
    /// Create the query-tree node for playing `union_idx`, with `glue`
    /// giving the variables of elements shared with the parent and
    /// `constraint` the parent response restricted to those elements.
    /// Returns the decomposition node index.
    fn build_node(
        &mut self,
        union_idx: u32,
        glue: &BTreeMap<Val, Var>,
        constraint: &BTreeMap<Val, Val>,
    ) -> Result<usize, ExtractError> {
        if self.bags.len() >= self.max_nodes {
            return Err(ExtractError::Budget {
                nodes: self.max_nodes,
            });
        }
        let u = &self.game.unions[union_idx as usize];

        // Assign variables to the union's elements.
        let mut var_of: BTreeMap<Val, Var> = BTreeMap::new();
        for &el in &u.elems {
            let v = if el == self.e {
                Var(0)
            } else if let Some(&g) = glue.get(&el) {
                g
            } else {
                let v = Var(self.next_var);
                self.next_var += 1;
                v
            };
            var_of.insert(el, v);
        }

        // Node atoms: all facts of D inside U ∪ {e}.
        for &fi in &u.facts_inside {
            let f = self.game.d.fact(fi);
            let args: Vec<Var> = f
                .args
                .iter()
                .map(|&el| if el == self.e { Var(0) } else { var_of[&el] })
                .collect();
            self.atoms.push(Atom::new(f.rel, args));
        }

        // Bag: the existential variables of this node.
        let bag: BTreeSet<Var> = u
            .elems
            .iter()
            .filter(|&&el| el != self.e)
            .map(|el| var_of[el])
            .collect();
        let node = self.bags.len();
        self.bags.push(bag);

        // Children: one per distinct (witness, agreeing-response
        // restriction). Responses must agree with `constraint`.
        let mut spawned: HashSet<(u32, Vec<(Val, Val)>)> = HashSet::new();
        let positions = &self.game.positions[union_idx as usize];
        for pos in positions {
            let agrees = u
                .elems
                .iter()
                .enumerate()
                .all(|(i, el)| constraint.get(el).is_none_or(|&c| pos.map[i] == c));
            if !agrees {
                continue;
            }
            let (_, witness) = pos.death.expect("Spoiler wins, so every position is dead");
            let w = &self.game.unions[witness as usize];
            // Overlap between U and the witness union.
            let mut child_glue: BTreeMap<Val, Var> = BTreeMap::new();
            let mut child_constraint: BTreeMap<Val, Val> = BTreeMap::new();
            for (i, &el) in u.elems.iter().enumerate() {
                if w.elems.binary_search(&el).is_ok() {
                    child_glue.insert(el, var_of[&el]);
                    child_constraint.insert(el, pos.map[i]);
                }
            }
            let key: (u32, Vec<(Val, Val)>) = (
                witness,
                child_constraint.iter().map(|(&a, &b)| (a, b)).collect(),
            );
            if !spawned.insert(key) {
                continue;
            }
            let child = self.build_node(witness, &child_glue, &child_constraint)?;
            self.edges.push((node, child));
        }
        Ok(node)
    }
}

/// Convenience wrapper: extract queries distinguishing `e` from each
/// element of `others` (skipping those where Duplicator wins), returning
/// the conjunction — this is the `q_e(x) = ⋀_{e'} q_e^{e'}(x)` of
/// Lemma 5.4. The conjunction of GHW(k) queries stays in GHW(k).
pub fn lemma54_feature(
    d: &Database,
    e: Val,
    others: &[Val],
    k: usize,
    max_nodes: usize,
) -> Result<Cq, ExtractError> {
    let mut acc = Cq::entity_only(d.schema().clone());
    for &e2 in others {
        match extract_distinguishing_query(d, e, d, e2, k, max_nodes) {
            Ok((q, _)) => acc = acc.conjoin(&q),
            Err(ExtractError::DuplicatorWins) => {}
            Err(err) => return Err(err),
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::cover_implies;
    use cq::{evaluate_unary, selects};
    use relational::{DbBuilder, Schema};

    fn graph(edges: &[(&str, &str)], entities: &[&str]) -> Database {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        let mut b = DbBuilder::new(s);
        for &(x, y) in edges {
            b = b.fact("E", &[x, y]);
        }
        for &e in entities {
            b = b.entity(e);
        }
        b.build()
    }

    fn v(d: &Database, n: &str) -> Val {
        d.val_by_name(n).unwrap()
    }

    #[test]
    fn duplicator_win_yields_error() {
        let c3 = graph(&[("a", "b"), ("b", "c"), ("c", "a")], &[]);
        let err =
            extract_distinguishing_query(&c3, v(&c3, "a"), &c3, v(&c3, "b"), 1, 1000).unwrap_err();
        assert_eq!(err, ExtractError::DuplicatorWins);
    }

    #[test]
    fn path_source_vs_sink() {
        let p = graph(&[("s", "t")], &["s", "t"]);
        let s = v(&p, "s");
        let t = v(&p, "t");
        assert!(!cover_implies(&p, &[s], &p, &[t], 1));
        let (q, td) = extract_distinguishing_query(&p, s, &p, t, 1, 1000).unwrap();
        // The query must hold at s and fail at t.
        assert!(selects(&q, &p, s), "{q}");
        assert!(!selects(&q, &p, t), "{q}");
        // And be certified width ≤ 1.
        td.verify(&q, 1).unwrap();
    }

    #[test]
    fn base_violation_distinguishes_via_point_facts() {
        // e is an entity, e2 is not: η(e) itself distinguishes.
        let d = graph(&[("e", "f")], &["e"]);
        let e = v(&d, "e");
        let f = v(&d, "f");
        let (q, td) = extract_distinguishing_query(&d, e, &d, f, 1, 1000).unwrap();
        assert!(selects(&q, &d, e));
        assert!(!selects(&q, &d, f));
        td.verify(&q, 1).unwrap();
    }

    #[test]
    fn extracted_queries_distinguish_path_positions() {
        let p = graph(&[("1", "2"), ("2", "3"), ("3", "4")], &["1", "2", "3", "4"]);
        let names = ["1", "2", "3", "4"];
        for a in names {
            for b in names {
                if a == b {
                    continue;
                }
                let ea = v(&p, a);
                let eb = v(&p, b);
                if cover_implies(&p, &[ea], &p, &[eb], 1) {
                    continue;
                }
                let (q, td) = extract_distinguishing_query(&p, ea, &p, eb, 1, 10_000).unwrap();
                assert!(selects(&q, &p, ea), "q_{a},{b} must select {a}: {q}");
                assert!(!selects(&q, &p, eb), "q_{a},{b} must reject {b}: {q}");
                td.verify(&q, 1).unwrap();
            }
        }
    }

    #[test]
    fn width_two_extraction_on_cycles() {
        // Boolean-level: C2 vs C3 need width-1 only; pointed odd/even
        // cycle entities need width 2: on C5 vs C4... use C3 member vs a
        // long even cycle member at k=2.
        let c3 = graph(&[("a", "b"), ("b", "c"), ("c", "a")], &["a"]);
        let c4 = graph(&[("w", "x"), ("x", "y"), ("y", "z"), ("z", "w")], &["w"]);
        // Give both entity status in a merged database for a fair query.
        // (Separate databases work too: extraction supports D ≠ D'.)
        let a = v(&c3, "a");
        let w = v(&c4, "w");
        // Hmm: entity facts differ across the two databases (η(a) vs η(w)
        // both present), so the base is fine.
        assert!(!cover_implies(&c3, &[a], &c4, &[w], 2));
        let (q, td) = extract_distinguishing_query(&c3, a, &c4, w, 2, 50_000).unwrap();
        assert!(selects(&q, &c3, a));
        assert!(!selects(&q, &c4, w));
        td.verify(&q, 2).unwrap();
    }

    #[test]
    fn budget_is_respected() {
        let p = graph(
            &[("1", "2"), ("2", "3"), ("3", "4"), ("4", "5")],
            &["1", "5"],
        );
        let r = extract_distinguishing_query(&p, v(&p, "1"), &p, v(&p, "5"), 1, 1);
        match r {
            Err(ExtractError::Budget { nodes: 1 }) => {}
            Ok((q, _)) => {
                // A 1-node strategy may genuinely suffice; accept it if
                // it actually distinguishes.
                assert!(selects(&q, &p, v(&p, "1")));
                assert!(!selects(&q, &p, v(&p, "5")));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn lemma54_feature_round_trips_at_width_two() {
        // Triangle member vs 4-cycle member in one database: only width 2
        // separates them, and the conjoined feature must evaluate (via
        // the CQ engine) to exactly the →_2-upward closure — holding at
        // the separating entity, failing at the separated one.
        let d = graph(
            &[
                ("a", "b"),
                ("b", "c"),
                ("c", "a"),
                ("w", "x"),
                ("x", "y"),
                ("y", "z"),
                ("z", "w"),
            ],
            &["a", "w"],
        );
        let (a, w) = (v(&d, "a"), v(&d, "w"));
        assert!(!cover_implies(&d, &[a], &d, &[w], 2));
        let others = d.entities();
        let q = lemma54_feature(&d, a, &others, 2, 50_000).unwrap();
        let selected = evaluate_unary(&q, &d);
        assert!(selected.contains(&a), "q_a must hold at a: {q}");
        assert!(!selected.contains(&w), "q_a must fail at w: {q}");
    }

    #[test]
    fn lemma54_feature_selects_upward_closure() {
        // q_e selects exactly { e' : e ⪯ e' }.
        let p = graph(&[("1", "2"), ("2", "3")], &["1", "2", "3"]);
        for name in ["1", "2", "3"] {
            let e = v(&p, name);
            let others: Vec<Val> = p.entities();
            let q = lemma54_feature(&p, e, &others, 1, 10_000).unwrap();
            let selected = evaluate_unary(&q, &p);
            for &e2 in &others {
                let expect = cover_implies(&p, &[e], &p, &[e2], 1);
                assert_eq!(
                    selected.contains(&e2),
                    expect,
                    "q_{name} at {}",
                    p.val_name(e2)
                );
            }
        }
    }
}
