//! The pair-independent part of a cover-game analysis.
//!
//! A `→_k` analysis of `(D, a) → (D', b)` enumerates the unions of ≤ k
//! facts of `D`, their element sets, their contained facts, and the
//! overlap structure between unions. Everything except the facts touching
//! the distinguished element is a function of `(D, k)` alone — and the
//! paper's algorithms (the preorder of Lemma 5.4, Algorithm 1, Algorithm
//! 2) play `O(|η(D)|²)` games over one database. [`UnionSkeleton`] is
//! that shared part, built once and reused per game.

use relational::{Database, Val};
use std::collections::{BTreeSet, HashMap};

/// One union region, without the distinguished-element-dependent facts.
#[derive(Clone, Debug)]
pub struct SkeletonUnion {
    /// Sorted element set of the union.
    pub elems: Vec<Val>,
    /// A generating cover of ≤ k fact indices.
    pub cover: Vec<usize>,
    /// Facts of `D` with all arguments inside `elems`.
    pub inner_facts: Vec<usize>,
    /// Facts with ≥ 1 argument inside `elems` and ≥ 1 outside; whether
    /// they join a game depends on the distinguished tuple covering the
    /// outside arguments.
    pub boundary_facts: Vec<usize>,
}

/// One union's overlap adjacency: the overlapping unions and the aligned
/// index pairs `(i, j)` with `unions[u].elems[i] == unions[v].elems[j]`.
pub type NeighborRow = Vec<(u32, Vec<(u32, u32)>)>;

/// The shared skeleton: unions plus their overlap adjacency.
pub struct UnionSkeleton {
    pub k: usize,
    pub unions: Vec<SkeletonUnion>,
    /// For each union, its [`NeighborRow`].
    pub neighbors: Vec<NeighborRow>,
}

impl UnionSkeleton {
    /// Enumerate all unions of `1..=k` facts of `d` and precompute the
    /// overlap structure. `O(|D|^k)` regions for fixed `k`. With `k = 0`
    /// there are no unions at all, so `→_0` degenerates to base-map
    /// consistency (Duplicator wins iff `ā → b̄` is a partial hom).
    pub fn build(d: &Database, k: usize) -> UnionSkeleton {
        let nfacts = d.fact_count();
        let mut seen: HashMap<Vec<Val>, usize> = HashMap::new();
        let mut unions: Vec<SkeletonUnion> = Vec::new();

        let mut frontier: Vec<(BTreeSet<Val>, Vec<usize>)> = vec![(BTreeSet::new(), Vec::new())];
        for _ in 0..k {
            let mut next = Vec::new();
            for (elems, cover) in &frontier {
                let from = cover.last().map_or(0, |&l| l + 1);
                for fi in from..nfacts {
                    let mut ne = elems.clone();
                    ne.extend(d.fact(fi).args.iter().copied());
                    let key: Vec<Val> = ne.iter().copied().collect();
                    let mut nc = cover.clone();
                    nc.push(fi);
                    if !seen.contains_key(&key) {
                        seen.insert(key.clone(), unions.len());
                        let (inner, boundary) = split_facts(d, &key);
                        unions.push(SkeletonUnion {
                            elems: key,
                            cover: nc.clone(),
                            inner_facts: inner,
                            boundary_facts: boundary,
                        });
                    }
                    next.push((ne, nc));
                }
            }
            frontier = next;
        }

        // Overlap adjacency.
        let n = unions.len();
        let mut by_elem: HashMap<Val, Vec<u32>> = HashMap::new();
        for (ui, u) in unions.iter().enumerate() {
            for &e in &u.elems {
                by_elem.entry(e).or_default().push(ui as u32);
            }
        }
        let mut neighbors: Vec<NeighborRow> = Vec::with_capacity(n);
        for (ui, u) in unions.iter().enumerate() {
            let mut nb: Vec<u32> = u
                .elems
                .iter()
                .flat_map(|e| by_elem[e].iter().copied())
                .filter(|&v| v as usize != ui)
                .collect();
            nb.sort_unstable();
            nb.dedup();
            let shared = nb
                .into_iter()
                .map(|vi| {
                    let v = &unions[vi as usize];
                    let mut pairs = Vec::new();
                    for (i, e) in u.elems.iter().enumerate() {
                        if let Ok(j) = v.elems.binary_search(e) {
                            pairs.push((i as u32, j as u32));
                        }
                    }
                    (vi, pairs)
                })
                .collect();
            neighbors.push(shared);
        }

        UnionSkeleton {
            k,
            unions,
            neighbors,
        }
    }
}

/// Partition the facts touching `elems` into fully-inside and boundary.
fn split_facts(d: &Database, elems: &[Val]) -> (Vec<usize>, Vec<usize>) {
    let inside = |v: Val| elems.binary_search(&v).is_ok();
    let mut inner = Vec::new();
    let mut boundary = Vec::new();
    let mut seen = BTreeSet::new();
    for &e in elems {
        for &fi in d.facts_of_val(e) {
            if !seen.insert(fi) {
                continue;
            }
            if d.fact(fi).args.iter().all(|&v| inside(v)) {
                inner.push(fi);
            } else {
                boundary.push(fi);
            }
        }
    }
    inner.sort_unstable();
    boundary.sort_unstable();
    (inner, boundary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{DbBuilder, Schema};

    fn graph(edges: &[(&str, &str)]) -> Database {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        let mut b = DbBuilder::new(s);
        for &(x, y) in edges {
            b = b.fact("E", &[x, y]);
        }
        b.build()
    }

    #[test]
    fn k1_unions_are_fact_element_sets() {
        let d = graph(&[("a", "b"), ("b", "c")]);
        let sk = UnionSkeleton::build(&d, 1);
        assert_eq!(sk.unions.len(), 2);
        for u in &sk.unions {
            assert_eq!(u.cover.len(), 1);
            assert_eq!(u.inner_facts.len(), 1);
            assert_eq!(u.boundary_facts.len(), 1, "the adjacent edge is boundary");
        }
        // The two edge-regions overlap at b.
        assert_eq!(sk.neighbors[0].len(), 1);
        assert_eq!(sk.neighbors[0][0].1.len(), 1);
    }

    #[test]
    fn k2_unions_count_combinations() {
        let d = graph(&[("a", "b"), ("c", "d"), ("e", "f")]);
        let sk = UnionSkeleton::build(&d, 2);
        // 3 singles + 3 pairs (all with distinct element sets).
        assert_eq!(sk.unions.len(), 6);
        // Disjoint singles have no neighbors among singles but overlap
        // with the pairs containing them.
        let single = sk.unions.iter().position(|u| u.cover.len() == 1).unwrap();
        assert!(sk.neighbors[single].iter().all(|(v, _)| {
            let vu = &sk.unions[*v as usize];
            vu.elems.iter().any(|e| sk.unions[single].elems.contains(e))
        }));
    }

    #[test]
    fn inner_vs_boundary_split() {
        let d = graph(&[("a", "b"), ("b", "a"), ("b", "c")]);
        let sk = UnionSkeleton::build(&d, 1);
        // Region {a, b} (from either a->b or b->a) contains both a-b
        // facts as inner and b->c as boundary.
        let ab = sk
            .unions
            .iter()
            .find(|u| u.elems.len() == 2 && u.inner_facts.len() == 2)
            .expect("the {a,b} region");
        assert_eq!(ab.boundary_facts.len(), 1);
    }
}
