//! Regression tests for cover-game edge cases: degenerate element lists,
//! the `k = 0` game (no unions — `→_0` is bare base-map consistency),
//! and `k` exceeding the number of facts in the database.

use covergame::{cover_implies, CoverPreorder, GameCache, UnionSkeleton};
use relational::{Database, DbBuilder, Schema, Val};

fn graph(edges: &[(&str, &str)], entities: &[&str]) -> Database {
    let mut s = Schema::entity_schema();
    s.add_relation("E", 2);
    let mut b = DbBuilder::new(s);
    for &(x, y) in edges {
        b = b.fact("E", &[x, y]);
    }
    for &e in entities {
        b = b.entity(e);
    }
    b.build()
}

fn v(d: &Database, n: &str) -> Val {
    d.val_by_name(n).unwrap()
}

/// All three compute paths on the same input must agree exactly.
fn all_paths(d: &Database, elems: &[Val], k: usize) -> CoverPreorder {
    let seq = CoverPreorder::compute_seq(d, elems, k);
    let par = CoverPreorder::compute(d, elems, k);
    let iso = GameCache::new();
    let cold = CoverPreorder::compute_with(d, elems, k, &iso);
    assert_eq!(par.leq, seq.leq);
    assert_eq!(cold.leq, seq.leq);
    assert_eq!(par.classes, seq.classes);
    seq
}

#[test]
fn empty_elems_slice() {
    let d = graph(&[("a", "b")], &["a"]);
    let pre = all_paths(&d, &[], 1);
    assert_eq!(pre.class_count(), 0);
    assert!(pre.leq.is_empty());
    assert!(pre.class_of.is_empty());
}

#[test]
fn single_entity() {
    let d = graph(&[("a", "b")], &["a"]);
    let pre = all_paths(&d, &[v(&d, "a")], 1);
    assert_eq!(pre.class_count(), 1);
    assert_eq!(pre.leq, vec![vec![true]]);
    assert_eq!(pre.chain_vector(0), vec![1]);
}

#[test]
fn k_zero_skeleton_has_no_unions() {
    let d = graph(&[("a", "b"), ("b", "c")], &["a"]);
    let sk = UnionSkeleton::build(&d, 0);
    assert_eq!(sk.k, 0);
    assert!(sk.unions.is_empty());
    assert!(sk.neighbors.is_empty());
}

#[test]
fn k_zero_is_base_map_consistency() {
    // With no unions Spoiler has no move: Duplicator wins iff ā → b̄ is a
    // consistent partial homomorphism on the facts inside ā.
    let d = graph(&[("a", "b")], &["a"]);
    let (a, b) = (v(&d, "a"), v(&d, "b"));
    // η(a) holds but η(b) does not, so a ↛_0 b; nothing holds inside
    // {b} alone, so b →_0 a.
    assert!(!cover_implies(&d, &[a], &d, &[b], 0));
    assert!(cover_implies(&d, &[b], &d, &[a], 0));
    // Reflexivity survives at k = 0.
    assert!(cover_implies(&d, &[a], &d, &[a], 0));
    // A non-functional tuple map still fails.
    assert!(!cover_implies(&d, &[a, a], &d, &[a, b], 0));
}

#[test]
fn preorder_at_k_zero() {
    // All entities carry η and no further →_0 obligations, so they
    // collapse into one class regardless of graph structure.
    let d = graph(&[("1", "2"), ("2", "3")], &["1", "2", "3"]);
    let pre = all_paths(&d, &d.entities(), 0);
    assert_eq!(pre.class_count(), 1);
    assert_eq!(pre.classes[0].len(), 3);
}

#[test]
fn k_larger_than_database() {
    // k exceeding the fact count: every union is the whole fact set at
    // the tail, the frontier empties, and the game degenerates to full
    // homomorphism transfer. Must not panic, and more pebbles can only
    // strengthen Spoiler (antitone in k).
    let d = graph(&[("1", "2"), ("2", "3")], &["1", "2", "3"]);
    let pre = all_paths(&d, &d.entities(), 10);
    assert_eq!(pre.class_count(), 3, "path positions stay distinct");
    for (i, &a) in pre.elems.iter().enumerate() {
        for (j, &b) in pre.elems.iter().enumerate() {
            if pre.leq[i][j] {
                assert!(
                    cover_implies(&d, &[a], &d, &[b], 1),
                    "→_10 must be contained in →_1"
                );
            }
        }
    }
}

#[test]
fn empty_database_edge_cases() {
    let mut s = Schema::entity_schema();
    s.add_relation("E", 2);
    let d = Database::new(s);
    for k in [0, 1, 3] {
        assert!(cover_implies(&d, &[], &d, &[], k), "k={k}");
        let pre = all_paths(&d, &[], k);
        assert_eq!(pre.class_count(), 0);
    }
}
