//! The skeleton-sharing fast path must be observationally identical to
//! the self-contained analysis — property-tested across random instances,
//! points, and widths.

use covergame::{CoverGame, UnionSkeleton};
use proptest::prelude::*;
use relational::{Database, Schema, Val};

fn graph(n: usize, edges: &[(usize, usize)]) -> Database {
    let mut s = Schema::entity_schema();
    s.add_relation("E", 2);
    let mut db = Database::new(s);
    let vals: Vec<Val> = (0..n).map(|i| db.value(&format!("v{i}"))).collect();
    let e = db.schema().rel_by_name("E").unwrap();
    for &(a, b) in edges {
        db.add_fact(e, vec![vals[a % n], vals[b % n]]);
    }
    for &v in &vals {
        db.add_entity(v);
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn skeleton_path_matches_direct_path(
        n in 2usize..5,
        edges in proptest::collection::vec((0usize..5, 0usize..5), 1..8),
        i in 0usize..4,
        j in 0usize..4,
        k in 1usize..3,
    ) {
        let d = graph(n, &edges);
        let a = Val((i % n) as u32);
        let b = Val((j % n) as u32);
        let direct = CoverGame::analyze(&d, &[a], &d, &[b], k);
        let skeleton = UnionSkeleton::build(&d, k);
        let shared = CoverGame::analyze_with_skeleton(&d, &[a], &d, &[b], &skeleton);
        prop_assert_eq!(direct.duplicator_wins(), shared.duplicator_wins());
        // Same region structure.
        prop_assert_eq!(direct.unions.len(), shared.unions.len());
        for (du, su) in direct.unions.iter().zip(shared.unions.iter()) {
            prop_assert_eq!(&du.elems, &su.elems);
            prop_assert_eq!(&du.facts_inside, &su.facts_inside);
        }
        // Same per-union survivor counts (the fixpoint itself agrees).
        for (dp, sp) in direct.positions.iter().zip(shared.positions.iter()) {
            let da = dp.iter().filter(|p| p.death.is_none()).count();
            let sa = sp.iter().filter(|p| p.death.is_none()).count();
            prop_assert_eq!(da, sa);
        }
    }

    #[test]
    fn skeleton_reuse_across_pairs_is_safe(
        n in 2usize..5,
        edges in proptest::collection::vec((0usize..5, 0usize..5), 1..8),
        k in 1usize..3,
    ) {
        let d = graph(n, &edges);
        let skeleton = UnionSkeleton::build(&d, k);
        // Run every ordered pair through the shared skeleton and compare
        // with fresh analyses; interleave to catch state leakage.
        for i in 0..n.min(3) {
            for j in 0..n.min(3) {
                let a = Val(i as u32);
                let b = Val(j as u32);
                let shared =
                    CoverGame::analyze_with_skeleton(&d, &[a], &d, &[b], &skeleton)
                        .duplicator_wins();
                let fresh = CoverGame::analyze(&d, &[a], &d, &[b], k).duplicator_wins();
                prop_assert_eq!(shared, fresh, "pair ({},{})", i, j);
            }
        }
    }
}
