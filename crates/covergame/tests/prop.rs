//! Property tests for the existential cover game: engine-path agreement,
//! the approximation sandwich, extraction soundness, preorder laws, and
//! the pebble game.

use covergame::extract::{extract_distinguishing_query, lemma54_feature};
use covergame::{cover_implies, pebble_equivalent, CoverPreorder, ExtractError, GameCache};
use cq::{evaluate_unary, selects};
use proptest::prelude::*;
use relational::{homomorphism_exists, Database, Schema, Val};

fn graph(n: usize, edges: &[(usize, usize)], all_entities: bool) -> Database {
    let mut s = Schema::entity_schema();
    s.add_relation("E", 2);
    let mut db = Database::new(s);
    let vals: Vec<Val> = (0..n).map(|i| db.value(&format!("v{i}"))).collect();
    let e = db.schema().rel_by_name("E").unwrap();
    for &(a, b) in edges {
        db.add_fact(e, vec![vals[a % n], vals[b % n]]);
    }
    if all_entities {
        for &v in &vals {
            db.add_entity(v);
        }
    }
    db
}

fn small_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..5).prop_flat_map(|n| (Just(n), proptest::collection::vec((0..n, 0..n), 0..(2 * n))))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// All `CoverPreorder::compute` paths agree: the parallel sweep
    /// through the global cache, the sweep through a cold isolated cache,
    /// a warm re-sweep of the same cache, and the sequential uncached
    /// reference — and all of them match pairwise brute-force
    /// `cover_implies`. The resulting `leq` matrix is a preorder
    /// (reflexive and transitive).
    #[test]
    fn engine_agreement((n, e) in small_graph(), k in 1usize..3) {
        let d = graph(n, &e, true);
        let ents = d.entities();
        let seq = CoverPreorder::compute_seq(&d, &ents, k);
        let global = CoverPreorder::compute(&d, &ents, k);
        let isolated = GameCache::new();
        let cold = CoverPreorder::compute_with(&d, &ents, k, &isolated);
        let warm = CoverPreorder::compute_with(&d, &ents, k, &isolated);
        prop_assert_eq!(&global.leq, &seq.leq, "global-cache path disagrees");
        prop_assert_eq!(&cold.leq, &seq.leq, "cold isolated cache disagrees");
        prop_assert_eq!(&warm.leq, &seq.leq, "warm re-sweep disagrees");
        prop_assert_eq!(&global.class_of, &seq.class_of);
        prop_assert_eq!(&global.classes, &seq.classes);
        for (i, &a) in ents.iter().enumerate() {
            for (j, &b) in ents.iter().enumerate() {
                let brute = cover_implies(&d, &[a], &d, &[b], k);
                prop_assert_eq!(seq.leq[i][j], brute, "brute force disagrees at ({}, {})", i, j);
            }
        }
        let m = ents.len();
        for i in 0..m {
            prop_assert!(seq.leq[i][i], "leq must be reflexive");
            for j in 0..m {
                for l in 0..m {
                    if seq.leq[i][j] && seq.leq[j][l] {
                        prop_assert!(seq.leq[i][l], "leq must be transitive");
                    }
                }
            }
        }
    }

    /// Lemma 5.4 round trip: the feature `q_e` evaluated with the CQ
    /// engine selects exactly the `→_k`-upward closure of `e` — it holds
    /// at `e` itself and fails at every entity `e'` the game separates.
    #[test]
    fn lemma54_feature_round_trip((n, e) in small_graph(), k in 1usize..3) {
        let d = graph(n, &e, true);
        let ents = d.entities();
        for &e1 in &ents {
            match lemma54_feature(&d, e1, &ents, k, 50_000) {
                Ok(q) => {
                    let selected = evaluate_unary(&q, &d);
                    prop_assert!(selected.contains(&e1), "q_e must hold at e: {}", q);
                    for &e2 in &ents {
                        let expect = cover_implies(&d, &[e1], &d, &[e2], k);
                        prop_assert_eq!(
                            selected.contains(&e2), expect,
                            "q at {}: {}", d.val_name(e2), q
                        );
                    }
                }
                Err(ExtractError::Budget { .. }) => {} // permitted blowup
                Err(ExtractError::DuplicatorWins) => {
                    prop_assert!(false, "lemma54_feature filters Duplicator wins");
                }
            }
        }
    }

    /// The approximation chain of §5: `→ ⊆ →_{k+1} ⊆ →_k`.
    #[test]
    fn sandwich((n1, e1) in small_graph(), (n2, e2) in small_graph(), i in 0usize..4, j in 0usize..4) {
        let d1 = graph(n1, &e1, true);
        let d2 = graph(n2, &e2, true);
        let a = Val((i % n1) as u32);
        let b = Val((j % n2) as u32);
        let hom = homomorphism_exists(&d1, &d2, &[(a, b)]);
        let k2 = cover_implies(&d1, &[a], &d2, &[b], 2);
        let k1 = cover_implies(&d1, &[a], &d2, &[b], 1);
        if hom {
            prop_assert!(k2, "→ ⊄ →_2");
        }
        if k2 {
            prop_assert!(k1, "→_2 ⊄ →_1");
        }
    }

    /// `→_k` is reflexive and transitive (it is a preorder).
    #[test]
    fn preorder_laws((n, e) in small_graph(), k in 1usize..3) {
        let d = graph(n, &e, true);
        let vals: Vec<Val> = (0..n as u32).map(Val).collect();
        for &a in &vals {
            prop_assert!(cover_implies(&d, &[a], &d, &[a], k), "reflexivity");
        }
        for &a in vals.iter().take(3) {
            for &b in vals.iter().take(3) {
                for &c in vals.iter().take(3) {
                    if cover_implies(&d, &[a], &d, &[b], k)
                        && cover_implies(&d, &[b], &d, &[c], k)
                    {
                        prop_assert!(
                            cover_implies(&d, &[a], &d, &[c], k),
                            "transitivity at k={k}"
                        );
                    }
                }
            }
        }
    }

    /// When Spoiler wins, the extracted query really distinguishes and
    /// its decomposition certificate verifies at width k.
    #[test]
    fn extraction_soundness((n, e) in small_graph(), i in 0usize..4, j in 0usize..4, k in 1usize..3) {
        let d = graph(n, &e, true);
        let a = Val((i % n) as u32);
        let b = Val((j % n) as u32);
        match extract_distinguishing_query(&d, a, &d, b, k, 200_000) {
            Ok((q, td)) => {
                prop_assert!(!cover_implies(&d, &[a], &d, &[b], k));
                prop_assert!(selects(&q, &d, a), "q must select a: {q}");
                prop_assert!(!selects(&q, &d, b), "q must reject b: {q}");
                td.verify(&q, k).unwrap();
            }
            Err(ExtractError::DuplicatorWins) => {
                prop_assert!(cover_implies(&d, &[a], &d, &[b], k));
            }
            Err(ExtractError::Budget { .. }) => {
                // Permitted: sizes can blow up. Nothing to check.
            }
        }
    }

    /// The preorder structure is internally consistent: classes are
    /// mutual, topological order respects ⪯, chain vectors are monotone.
    #[test]
    fn preorder_structure((n, e) in small_graph(), k in 1usize..3) {
        let d = graph(n, &e, true);
        let ents = d.entities();
        let pre = CoverPreorder::compute(&d, &ents, k);
        for (i, _) in ents.iter().enumerate() {
            for (j, _) in ents.iter().enumerate() {
                let same = pre.class_of[i] == pre.class_of[j];
                let mutual = pre.leq[i][j] && pre.leq[j][i];
                prop_assert_eq!(same, mutual);
            }
        }
        for c in 0..pre.class_count() {
            for e2 in 0..pre.class_count() {
                if c != e2 && pre.class_leq(c, e2) {
                    prop_assert!(c < e2, "topological order violated");
                }
            }
        }
    }

    /// FO_k equivalence sandwich: automorphic ⇒ FO_k-equivalent for all
    /// k, and FO_{k+1}-equivalence implies FO_k-equivalence.
    #[test]
    fn pebble_sandwich((n, e) in small_graph(), i in 0usize..4, j in 0usize..4) {
        let d = graph(n, &e, true);
        let a = Val((i % n) as u32);
        let b = Val((j % n) as u32);
        let orbit = relational::iso::same_orbit(&d, a, b);
        let p3 = pebble_equivalent(&d, a, &d, b, 3);
        let p2 = pebble_equivalent(&d, a, &d, b, 2);
        let p1 = pebble_equivalent(&d, a, &d, b, 1);
        if orbit {
            prop_assert!(p3 && p2 && p1, "automorphic pairs are FO_k-equivalent");
        }
        if p3 {
            prop_assert!(p2);
        }
        if p2 {
            prop_assert!(p1);
        }
    }

    /// FO_k-equivalence refines →_k-equivalence... more precisely,
    /// FO_k-equivalent pointed structures agree on all GHW(k-1)-ish
    /// queries; we check the robust direction: FO_n-equivalence on an
    /// n-element structure means automorphic, hence mutually →_k-related.
    #[test]
    fn full_pebble_equivalence_implies_cover_equivalence((n, e) in small_graph(), i in 0usize..4, j in 0usize..4) {
        let d = graph(n, &e, true);
        let a = Val((i % n) as u32);
        let b = Val((j % n) as u32);
        if pebble_equivalent(&d, a, &d, b, n) {
            for k in 1..=2 {
                prop_assert!(covergame::cover_equivalent(&d, a, &d, b, k));
            }
        }
    }
}
