//! [`Ctx`]: an [`Engine`] plus a deadline/cancellation handle — the
//! per-task view of the solver stack.
//!
//! An engine is long-lived (it owns the memo caches that pay off across
//! tasks); a *task* is bounded (it has a timeout and can be cancelled by
//! a shutdown path). `Ctx` is the marriage: it borrows an engine, carries
//! one [`Interrupt`] handle, and snapshots the engine's counters at
//! construction so an interrupted task can report the effort it spent —
//! the `partial_stats` on [`Interrupted`].
//!
//! # The `foo_in` / `foo_with` / `foo` convention
//!
//! * `foo(...)` — legacy, globals-backed, uninterruptible.
//! * `foo_with(&Engine, ...)` — engine-threaded, uninterruptible. Since
//!   PR 5 these are thin shims that build an unbounded `Ctx` and
//!   delegate to `foo_in` (an unbounded handle can still be cancelled,
//!   but a `foo_with` caller holds no clone of it, so the `Interrupted`
//!   arm is unreachable and the shim unwraps it).
//! * `foo_in(&Ctx, ...)` — the real implementation: interruptible,
//!   engine-threaded, returns `Result<_, Interrupted>`. Entry points
//!   whose inner result is itself a `Result<T, E>` return the nested
//!   `Result<Result<T, E>, Interrupted>` so interruption composes
//!   uniformly with domain errors.
//!
//! # Cancellation-check placement
//!
//! Every `foo_in` makes a **mandatory entry check** before any work, so
//! a `Duration::ZERO` deadline returns `Interrupted` without touching
//! the solvers. Below the entry check, each inner loop observes the
//! handle at bounded intervals: the hom backtracker per node expansion,
//! the cover game per DFS node and per fixpoint sweep segment, the
//! simplex per pivot, the perceptron per epoch, the subset and candidate
//! sweeps per block. Cache *miss* paths run interruptible solves and
//! never insert a verdict on [`Stop`]; cache *hit* paths skip checks
//! (they do no work worth interrupting). Parallel fan-outs let workers
//! swallow [`Stop`] (reporting filler results) and rely on stickiness:
//! the caller re-checks the handle after the fan-in and discards the
//! batch if it tripped.

use crate::{Engine, EngineStats};
use covergame::{CoverPreorder, UnionSkeleton};
use interrupt::{Interrupt, Reason, Stop};
use linsep::LinearClassifier;
use numeric::Rat;
use relational::{Database, Val};
use std::time::Duration;

/// A task was stopped before completing: its deadline passed or its
/// handle was cancelled. Carries the engine-counter deltas accumulated
/// between the [`Ctx`]'s construction and the stop, so callers can
/// report how much work the truncated task performed.
#[derive(Clone, Debug)]
pub struct Interrupted {
    /// Why the task stopped.
    pub reason: Reason,
    /// Engine counter deltas since the `Ctx` was created. Boxed: the
    /// stats block is large and `Interrupted` rides in the `Err` arm of
    /// every solver entry point — keeping it a pointer keeps the hot
    /// `Ok` path's `Result` small.
    pub partial_stats: Box<EngineStats>,
}

impl std::fmt::Display for Interrupted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "interrupted: {}", self.reason)
    }
}

impl std::error::Error for Interrupted {}

impl Interrupted {
    /// Was the stop caused by the deadline (as opposed to cancellation)?
    pub fn deadline_exceeded(&self) -> bool {
        self.reason == Reason::Deadline
    }
}

/// A per-task solver context: an [`Engine`] borrow plus one
/// [`Interrupt`] handle plus the stats baseline for partial reporting.
/// Cheap to construct; make one per task, not per call.
#[derive(Clone)]
pub struct Ctx<'e> {
    engine: &'e Engine,
    interrupt: Interrupt,
    start: EngineStats,
}

impl<'e> Ctx<'e> {
    /// An unbounded context: never trips on its own (no deadline), but
    /// the handle can still be cancelled through a clone.
    pub fn new(engine: &'e Engine) -> Ctx<'e> {
        Ctx::with_interrupt(engine, Interrupt::none())
    }

    /// A context whose deadline is `budget` from now. `Duration::ZERO`
    /// is already expired: every `foo_in` entry check returns
    /// [`Interrupted`] immediately.
    pub fn with_deadline(engine: &'e Engine, budget: Duration) -> Ctx<'e> {
        Ctx::with_interrupt(engine, Interrupt::with_deadline(budget))
    }

    /// A context around a caller-owned handle — the service layer keeps
    /// a clone per in-flight task and cancels it from the shutdown path.
    pub fn with_interrupt(engine: &'e Engine, interrupt: Interrupt) -> Ctx<'e> {
        Ctx {
            start: engine.stats(),
            engine,
            interrupt,
        }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &'e Engine {
        self.engine
    }

    /// The task's interrupt handle (clone it to cancel from elsewhere).
    pub fn interrupt(&self) -> &Interrupt {
        &self.interrupt
    }

    /// Engine counter deltas since this context was created — the figure
    /// [`Interrupted::partial_stats`] carries.
    pub fn stats_so_far(&self) -> EngineStats {
        self.engine.stats().since(&self.start)
    }

    /// The mandatory entry check every `foo_in` starts with.
    pub fn check(&self) -> Result<(), Interrupted> {
        self.interrupt.check().map_err(|stop| self.wrap(stop))
    }

    /// Promote a low-level [`Stop`] into [`Interrupted`] with this
    /// context's partial stats attached.
    pub fn wrap(&self, stop: Stop) -> Interrupted {
        Interrupted {
            reason: stop.reason,
            partial_stats: Box::new(self.stats_so_far()),
        }
    }

    // ------------------------------------------------------------------
    // Interruptible solver entry points (the Ctx forms of the Engine
    // methods; each makes the mandatory entry check)
    // ------------------------------------------------------------------

    /// Interruptible [`Engine::hom_exists`].
    pub fn hom_exists(
        &self,
        from: &Database,
        to: &Database,
        fixed: &[(Val, Val)],
    ) -> Result<bool, Interrupted> {
        self.check()?;
        let cache = self.engine.hom_cache();
        let ans = if self.engine.caching_enabled() {
            cache.exists_sub_int(
                from,
                to,
                fixed,
                Some(self.engine.lineage()),
                &self.interrupt,
            )
        } else {
            cache.exists_uncached_int(from, to, fixed, &self.interrupt)
        };
        ans.map_err(|stop| self.wrap(stop))
    }

    /// Interruptible [`Engine::cover_implies`].
    pub fn cover_implies(
        &self,
        d: &Database,
        a: &[Val],
        d2: &Database,
        b: &[Val],
        k: usize,
    ) -> Result<bool, Interrupted> {
        self.check()?;
        let cache = self.engine.game_cache();
        let ans = if self.engine.caching_enabled() {
            cache.implies_sub_int(d, a, d2, b, k, Some(self.engine.lineage()), &self.interrupt)
        } else {
            cache.implies_uncached_int(d, a, d2, b, k, &self.interrupt)
        };
        ans.map_err(|stop| self.wrap(stop))
    }

    /// Interruptible [`Engine::cover_implies_with_skeleton`].
    pub fn cover_implies_with_skeleton(
        &self,
        d: &Database,
        a: &[Val],
        d2: &Database,
        b: &[Val],
        skeleton: &UnionSkeleton,
    ) -> Result<bool, Interrupted> {
        self.check()?;
        let cache = self.engine.game_cache();
        let ans = if self.engine.caching_enabled() {
            cache.implies_with_skeleton_sub_int(
                d,
                a,
                d2,
                b,
                skeleton,
                Some(self.engine.lineage()),
                &self.interrupt,
            )
        } else {
            cache.implies_with_skeleton_uncached_int(d, a, d2, b, skeleton, &self.interrupt)
        };
        ans.map_err(|stop| self.wrap(stop))
    }

    /// Interruptible [`Engine::apply_delta`]: mutate `db` by `delta`,
    /// recording the fingerprint edge in the engine's lineage registry.
    /// Delta application itself is cheap and atomic, so only the entry
    /// check observes the handle; the nested `Result` keeps interruption
    /// composing with [`DeltaError`] like every other `foo_in`.
    pub fn apply_delta(
        &self,
        db: &mut Database,
        delta: &relational::Delta,
    ) -> Result<Result<relational::DeltaReceipt, relational::DeltaError>, Interrupted> {
        self.check()?;
        Ok(self.engine.apply_delta(db, delta))
    }

    /// Interruptible [`Engine::apply_training_delta`] (labels allowed).
    pub fn apply_training_delta(
        &self,
        train: &mut relational::TrainingDb,
        delta: &relational::Delta,
    ) -> Result<Result<relational::DeltaReceipt, relational::DeltaError>, Interrupted> {
        self.check()?;
        Ok(self.engine.apply_training_delta(train, delta))
    }

    /// Interruptible [`Engine::separate`].
    pub fn separate(
        &self,
        vectors: &[Vec<i32>],
        labels: &[i32],
    ) -> Result<Option<LinearClassifier>, Interrupted> {
        self.check()?;
        linsep::separate_counted_int(self.engine.lp_counters(), vectors, labels, &self.interrupt)
            .map_err(|stop| self.wrap(stop))
    }

    /// Interruptible [`Engine::separate_with_margin`].
    pub fn separate_with_margin(
        &self,
        vectors: &[Vec<i32>],
        labels: &[i32],
    ) -> Result<Option<(LinearClassifier, Rat)>, Interrupted> {
        self.check()?;
        linsep::separate_with_margin_counted_int(
            self.engine.lp_counters(),
            vectors,
            labels,
            &self.interrupt,
        )
        .map_err(|stop| self.wrap(stop))
    }

    /// Warm-capable interruptible separation: as [`Ctx::separate`] but
    /// accepting the final basis of a related instance (subset `S` of the
    /// ≤ℓ sweep warm-starting `S ∪ {j}` or a same-size sibling — see
    /// [`linsep::SepBasis`]) and returning the verdict together with this
    /// instance's final basis. Verdicts are warm- and
    /// backend-independent.
    pub fn separate_warm(
        &self,
        vectors: &[Vec<i32>],
        labels: &[i32],
        warm: Option<&linsep::SepBasis>,
        backend: linsep::LpBackend,
    ) -> Result<linsep::SepOutcome, Interrupted> {
        self.check()?;
        linsep::separate_warm_counted_int(
            self.engine.lp_counters(),
            vectors,
            labels,
            warm,
            backend,
            &self.interrupt,
        )
        .map_err(|stop| self.wrap(stop))
    }

    /// Interruptible [`Engine::min_error`].
    pub fn min_error(
        &self,
        vectors: &[Vec<i32>],
        labels: &[i32],
    ) -> Result<linsep::MinErrorResult, Interrupted> {
        self.check()?;
        linsep::min_error_classifier_counted_int(
            self.engine.lp_counters(),
            vectors,
            labels,
            &self.interrupt,
        )
        .map_err(|stop| self.wrap(stop))
    }

    /// Interruptible [`Engine::preorder`]: the pairwise game sweep fans
    /// out under the engine's thread budget; a worker that trips reports
    /// a filler verdict, and the sticky post-fan-in check discards the
    /// whole matrix. Completed games keep their cache entries, so a
    /// re-run on the same engine resumes where the sweep stopped.
    pub fn preorder(
        &self,
        d: &Database,
        elems: &[Val],
        k: usize,
    ) -> Result<CoverPreorder, Interrupted> {
        self.check()?;
        let n = elems.len();
        let skeleton = UnionSkeleton::build(d, k);
        let cells: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .filter(|&(i, j)| i != j)
            .collect();
        let verdicts = self.engine.par_map(&cells, |&(i, j)| {
            self.cover_implies_with_skeleton(d, &[elems[i]], d, &[elems[j]], &skeleton)
                .unwrap_or(false)
        });
        // The sticky re-check that makes the filler verdicts safe.
        self.check()?;
        let mut leq = vec![vec![false; n]; n];
        for (i, row) in leq.iter_mut().enumerate() {
            row[i] = true;
        }
        for (&(i, j), v) in cells.iter().zip(verdicts) {
            leq[i][j] = v;
        }
        Ok(CoverPreorder::from_matrix(elems.to_vec(), leq, k))
    }

    /// Interruptible [`Engine::chain_vector_for`].
    pub fn chain_vector_for(
        &self,
        pre: &CoverPreorder,
        d: &Database,
        d2: &Database,
        f: Val,
    ) -> Result<Vec<i32>, Interrupted> {
        self.check()?;
        (0..pre.class_count())
            .map(|j| {
                let rep = pre.elems[pre.representative(j)];
                Ok(if self.cover_implies(d, &[rep], d2, &[f], pre.k)? {
                    1
                } else {
                    -1
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{DbBuilder, Schema};

    fn graph(edges: &[(&str, &str)], entities: &[&str]) -> Database {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        let mut b = DbBuilder::new(s);
        for &(x, y) in edges {
            b = b.fact("E", &[x, y]);
        }
        for &e in entities {
            b = b.entity(e);
        }
        b.build()
    }

    #[test]
    fn unbounded_ctx_agrees_with_engine_methods() {
        let e = Engine::new();
        let ctx = Ctx::new(&e);
        let p = graph(&[("a", "b"), ("b", "c")], &[]);
        let c3 = graph(&[("x", "y"), ("y", "z"), ("z", "x")], &[]);
        assert!(ctx.hom_exists(&p, &c3, &[]).unwrap());
        let a = c3.val_by_name("x").unwrap();
        let one = p.val_by_name("a").unwrap();
        assert_eq!(
            ctx.cover_implies(&c3, &[a], &p, &[one], 1).unwrap(),
            e.cover_implies(&c3, &[a], &p, &[one], 1)
        );
        let vs = vec![vec![1, 1], vec![-1, -1]];
        assert!(ctx.separate(&vs, &[1, -1]).unwrap().is_some());
    }

    #[test]
    fn zero_deadline_interrupts_every_ctx_method() {
        let e = Engine::new();
        let ctx = Ctx::with_deadline(&e, Duration::ZERO);
        let p = graph(&[("a", "b")], &["a", "b"]);
        assert!(ctx.hom_exists(&p, &p, &[]).is_err());
        assert!(ctx.cover_implies(&p, &[], &p, &[], 1).is_err());
        assert!(ctx.separate(&[], &[]).is_err());
        assert!(ctx.separate_with_margin(&[], &[]).is_err());
        assert!(ctx.min_error(&[], &[]).is_err());
        assert!(ctx.preorder(&p, &p.entities(), 1).is_err());
        let err = ctx.check().unwrap_err();
        assert!(err.deadline_exceeded());
        assert_eq!(err.to_string(), "interrupted: deadline exceeded");
    }

    #[test]
    fn cancellation_reports_cancelled_with_partial_stats() {
        let e = Engine::new();
        let ctx = Ctx::new(&e);
        let p = graph(&[("a", "b"), ("b", "c")], &[]);
        // Do some work first so partial stats are nonzero.
        ctx.hom_exists(&p, &p, &[]).unwrap();
        ctx.interrupt().cancel();
        let err = ctx.hom_exists(&p, &p, &[]).unwrap_err();
        assert_eq!(err.reason, Reason::Cancelled);
        assert!(err.partial_stats.hom.solves >= 1);
    }

    #[test]
    fn interrupted_miss_leaves_no_cache_entry() {
        let e = Engine::new();
        let p = graph(&[("a", "b"), ("b", "c")], &["a", "b", "c"]);
        {
            let ctx = Ctx::with_deadline(&e, Duration::ZERO);
            assert!(ctx.hom_exists(&p, &p, &[]).is_err());
        }
        assert!(e.hom_cache().is_empty());
        assert!(e.game_cache().is_empty());
        // A later unbounded run on the same engine completes normally.
        let ctx = Ctx::new(&e);
        assert!(ctx.hom_exists(&p, &p, &[]).unwrap());
    }

    #[test]
    fn preorder_in_matches_uninterrupted_engine_preorder() {
        let e = Engine::new();
        let d = graph(&[("1", "2"), ("2", "3")], &["1", "2", "3"]);
        let ctx = Ctx::new(&e);
        let ours = ctx.preorder(&d, &d.entities(), 1).unwrap();
        let reference = e.preorder(&d, &d.entities(), 1);
        assert_eq!(ours.leq, reference.leq);
        assert_eq!(ours.class_of, reference.class_of);
    }
}
