//! The unified solver context.
//!
//! Every layer of the separability pipeline keeps instrumented, memoized
//! machinery: the hom solver's memo table ([`relational::HomCache`]), the
//! cover-game verdict table ([`covergame::GameCache`]), and the LP
//! engine's counters ([`linsep::LpCounters`]). Historically each was a
//! process-global singleton, which made concurrent workloads share (and
//! cross-contaminate) counters and left no way to run a solve with an
//! isolated lifetime, a thread budget, or caching switched off.
//!
//! An [`Engine`] bundles all three plus the parallelism configuration
//! into one explicit context:
//!
//! * `Engine::new()` is a fully isolated instance — its caches and
//!   counters see exactly the queries routed through it;
//! * [`Engine::global`] wraps the legacy process-wide singletons, so the
//!   engine-less entry points (`cqsep::cq_separable` etc.) and the
//!   engine-threaded ones (`cq_separable_with`) interoperate — a verdict
//!   memoized by either is visible to both;
//! * [`Engine::save`]/[`Engine::load`] persist the two verdict tables to
//!   a cache directory (see [`persist`]) for warm starts across
//!   processes — the CLI's `--cache-dir` flag.
//!
//! The convention for threading: a layer's public `foo(...)` keeps its
//! historical globals-backed behavior and delegates to
//! `foo_with(&Engine, ...)` (or an [`Engine`] method) with
//! [`Engine::global`]. Solver code below the engine never touches the
//! global singletons directly.
//!
//! One counter is intentionally *not* per-engine: `bignum_promotions`
//! happens inside `numeric::Rat` arithmetic with no engine in sight, so
//! [`EngineStats`] reports the process-wide figure (see
//! [`numeric::rat::promotion_count`]).

pub mod ctx;
pub mod persist;

use covergame::{CoverPreorder, GameCache, GameStats, UnionSkeleton};
use cq::{Cq, EnumConfig};
use linsep::{LinearClassifier, LpCounters, LpStats};
use numeric::Rat;
use qbe::QbeError;
use relational::{
    Database, Delta, DeltaError, DeltaReceipt, HomCache, HomStats, Lineage, TrainingDb, Val,
};
use std::path::Path;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

pub use ctx::{Ctx, Interrupted};
pub use interrupt::{Interrupt, Reason, Stop};
pub use persist::RestoreSummary;

/// Environment toggle honored by [`Engine::global`]: setting
/// `CQSEP_NO_CACHE=1` makes the global engine run every query uncached
/// (same verdicts, same accounting shape, no memo table).
pub const NO_CACHE_ENV: &str = "CQSEP_NO_CACHE";

/// A solver context owning the memo caches, the unified stats counters,
/// and the parallelism configuration for everything run through it.
#[derive(Clone)]
pub struct Engine {
    hom: Arc<HomCache>,
    game: Arc<GameCache>,
    lp: Arc<LpCounters>,
    /// Fingerprint lineage: which database contents are deltas of which
    /// (see [`relational::delta`]). Feeds the caches' subsumption reads.
    lineage: Arc<Lineage>,
    /// Worker-thread cap for the parallel drivers (`None` = all cores).
    threads: Option<usize>,
    /// When false, queries bypass the memo tables entirely.
    use_cache: bool,
}

impl Engine {
    /// A fully isolated engine: fresh caches, fresh counters, default
    /// thread budget (all cores), caching on.
    pub fn new() -> Engine {
        Engine {
            hom: Arc::new(HomCache::new()),
            game: Arc::new(GameCache::new()),
            lp: Arc::new(LpCounters::new()),
            lineage: Arc::new(Lineage::new()),
            threads: None,
            use_cache: true,
        }
    }

    /// An isolated engine whose hom and game tables each hold roughly
    /// `capacity` entries before old ones age out.
    pub fn with_capacity(capacity: usize) -> Engine {
        Engine {
            hom: Arc::new(HomCache::with_capacity(capacity)),
            game: Arc::new(GameCache::with_capacity(capacity)),
            ..Engine::new()
        }
    }

    /// Cap the parallel drivers at `n` worker threads (0 is treated as 1;
    /// the drivers always make progress).
    pub fn with_threads(mut self, n: usize) -> Engine {
        self.threads = Some(n);
        self
    }

    /// Disable memoization: queries still run (and count) through the
    /// engine's caches, but the tables are neither consulted nor updated.
    pub fn without_cache(mut self) -> Engine {
        self.use_cache = false;
        self
    }

    /// The process-wide engine wrapping the legacy global singletons.
    /// Engine-less entry points route here, so their memoized verdicts
    /// and counters are shared with explicit `Engine::global()` users.
    /// Caching is on unless [`NO_CACHE_ENV`] is set to `1` (read once, at
    /// first use).
    pub fn global() -> &'static Engine {
        static GLOBAL: OnceLock<Engine> = OnceLock::new();
        GLOBAL.get_or_init(|| Engine {
            hom: relational::hom::cache::global_arc(),
            game: covergame::cache::global_arc(),
            lp: linsep::stats::global_counters_arc(),
            lineage: relational::global_lineage_arc(),
            threads: None,
            use_cache: std::env::var(NO_CACHE_ENV).map_or(true, |v| v != "1"),
        })
    }

    // ------------------------------------------------------------------
    // Task contexts
    // ------------------------------------------------------------------

    /// An unbounded [`Ctx`] over this engine (no deadline; cancellable
    /// through a clone of its handle).
    pub fn ctx(&self) -> Ctx<'_> {
        Ctx::new(self)
    }

    /// A [`Ctx`] whose deadline is `budget` from now. `Duration::ZERO`
    /// is already expired.
    pub fn ctx_with_deadline(&self, budget: Duration) -> Ctx<'_> {
        Ctx::with_deadline(self, budget)
    }

    /// A [`Ctx`] around a caller-owned [`Interrupt`] handle (the service
    /// layer keeps a clone per in-flight task for its shutdown path).
    pub fn ctx_with_interrupt(&self, interrupt: Interrupt) -> Ctx<'_> {
        Ctx::with_interrupt(self, interrupt)
    }

    // ------------------------------------------------------------------
    // Configuration and component access
    // ------------------------------------------------------------------

    /// The configured worker-thread cap (`None` = all cores).
    pub fn thread_budget(&self) -> Option<usize> {
        self.threads
    }

    /// The worker count this engine's parallel drivers can actually use:
    /// the configured budget clamped to the host's available parallelism
    /// (and at least 1). Callers use `< 2` as the signal to skip
    /// parallel orchestration entirely — on a 1-core host, or an engine
    /// pinned to one thread, materializing work lists and spawning
    /// scoped workers is pure overhead.
    pub fn effective_parallelism(&self) -> usize {
        let hw = relational::hom::par::hardware_parallelism();
        self.threads.map_or(hw, |t| t.clamp(1, hw))
    }

    /// Is memoization enabled?
    pub fn caching_enabled(&self) -> bool {
        self.use_cache
    }

    /// The hom-existence memo table.
    pub fn hom_cache(&self) -> &HomCache {
        &self.hom
    }

    /// The cover-game verdict memo table.
    pub fn game_cache(&self) -> &GameCache {
        &self.game
    }

    /// The LP-engine counter set.
    pub fn lp_counters(&self) -> &LpCounters {
        &self.lp
    }

    /// The fingerprint-lineage registry (delta history + subsumption).
    pub fn lineage(&self) -> &Lineage {
        &self.lineage
    }

    // ------------------------------------------------------------------
    // Deltas
    // ------------------------------------------------------------------

    /// Apply a structural delta to `db`, recording the fingerprint edge
    /// in this engine's lineage registry so later cache lookups against
    /// the descendant can subsume from entries cached for the parent
    /// (and a repeat of the same edit skips the fingerprint recompute).
    pub fn apply_delta(
        &self,
        db: &mut Database,
        delta: &Delta,
    ) -> Result<DeltaReceipt, DeltaError> {
        db.apply_via(delta, &self.lineage)
    }

    /// [`Engine::apply_delta`] for training databases (label ops
    /// allowed; label-only deltas keep the fingerprint, so every cached
    /// verdict stays exactly valid).
    pub fn apply_training_delta(
        &self,
        train: &mut TrainingDb,
        delta: &Delta,
    ) -> Result<DeltaReceipt, DeltaError> {
        train.apply_via(delta, &self.lineage)
    }

    // ------------------------------------------------------------------
    // Solver entry points
    // ------------------------------------------------------------------

    /// Does a homomorphism `from → to` extending `fixed` exist?
    /// Memoized through this engine's table (unless caching is off),
    /// with delta subsumption against this engine's lineage registry.
    pub fn hom_exists(&self, from: &Database, to: &Database, fixed: &[(Val, Val)]) -> bool {
        if self.use_cache {
            self.hom.exists_sub(from, to, fixed, Some(&self.lineage))
        } else {
            self.hom.exists_uncached(from, to, fixed)
        }
    }

    /// `(D, ā) →_k (D', b̄)`, memoized through this engine's table.
    pub fn cover_implies(
        &self,
        d: &Database,
        a: &[Val],
        d2: &Database,
        b: &[Val],
        k: usize,
    ) -> bool {
        if self.use_cache {
            self.game.implies_sub(d, a, d2, b, k, Some(&self.lineage))
        } else {
            self.game.implies_uncached(d, a, d2, b, k)
        }
    }

    /// [`Engine::cover_implies`] reusing a prebuilt [`UnionSkeleton`] of
    /// `(d, skeleton.k)` for the miss path.
    pub fn cover_implies_with_skeleton(
        &self,
        d: &Database,
        a: &[Val],
        d2: &Database,
        b: &[Val],
        skeleton: &UnionSkeleton,
    ) -> bool {
        if self.use_cache {
            self.game
                .implies_with_skeleton_sub(d, a, d2, b, skeleton, Some(&self.lineage))
        } else {
            self.game
                .implies_with_skeleton_uncached(d, a, d2, b, skeleton)
        }
    }

    /// Linear separation, counted against this engine's LP counters.
    pub fn separate(&self, vectors: &[Vec<i32>], labels: &[i32]) -> Option<LinearClassifier> {
        linsep::separate_counted(&self.lp, vectors, labels)
    }

    /// [`Engine::separate`] also returning the optimal margin.
    pub fn separate_with_margin(
        &self,
        vectors: &[Vec<i32>],
        labels: &[i32],
    ) -> Option<(LinearClassifier, Rat)> {
        linsep::separate_with_margin_counted(&self.lp, vectors, labels)
    }

    /// Exact minimum-error linear classification (§7), every internal LP
    /// decision counted against this engine.
    pub fn min_error(&self, vectors: &[Vec<i32>], labels: &[i32]) -> linsep::MinErrorResult {
        linsep::min_error_classifier_counted(&self.lp, vectors, labels)
    }

    /// Note a column subset refuted by the caller's own duplicate-row
    /// conflict scan (the dimension-bounded subset search runs the scan
    /// on projected rows before assembling an LP).
    pub fn record_conflict_prune(&self) {
        self.lp.record_conflict_prune();
    }

    /// The `→_k` preorder over `elems` of `d`: one game per ordered pair,
    /// fanned out under this engine's thread budget and memoized through
    /// its table (one shared skeleton for all pairs).
    pub fn preorder(&self, d: &Database, elems: &[Val], k: usize) -> CoverPreorder {
        let n = elems.len();
        let skeleton = UnionSkeleton::build(d, k);
        let cells: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .filter(|&(i, j)| i != j)
            .collect();
        let verdicts = self.par_map(&cells, |&(i, j)| {
            self.cover_implies_with_skeleton(d, &[elems[i]], d, &[elems[j]], &skeleton)
        });
        let mut leq = vec![vec![false; n]; n];
        for (i, row) in leq.iter_mut().enumerate() {
            row[i] = true;
        }
        for (&(i, j), v) in cells.iter().zip(verdicts) {
            leq[i][j] = v;
        }
        CoverPreorder::from_matrix(elems.to_vec(), leq, k)
    }

    /// Evaluate a preorder's implicit chain statistic on an element `f`
    /// of an evaluation database (Algorithm 1, lines 3–9), with the
    /// per-component games routed through this engine.
    pub fn chain_vector_for(
        &self,
        pre: &CoverPreorder,
        d: &Database,
        d2: &Database,
        f: Val,
    ) -> Vec<i32> {
        (0..pre.class_count())
            .map(|j| {
                let rep = pre.elems[pre.representative(j)];
                if self.cover_implies(d, &[rep], d2, &[f], pre.k) {
                    1
                } else {
                    -1
                }
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Parallel drivers (thread budget applied)
    // ------------------------------------------------------------------

    /// Does `pred` hold for all pairs? Early-exits on the first
    /// counterexample; workers capped by the engine's thread budget.
    pub fn par_all_pairs<A, B, F>(&self, pairs: &[(A, B)], pred: F) -> bool
    where
        A: Copy + Sync,
        B: Copy + Sync,
        F: Fn(A, B) -> bool + Sync,
    {
        relational::hom::par::par_all_pairs_capped(pairs, self.threads, pred)
    }

    /// Map `f` over `items` in parallel, preserving order; workers capped
    /// by the engine's thread budget.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        relational::hom::par::par_map_capped(items, self.threads, f)
    }

    /// Index of the first (lowest-index) item satisfying `pred`; workers
    /// capped by the engine's thread budget.
    pub fn par_find_first<T, F>(&self, items: &[T], pred: F) -> Option<usize>
    where
        T: Sync,
        F: Fn(&T) -> bool + Sync,
    {
        relational::hom::par::par_find_first_capped(items, self.threads, pred)
    }

    /// [`Engine::par_map`] with a per-item cost hint: trivial items run
    /// sequentially unless the batch is large enough to amortize thread
    /// spawns (see [`relational::hom::par::WorkHint`]).
    pub fn par_map_hinted<T, U, F>(
        &self,
        items: &[T],
        hint: relational::hom::par::WorkHint,
        f: F,
    ) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        relational::hom::par::par_map_hinted(items, self.threads, hint, f)
    }

    /// [`Engine::par_find_first`] with a per-item cost hint.
    pub fn par_find_first_hinted<T, F>(
        &self,
        items: &[T],
        hint: relational::hom::par::WorkHint,
        pred: F,
    ) -> Option<usize>
    where
        T: Sync,
        F: Fn(&T) -> bool + Sync,
    {
        relational::hom::par::par_find_first_hinted(items, self.threads, hint, pred)
    }

    // ------------------------------------------------------------------
    // Stats and persistence
    // ------------------------------------------------------------------

    /// A unified snapshot of this engine's counters. For an isolated
    /// engine every figure except `lp.bignum_promotions` (process-wide by
    /// construction — see the crate docs) is attributable to exactly the
    /// queries routed through it.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            hom: self.hom.stats(),
            game: self.game.stats(),
            lp: LpStats {
                bignum_promotions: numeric::rat::promotion_count(),
                ..self.lp.snapshot()
            },
            sub: SubsumeStats {
                hom_subsumption_hits: self.hom.subsumption_hits(),
                game_subsumption_hits: self.game.subsumption_hits(),
                lineage_edges: self.lineage.edge_count(),
                lineage_registry_hits: self.lineage.registry_hits(),
            },
            restored_entries: self.hom.restored() + self.game.restored() + self.lineage.restored(),
        }
    }

    /// Zero every per-engine counter (memo tables and the lineage edge
    /// table are untouched; the process-wide promotion counter is not
    /// per-engine and keeps running).
    pub fn reset_stats(&self) {
        self.hom.reset_stats();
        self.game.reset_stats();
        self.lp.reset();
        self.lineage.reset_stats();
    }

    /// Persist both verdict tables under `dir` (created if missing).
    /// Writes are temp-file-plus-rename, so a crash mid-save leaves any
    /// previous tables intact.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        persist::save(self, dir)
    }

    /// Restore previously saved verdict tables from `dir` into this
    /// engine's caches. Missing, truncated, or corrupted files are a
    /// *cold start*, not an error: that table restores zero entries.
    /// Restored entries count as neither hits nor misses — they show up
    /// as `restored_entries` in [`Engine::stats`] and pay off as hits on
    /// first re-query.
    pub fn load(&self, dir: &Path) -> std::io::Result<RestoreSummary> {
        persist::load(self, dir)
    }
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new()
    }
}

/// A point-in-time aggregate of all of an engine's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Homomorphism layer: search effort plus memo hits/misses.
    pub hom: HomStats,
    /// Cover-game layer: analysis effort plus memo hits/misses.
    pub game: GameStats,
    /// LP layer: solves, pivots, fast-path counters. `bignum_promotions`
    /// is the process-wide figure (promotions are not attributable to an
    /// engine).
    pub lp: LpStats,
    /// Delta/lineage layer: subsumption reuse across related databases.
    pub sub: SubsumeStats,
    /// Cache entries imported by [`Engine::load`] since the last reset
    /// (verdict tables plus lineage edges).
    pub restored_entries: u64,
}

impl EngineStats {
    /// Counter deltas since an earlier snapshot (saturating).
    pub fn since(&self, earlier: &EngineStats) -> EngineStats {
        EngineStats {
            hom: self.hom.since(&earlier.hom),
            game: self.game.since(&earlier.game),
            lp: self.lp.since(&earlier.lp),
            sub: self.sub.since(&earlier.sub),
            restored_entries: self
                .restored_entries
                .saturating_sub(earlier.restored_entries),
        }
    }

    /// A scalar work estimate for fair-share scheduling: the dominant
    /// effort counters of each solver layer summed into one figure.
    /// Search nodes and game positions dwarf the per-call counters, so
    /// the weight of a job tracks how deep its solves actually went;
    /// memo hits cost (almost) nothing and are deliberately excluded.
    /// Only meaningful on deltas ([`EngineStats::since`]) billed to one
    /// job at a time.
    pub fn cost(&self) -> u64 {
        self.hom
            .solves
            .saturating_add(self.hom.nodes_expanded)
            .saturating_add(self.game.games_solved)
            .saturating_add(self.game.positions_explored)
            .saturating_add(self.lp.lps_solved)
            .saturating_add(self.lp.simplex_pivots)
            .saturating_add(self.lp.sparse_pivots)
    }

    /// The unified human-readable report (the CLI's `--stats` output):
    /// one banner, the per-layer sections, the subsumption section, and
    /// the restored-entry count.
    pub fn report(&self) -> String {
        format!(
            "engine stats (hom + cover-game + LP):\n\
             \x20 restored cache entries: {}\n\
             {}\n{}\n{}\n{}",
            self.restored_entries,
            self.hom.report(),
            self.game.report(),
            self.lp.report(),
            self.sub.report(),
        )
    }
}

/// Counters for the delta-aware reuse paths: how many cache probes were
/// answered by a subsumption rule instead of an exact key, and how much
/// lineage (parent/child fingerprint edges from [`Engine::apply_delta`])
/// the engine is tracking.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubsumeStats {
    /// Hom-cache probes answered via a lineage-related database.
    pub hom_subsumption_hits: u64,
    /// Game-cache probes answered via a lineage-related database.
    pub game_subsumption_hits: u64,
    /// Fingerprint edges currently recorded in the lineage registry.
    pub lineage_edges: u64,
    /// `apply_delta` calls whose child fingerprint was answered by the
    /// registry memo instead of a recompute.
    pub lineage_registry_hits: u64,
}

impl SubsumeStats {
    /// Counter deltas since an earlier snapshot (saturating).
    /// `lineage_edges` is a gauge, not a counter: the current value is
    /// carried through unchanged.
    pub fn since(&self, earlier: &SubsumeStats) -> SubsumeStats {
        SubsumeStats {
            hom_subsumption_hits: self
                .hom_subsumption_hits
                .saturating_sub(earlier.hom_subsumption_hits),
            game_subsumption_hits: self
                .game_subsumption_hits
                .saturating_sub(earlier.game_subsumption_hits),
            lineage_edges: self.lineage_edges,
            lineage_registry_hits: self
                .lineage_registry_hits
                .saturating_sub(earlier.lineage_registry_hits),
        }
    }

    /// The `subsumption:` section of [`EngineStats::report`].
    pub fn report(&self) -> String {
        format!(
            "subsumption:\n\
             \x20 hom subsumption hits:   {}\n\
             \x20 game subsumption hits:  {}\n\
             \x20 lineage edges:          {}\n\
             \x20 lineage registry hits:  {}",
            self.hom_subsumption_hits,
            self.game_subsumption_hits,
            self.lineage_edges,
            self.lineage_registry_hits,
        )
    }
}

// ----------------------------------------------------------------------
// Engine-threaded QBE entry points
//
// `foo_in(&Ctx, ...)` is the interruptible implementation; `foo_with`
// delegates with an unbounded context (whose Interrupted arm cannot
// fire, so the shim unwraps it). See `ctx` module docs for the
// convention.
// ----------------------------------------------------------------------

/// [`qbe::cq_qbe_decide`] with the product-hom tests routed through the
/// context's engine and observing its interrupt handle.
pub fn cq_qbe_decide_in(
    ctx: &Ctx,
    d: &Database,
    pos: &[Val],
    neg: &[Val],
    product_budget: usize,
) -> Result<Result<bool, QbeError>, Interrupted> {
    ctx.check()?;
    // Workers report a filler verdict on Stop; the sticky post-check
    // below discards the (possibly bogus) result.
    let out = qbe::cq_qbe_decide_via(
        &|f, t, x| ctx.hom_exists(f, t, x).unwrap_or(false),
        d,
        pos,
        neg,
        product_budget,
    );
    ctx.check()?;
    Ok(out)
}

/// [`qbe::cq_qbe_decide`] with the product-hom tests routed through
/// `engine`'s cache and counters.
pub fn cq_qbe_decide_with(
    engine: &Engine,
    d: &Database,
    pos: &[Val],
    neg: &[Val],
    product_budget: usize,
) -> Result<bool, QbeError> {
    cq_qbe_decide_in(&engine.ctx(), d, pos, neg, product_budget)
        .expect("unbounded ctx cannot interrupt")
}

/// [`qbe::cq_qbe_explain`] with the product-hom tests routed through the
/// context's engine and observing its interrupt handle.
pub fn cq_qbe_explain_in(
    ctx: &Ctx,
    d: &Database,
    pos: &[Val],
    neg: &[Val],
    product_budget: usize,
) -> Result<Result<Option<Cq>, QbeError>, Interrupted> {
    ctx.check()?;
    let out = qbe::cq_qbe_explain_via(
        &|f, t, x| ctx.hom_exists(f, t, x).unwrap_or(false),
        d,
        pos,
        neg,
        product_budget,
    );
    ctx.check()?;
    Ok(out)
}

/// [`qbe::cq_qbe_explain`] with the product-hom tests routed through
/// `engine`'s cache and counters.
pub fn cq_qbe_explain_with(
    engine: &Engine,
    d: &Database,
    pos: &[Val],
    neg: &[Val],
    product_budget: usize,
) -> Result<Option<Cq>, QbeError> {
    cq_qbe_explain_in(&engine.ctx(), d, pos, neg, product_budget)
        .expect("unbounded ctx cannot interrupt")
}

/// [`qbe::ghw_qbe_decide`] with the cover-game tests routed through the
/// context's engine and observing its interrupt handle.
pub fn ghw_qbe_decide_in(
    ctx: &Ctx,
    d: &Database,
    pos: &[Val],
    neg: &[Val],
    k: usize,
    product_budget: usize,
) -> Result<Result<bool, QbeError>, Interrupted> {
    ctx.check()?;
    let out = qbe::ghw_qbe_decide_via(
        &|g, a, g2, b, kk| ctx.cover_implies(g, a, g2, b, kk).unwrap_or(false),
        d,
        pos,
        neg,
        k,
        product_budget,
    );
    ctx.check()?;
    Ok(out)
}

/// [`qbe::ghw_qbe_decide`] with the cover-game tests routed through
/// `engine`'s cache and counters.
pub fn ghw_qbe_decide_with(
    engine: &Engine,
    d: &Database,
    pos: &[Val],
    neg: &[Val],
    k: usize,
    product_budget: usize,
) -> Result<bool, QbeError> {
    ghw_qbe_decide_in(&engine.ctx(), d, pos, neg, k, product_budget)
        .expect("unbounded ctx cannot interrupt")
}

/// [`qbe::ghw_qbe_explain`] under a context. Extraction unfolds
/// Spoiler's strategy from the *analyzed game*, which a verdict cache
/// cannot supply, so the games here run uncached regardless of the
/// engine's configuration. The extraction itself is budget-bounded, so
/// interruption is observed at the entry and exit checks only.
pub fn ghw_qbe_explain_in(
    ctx: &Ctx,
    d: &Database,
    pos: &[Val],
    neg: &[Val],
    k: usize,
    product_budget: usize,
    extract_budget: usize,
) -> Result<Result<Option<Cq>, QbeError>, Interrupted> {
    ctx.check()?;
    let out = qbe::ghw_qbe_explain(d, pos, neg, k, product_budget, extract_budget);
    ctx.check()?;
    Ok(out)
}

/// [`qbe::ghw_qbe_explain`] under an engine (see
/// [`ghw_qbe_explain_in`] for why the games run uncached).
pub fn ghw_qbe_explain_with(
    engine: &Engine,
    d: &Database,
    pos: &[Val],
    neg: &[Val],
    k: usize,
    product_budget: usize,
    extract_budget: usize,
) -> Result<Option<Cq>, QbeError> {
    ghw_qbe_explain_in(
        &engine.ctx(),
        d,
        pos,
        neg,
        k,
        product_budget,
        extract_budget,
    )
    .expect("unbounded ctx cannot interrupt")
}

/// [`qbe::cqm_qbe`] with the candidate scan fanned out under the
/// context's thread budget, observed in blocks: the handle is checked
/// between blocks of candidates, so a deadline lands within one block's
/// worth of acceptance tests. Returns the same (lowest-index) first
/// acceptable candidate as the sequential enumeration.
pub fn cqm_qbe_in(
    ctx: &Ctx,
    d: &Database,
    pos: &[Val],
    neg: &[Val],
    config: &EnumConfig,
) -> Result<Option<Cq>, Interrupted> {
    ctx.check()?;
    let candidates = qbe::cqm_qbe_candidates(d, config);
    const BLOCK: usize = 64;
    for chunk in candidates.chunks(BLOCK) {
        ctx.check()?;
        if let Some(i) = ctx
            .engine()
            .par_find_first(chunk, |q| qbe::cqm_qbe_accepts(q, d, pos, neg))
        {
            return Ok(Some(chunk[i].clone()));
        }
    }
    Ok(None)
}

/// [`qbe::cqm_qbe`] with the candidate scan fanned out under `engine`'s
/// thread budget.
pub fn cqm_qbe_with(
    engine: &Engine,
    d: &Database,
    pos: &[Val],
    neg: &[Val],
    config: &EnumConfig,
) -> Option<Cq> {
    cqm_qbe_in(&engine.ctx(), d, pos, neg, config).expect("unbounded ctx cannot interrupt")
}

/// Interruptible [`separate_with`] (the free-function form of
/// [`Ctx::separate`]).
pub fn separate_in(
    ctx: &Ctx,
    vectors: &[Vec<i32>],
    labels: &[i32],
) -> Result<Option<LinearClassifier>, Interrupted> {
    ctx.separate(vectors, labels)
}

/// [`linsep::separate`] counted against `engine`'s LP counters.
pub fn separate_with(
    engine: &Engine,
    vectors: &[Vec<i32>],
    labels: &[i32],
) -> Option<LinearClassifier> {
    engine.separate(vectors, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{DbBuilder, Schema};

    fn graph(edges: &[(&str, &str)], entities: &[&str]) -> Database {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        let mut b = DbBuilder::new(s);
        for &(x, y) in edges {
            b = b.fact("E", &[x, y]);
        }
        for &e in entities {
            b = b.entity(e);
        }
        b.build()
    }

    #[test]
    fn fresh_engine_starts_at_zero_and_counts_its_own_work() {
        let e = Engine::new();
        assert_eq!(
            e.stats(),
            EngineStats {
                lp: LpStats {
                    bignum_promotions: e.stats().lp.bignum_promotions,
                    ..LpStats::default()
                },
                ..EngineStats::default()
            }
        );
        let p = graph(&[("a", "b"), ("b", "c")], &[]);
        let c3 = graph(&[("x", "y"), ("y", "z"), ("z", "x")], &[]);
        assert!(e.hom_exists(&p, &c3, &[]));
        assert!(e.hom_exists(&p, &c3, &[]));
        let st = e.stats();
        assert_eq!((st.hom.cache_hits, st.hom.cache_misses), (1, 1));
        assert_eq!(st.hom.solves, 1);
        assert!(st.hom.nodes_expanded >= 1);
        // The game and LP layers saw nothing.
        assert_eq!(st.game, GameStats::default());
        assert_eq!(st.lp.lps_solved, 0);
    }

    #[test]
    fn no_cache_engine_recomputes_every_query() {
        let e = Engine::new().without_cache();
        assert!(!e.caching_enabled());
        let p = graph(&[("a", "b"), ("b", "c")], &[]);
        let c3 = graph(&[("x", "y"), ("y", "z"), ("z", "x")], &[]);
        assert!(e.hom_exists(&p, &c3, &[]));
        assert!(e.hom_exists(&p, &c3, &[]));
        let a = c3.val_by_name("x").unwrap();
        let one = p.val_by_name("a").unwrap();
        assert_eq!(
            e.cover_implies(&c3, &[a], &p, &[one], 1),
            covergame::cover_implies(&c3, &[a], &p, &[one], 1)
        );
        e.cover_implies(&c3, &[a], &p, &[one], 1);
        let st = e.stats();
        // Every query is a miss and a fresh solve; nothing is memoized.
        assert_eq!((st.hom.cache_hits, st.hom.cache_misses), (0, 2));
        assert_eq!(st.hom.solves, 2);
        assert_eq!((st.game.cache_hits, st.game.cache_misses), (0, 2));
        assert_eq!(st.game.games_solved, 2);
        assert!(e.hom_cache().is_empty());
        assert!(e.game_cache().is_empty());
    }

    #[test]
    fn thread_budget_is_recorded_and_results_unchanged() {
        let seq = Engine::new().with_threads(1);
        let par = Engine::new().with_threads(8);
        assert_eq!(seq.thread_budget(), Some(1));
        let items: Vec<usize> = (0..100).collect();
        assert_eq!(
            seq.par_map(&items, |&x| x * 3),
            par.par_map(&items, |&x| x * 3)
        );
        assert_eq!(
            seq.par_find_first(&items, |&x| x > 42),
            par.par_find_first(&items, |&x| x > 42)
        );
    }

    #[test]
    fn effective_parallelism_clamps_to_hardware() {
        let hw = relational::hom::par::hardware_parallelism();
        assert_eq!(Engine::new().effective_parallelism(), hw);
        assert_eq!(Engine::new().with_threads(1).effective_parallelism(), 1);
        // 0 means "sequential, but make progress".
        assert_eq!(Engine::new().with_threads(0).effective_parallelism(), 1);
        // A budget above the core count cannot manufacture parallelism.
        assert!(Engine::new().with_threads(4096).effective_parallelism() <= hw);
    }

    #[test]
    fn budget_one_engine_runs_drivers_on_the_calling_thread() {
        // Regression for the parallel-slowdown bug: an engine pinned to
        // one thread must not pay scoped-spawn overhead — every driver
        // closure runs on the caller.
        let e = Engine::new().with_threads(1);
        assert_eq!(e.effective_parallelism(), 1);
        let caller = std::thread::current().id();
        let items: Vec<usize> = (0..64).collect();
        let ids = e.par_map(&items, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
        let found = e.par_find_first(&items, |&x| {
            assert_eq!(std::thread::current().id(), caller);
            x == 40
        });
        assert_eq!(found, Some(40));
    }

    #[test]
    fn preorder_matches_the_reference_sweep() {
        let d = graph(
            &[("1", "2"), ("2", "3"), ("a", "b"), ("b", "a")],
            &["1", "2", "3", "a", "b"],
        );
        let e = Engine::new();
        for k in 1..=2 {
            let ours = e.preorder(&d, &d.entities(), k);
            let reference = CoverPreorder::compute_seq(&d, &d.entities(), k);
            assert_eq!(ours.leq, reference.leq, "k={k}");
            assert_eq!(ours.class_of, reference.class_of, "k={k}");
        }
        // n² − n games, all misses on a fresh table.
        let st = e.stats();
        assert_eq!(st.game.cache_misses, 2 * (25 - 5));
    }

    #[test]
    fn chain_vector_for_matches_classes_impl() {
        let d = graph(&[("1", "2"), ("2", "3")], &["1", "2", "3"]);
        let e = Engine::new();
        let pre = e.preorder(&d, &d.entities(), 1);
        for &f in &pre.elems {
            assert_eq!(
                e.chain_vector_for(&pre, &d, &d, f),
                pre.chain_vector_for_with(&d, &d, f, e.game_cache())
            );
        }
    }

    #[test]
    fn separate_counts_into_the_engine() {
        let e = Engine::new();
        let vs = vec![vec![1, 1], vec![-1, -1]];
        assert!(e.separate(&vs, &[1, -1]).is_some());
        let dup = vec![vec![1, -1], vec![1, -1]];
        assert!(e.separate(&dup, &[1, -1]).is_none());
        let st = e.stats();
        assert_eq!(st.lp.perceptron_hits, 1);
        assert_eq!(st.lp.conflict_prunes, 1);
        assert_eq!(st.lp.lps_solved, 0);
    }

    #[test]
    fn unified_report_embeds_all_three_sections() {
        let e = Engine::new();
        let r = e.stats().report();
        for needle in [
            "engine stats",
            "restored cache entries",
            "hom engine stats",
            "nodes expanded",
            "cover-game engine stats",
            "games solved",
            "fixpoint sweeps",
            "lp engine stats",
            "simplex pivots",
            "bignum promotions",
            "subsumption:",
            "lineage registry hits",
        ] {
            assert!(r.contains(needle), "missing {needle:?} in {r}");
        }
    }

    #[test]
    fn apply_delta_records_lineage_and_enables_subsumption() {
        let e = Engine::new();
        let p = graph(&[("a", "b"), ("b", "c")], &[]);
        let mut c3 = graph(&[("x", "y"), ("y", "z"), ("z", "x")], &[]);
        // Warm the cache on the original target.
        assert!(e.hom_exists(&p, &c3, &[]));
        // Grow the target by one fresh edge through the engine: the
        // lineage registry learns (parent, delta) -> child.
        let delta = relational::Delta::new()
            .add_value("w")
            .add_fact("E", &["z", "w"]);
        let receipt = e.apply_delta(&mut c3, &delta).unwrap();
        assert_eq!(receipt.kind, relational::DeltaKind::InsertOnly);
        assert!(e.stats().sub.lineage_edges >= 1);
        // The positive verdict transfers to the grown target without a
        // fresh search: a subsumption hit, not a miss.
        let before = e.stats();
        assert!(e.hom_exists(&p, &c3, &[]));
        let d = e.stats().since(&before);
        assert_eq!(d.sub.hom_subsumption_hits, 1);
        assert_eq!(d.hom.solves, 0);
        // Re-applying the identical delta to a fresh copy of the parent
        // is answered by the registry memo.
        let mut again = graph(&[("x", "y"), ("y", "z"), ("z", "x")], &[]);
        let r2 = e.apply_delta(&mut again, &delta).unwrap();
        assert!(r2.registry_hit);
        assert!(e.stats().sub.lineage_registry_hits >= 1);
    }

    #[test]
    fn reset_zeroes_engine_counters() {
        let e = Engine::new();
        let p = graph(&[("a", "b")], &[]);
        let c2 = graph(&[("x", "y"), ("y", "x")], &[]);
        e.hom_exists(&p, &c2, &[]);
        e.reset_stats();
        let st = e.stats();
        assert_eq!(st.hom, HomStats::default());
        assert_eq!(st.game, GameStats::default());
        assert_eq!(st.restored_entries, 0);
        // The table survives a stats reset: next query is a hit.
        e.hom_exists(&p, &c2, &[]);
        assert_eq!(e.stats().hom.cache_hits, 1);
    }

    #[test]
    fn qbe_wrappers_agree_with_plain_entry_points() {
        let d = graph(
            &[("a", "b"), ("b", "c"), ("c", "a"), ("p", "q"), ("q", "r")],
            &["a", "b", "p"],
        );
        let (a, b, p) = (
            d.val_by_name("a").unwrap(),
            d.val_by_name("b").unwrap(),
            d.val_by_name("p").unwrap(),
        );
        let e = Engine::new();
        assert_eq!(
            cq_qbe_decide_with(&e, &d, &[a, b], &[p], 100_000),
            qbe::cq_qbe_decide(&d, &[a, b], &[p], 100_000)
        );
        assert_eq!(
            ghw_qbe_decide_with(&e, &d, &[a, b], &[p], 1, 100_000),
            qbe::ghw_qbe_decide(&d, &[a, b], &[p], 1, 100_000)
        );
        let cfg = EnumConfig::cqm(1);
        assert_eq!(
            cqm_qbe_with(&e, &d, &[a, b], &[p], &cfg),
            qbe::cqm_qbe(&d, &[a, b], &[p], &cfg)
        );
        // The hom/game tests went through the engine's caches.
        let st = e.stats();
        assert!(st.hom.cache_misses >= 1);
        assert!(st.game.cache_misses >= 1);
    }
}
