//! On-disk persistence for an [`Engine`](crate::Engine)'s verdict tables.
//!
//! Cache keys are built from [`relational::Database::fingerprint`] —
//! a *content* hash — so a persisted verdict is valid in any later
//! process that constructs a database with the same facts, regardless of
//! allocation order or process identity. That makes the tables safe to
//! ship between runs: a warm start is `Engine::load(dir)` before the
//! solve, `Engine::save(dir)` after.
//!
//! # Format
//!
//! Two files under the cache directory, one per table, each a simple
//! versioned little-endian binary dump:
//!
//! ```text
//! hom.cache:   "CQSEPCH1" | u64 count | count × entry
//!     entry:   u128 from_fp | u128 to_fp | u32 npairs
//!              | npairs × (u32 from_val, u32 to_val) | u8 verdict
//! game.cache:  "CQSEPCG1" | u64 count | count × entry
//!     entry:   u128 d_fp | u128 d2_fp | u32 na | na × u32
//!              | u32 nb | nb × u32 | u32 k | u8 verdict
//! ```
//!
//! Verdict bytes are strictly `0`/`1`. Loading is all-or-nothing per
//! file: a missing file, wrong magic, truncated entry, trailing garbage,
//! or invalid verdict byte discards that file's table entirely (a *cold*
//! start for that layer) rather than importing a prefix of unknown
//! integrity. Saving writes a temp file in the target directory and
//! renames it into place, so a crash mid-save cannot clobber a previous
//! good table.

use crate::Engine;
use relational::Val;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// File names within a cache directory.
pub const HOM_FILE: &str = "hom.cache";
pub const GAME_FILE: &str = "game.cache";

const HOM_MAGIC: [u8; 8] = *b"CQSEPCH1";
const GAME_MAGIC: [u8; 8] = *b"CQSEPCG1";

/// What [`Engine::load`](crate::Engine::load) found in a cache
/// directory. A corrupted or missing table reports zero entries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RestoreSummary {
    /// Hom-existence verdicts imported.
    pub hom_entries: u64,
    /// Cover-game verdicts imported.
    pub game_entries: u64,
}

impl RestoreSummary {
    /// Total verdicts imported across both tables.
    pub fn total(&self) -> u64 {
        self.hom_entries + self.game_entries
    }
}

pub(crate) fn save(engine: &Engine, dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    write_atomic(&dir.join(HOM_FILE), &encode_hom(engine))?;
    write_atomic(&dir.join(GAME_FILE), &encode_game(engine))?;
    Ok(())
}

pub(crate) fn load(engine: &Engine, dir: &Path) -> io::Result<RestoreSummary> {
    let mut summary = RestoreSummary::default();
    if let Some(entries) = fs::read(dir.join(HOM_FILE)).ok().and_then(decode_hom) {
        summary.hom_entries = entries.len() as u64;
        for (from_fp, to_fp, fixed, ans) in entries {
            engine.hom_cache().import_entry(from_fp, to_fp, fixed, ans);
        }
    }
    if let Some(entries) = fs::read(dir.join(GAME_FILE)).ok().and_then(decode_game) {
        summary.game_entries = entries.len() as u64;
        for (d_fp, d2_fp, a, b, k, ans) in entries {
            engine.game_cache().import_entry(d_fp, d2_fp, a, b, k, ans);
        }
    }
    Ok(summary)
}

/// Write `bytes` to `path` via a sibling temp file and an atomic rename.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = Path::new(&tmp);
    fs::write(tmp, bytes)?;
    fs::rename(tmp, path)
}

fn encode_hom(engine: &Engine) -> Vec<u8> {
    let entries = engine.hom_cache().export_entries();
    let mut out = Vec::new();
    out.extend_from_slice(&HOM_MAGIC);
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for (from_fp, to_fp, fixed, ans) in entries {
        out.extend_from_slice(&from_fp.to_le_bytes());
        out.extend_from_slice(&to_fp.to_le_bytes());
        out.extend_from_slice(&(fixed.len() as u32).to_le_bytes());
        for (a, b) in fixed {
            out.extend_from_slice(&a.0.to_le_bytes());
            out.extend_from_slice(&b.0.to_le_bytes());
        }
        out.push(ans as u8);
    }
    out
}

fn encode_game(engine: &Engine) -> Vec<u8> {
    let entries = engine.game_cache().export_entries();
    let mut out = Vec::new();
    out.extend_from_slice(&GAME_MAGIC);
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for (d_fp, d2_fp, a, b, k, ans) in entries {
        out.extend_from_slice(&d_fp.to_le_bytes());
        out.extend_from_slice(&d2_fp.to_le_bytes());
        out.extend_from_slice(&(a.len() as u32).to_le_bytes());
        for v in a {
            out.extend_from_slice(&v.0.to_le_bytes());
        }
        out.extend_from_slice(&(b.len() as u32).to_le_bytes());
        for v in b {
            out.extend_from_slice(&v.0.to_le_bytes());
        }
        out.extend_from_slice(&(k as u32).to_le_bytes());
        out.push(ans as u8);
    }
    out
}

#[allow(clippy::type_complexity)]
fn decode_hom(bytes: Vec<u8>) -> Option<Vec<(u128, u128, Vec<(Val, Val)>, bool)>> {
    let mut r = Reader::with_magic(&bytes, &HOM_MAGIC)?;
    let count = r.u64()?;
    let mut out = Vec::new();
    for _ in 0..count {
        let from_fp = r.u128()?;
        let to_fp = r.u128()?;
        let npairs = r.u32()?;
        let mut fixed = Vec::new();
        for _ in 0..npairs {
            fixed.push((Val(r.u32()?), Val(r.u32()?)));
        }
        out.push((from_fp, to_fp, fixed, r.verdict()?));
    }
    r.finished().then_some(out)
}

#[allow(clippy::type_complexity)]
fn decode_game(bytes: Vec<u8>) -> Option<Vec<(u128, u128, Vec<Val>, Vec<Val>, usize, bool)>> {
    let mut r = Reader::with_magic(&bytes, &GAME_MAGIC)?;
    let count = r.u64()?;
    let mut out = Vec::new();
    for _ in 0..count {
        let d_fp = r.u128()?;
        let d2_fp = r.u128()?;
        let a = r.val_vec()?;
        let b = r.val_vec()?;
        let k = r.u32()? as usize;
        out.push((d_fp, d2_fp, a, b, k, r.verdict()?));
    }
    r.finished().then_some(out)
}

/// A bounds-checked little-endian cursor. Every accessor returns `None`
/// on underrun, so corrupted length fields fail cleanly instead of
/// panicking or over-allocating (vectors grow one element per 4–8 bytes
/// actually present in the buffer).
struct Reader<'a> {
    rest: &'a [u8],
}

impl<'a> Reader<'a> {
    fn with_magic(bytes: &'a [u8], magic: &[u8; 8]) -> Option<Reader<'a>> {
        let rest = bytes.strip_prefix(magic.as_slice())?;
        Some(Reader { rest })
    }

    fn take<const N: usize>(&mut self) -> Option<[u8; N]> {
        let (head, tail) = self.rest.split_at_checked(N)?;
        self.rest = tail;
        head.try_into().ok()
    }

    fn u32(&mut self) -> Option<u32> {
        self.take().map(u32::from_le_bytes)
    }

    fn u64(&mut self) -> Option<u64> {
        self.take().map(u64::from_le_bytes)
    }

    fn u128(&mut self) -> Option<u128> {
        self.take().map(u128::from_le_bytes)
    }

    fn verdict(&mut self) -> Option<bool> {
        match self.take::<1>()? {
            [0] => Some(false),
            [1] => Some(true),
            _ => None,
        }
    }

    fn val_vec(&mut self) -> Option<Vec<Val>> {
        let n = self.u32()?;
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(Val(self.u32()?));
        }
        Some(out)
    }

    /// All bytes consumed? Trailing garbage means the count field and the
    /// payload disagree — treated as corruption by the decoders.
    fn finished(&self) -> bool {
        self.rest.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_rejects_bad_magic_and_underruns() {
        assert!(Reader::with_magic(b"NOTMAGIC", &HOM_MAGIC).is_none());
        let mut ok = HOM_MAGIC.to_vec();
        ok.extend_from_slice(&3u64.to_le_bytes());
        let mut r = Reader::with_magic(&ok, &HOM_MAGIC).unwrap();
        assert_eq!(r.u64(), Some(3));
        assert_eq!(r.u32(), None, "underrun must fail, not panic");
    }

    #[test]
    fn verdict_bytes_are_strict() {
        let mut buf = HOM_MAGIC.to_vec();
        buf.push(2);
        let mut r = Reader::with_magic(&buf, &HOM_MAGIC).unwrap();
        assert_eq!(r.verdict(), None);
    }

    #[test]
    fn trailing_garbage_is_corruption() {
        let mut buf = HOM_MAGIC.to_vec();
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert_eq!(decode_hom(buf.clone()).map(|v| v.len()), Some(0));
        buf.push(0xFF);
        assert_eq!(decode_hom(buf), None);
    }
}
