//! On-disk persistence for an [`Engine`](crate::Engine)'s verdict tables.
//!
//! Cache keys are built from [`relational::Database::fingerprint`] —
//! a *content* hash — so a persisted verdict is valid in any later
//! process that constructs a database with the same facts, regardless of
//! allocation order or process identity. That makes the tables safe to
//! ship between runs: a warm start is `Engine::load(dir)` before the
//! solve, `Engine::save(dir)` after.
//!
//! # Format
//!
//! Three files under the cache directory — one per verdict table plus
//! the lineage edge table — each a simple versioned little-endian
//! binary dump in the shared [`serde::bytes`] wire style:
//!
//! ```text
//! hom.cache:     "CQSEPCH1" | u64 count | count × entry
//!     entry:     u128 from_fp | u128 to_fp | u32 npairs
//!                | npairs × (u32 from_val, u32 to_val) | u8 verdict
//! game.cache:    "CQSEPCG1" | u64 count | count × entry
//!     entry:     u128 d_fp | u128 d2_fp | u32 na | na × u32
//!                | u32 nb | nb × u32 | u32 k | u8 verdict
//! lineage.table: "CQSEPLN1" | u64 count | count × entry
//!     entry:     u128 parent_fp | u128 delta_fp | u128 child_fp
//!                | u8 kind
//! ```
//!
//! Verdict bytes are strictly `0`/`1`; lineage kind bytes must be valid
//! [`DeltaKind`] codes. Loading is all-or-nothing per file: a missing
//! file, wrong magic, truncated entry, trailing garbage, or invalid
//! byte discards that file's table entirely (a *cold* start for that
//! layer) rather than importing a prefix of unknown integrity. Saving
//! writes a temp file in the target directory and renames it into
//! place, so a crash mid-save cannot clobber a previous good table.

use crate::Engine;
use relational::{DeltaKind, Val};
use serde::bytes::{write_atomic, ByteReader, ByteWriter};
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// File names within a cache directory.
pub const HOM_FILE: &str = "hom.cache";
pub const GAME_FILE: &str = "game.cache";
pub const LINEAGE_FILE: &str = "lineage.table";

const HOM_MAGIC: [u8; 8] = *b"CQSEPCH1";
const GAME_MAGIC: [u8; 8] = *b"CQSEPCG1";
const LINEAGE_MAGIC: [u8; 8] = *b"CQSEPLN1";

/// What [`Engine::load`](crate::Engine::load) found in a cache
/// directory. A corrupted or missing table reports zero entries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RestoreSummary {
    /// Hom-existence verdicts imported.
    pub hom_entries: u64,
    /// Cover-game verdicts imported.
    pub game_entries: u64,
    /// Lineage fingerprint edges imported.
    pub lineage_edges: u64,
}

impl RestoreSummary {
    /// Total entries imported across all tables.
    pub fn total(&self) -> u64 {
        self.hom_entries + self.game_entries + self.lineage_edges
    }
}

pub(crate) fn save(engine: &Engine, dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    write_atomic(&dir.join(HOM_FILE), &encode_hom(engine))?;
    write_atomic(&dir.join(GAME_FILE), &encode_game(engine))?;
    write_atomic(&dir.join(LINEAGE_FILE), &encode_lineage(engine))?;
    Ok(())
}

pub(crate) fn load(engine: &Engine, dir: &Path) -> io::Result<RestoreSummary> {
    let mut summary = RestoreSummary::default();
    if let Some(entries) = fs::read(dir.join(HOM_FILE)).ok().and_then(decode_hom) {
        summary.hom_entries = entries.len() as u64;
        for (from_fp, to_fp, fixed, ans) in entries {
            engine.hom_cache().import_entry(from_fp, to_fp, fixed, ans);
        }
    }
    if let Some(entries) = fs::read(dir.join(GAME_FILE)).ok().and_then(decode_game) {
        summary.game_entries = entries.len() as u64;
        for (d_fp, d2_fp, a, b, k, ans) in entries {
            engine.game_cache().import_entry(d_fp, d2_fp, a, b, k, ans);
        }
    }
    if let Some(entries) = fs::read(dir.join(LINEAGE_FILE))
        .ok()
        .and_then(decode_lineage)
    {
        summary.lineage_edges = entries.len() as u64;
        for (parent_fp, delta_fp, child_fp, kind) in entries {
            engine
                .lineage()
                .import_edge(parent_fp, delta_fp, child_fp, kind);
        }
    }
    Ok(summary)
}

fn encode_hom(engine: &Engine) -> Vec<u8> {
    let entries = engine.hom_cache().export_entries();
    let mut w = ByteWriter::with_magic(&HOM_MAGIC);
    w.u64(entries.len() as u64);
    for (from_fp, to_fp, fixed, ans) in entries {
        w.u128(from_fp);
        w.u128(to_fp);
        w.u32(fixed.len() as u32);
        for (a, b) in fixed {
            w.u32(a.0);
            w.u32(b.0);
        }
        w.verdict(ans);
    }
    w.finish()
}

fn encode_game(engine: &Engine) -> Vec<u8> {
    let entries = engine.game_cache().export_entries();
    let mut w = ByteWriter::with_magic(&GAME_MAGIC);
    w.u64(entries.len() as u64);
    for (d_fp, d2_fp, a, b, k, ans) in entries {
        w.u128(d_fp);
        w.u128(d2_fp);
        w.u32(a.len() as u32);
        for v in a {
            w.u32(v.0);
        }
        w.u32(b.len() as u32);
        for v in b {
            w.u32(v.0);
        }
        w.u32(k as u32);
        w.verdict(ans);
    }
    w.finish()
}

fn encode_lineage(engine: &Engine) -> Vec<u8> {
    let edges = engine.lineage().export_edges();
    let mut w = ByteWriter::with_magic(&LINEAGE_MAGIC);
    w.u64(edges.len() as u64);
    for (parent_fp, delta_fp, child_fp, kind) in edges {
        w.u128(parent_fp);
        w.u128(delta_fp);
        w.u128(child_fp);
        w.u8(kind.code());
    }
    w.finish()
}

#[allow(clippy::type_complexity)]
fn decode_lineage(bytes: Vec<u8>) -> Option<Vec<(u128, u128, u128, DeltaKind)>> {
    let mut r = ByteReader::with_magic(&bytes, &LINEAGE_MAGIC)?;
    let count = r.u64()?;
    let mut out = Vec::new();
    for _ in 0..count {
        let parent_fp = r.u128()?;
        let delta_fp = r.u128()?;
        let child_fp = r.u128()?;
        let kind = DeltaKind::from_code(r.u8()?)?;
        out.push((parent_fp, delta_fp, child_fp, kind));
    }
    r.finished().then_some(out)
}

fn val_vec(r: &mut ByteReader<'_>) -> Option<Vec<Val>> {
    let n = r.u32()?;
    let mut out = Vec::new();
    for _ in 0..n {
        out.push(Val(r.u32()?));
    }
    Some(out)
}

#[allow(clippy::type_complexity)]
fn decode_hom(bytes: Vec<u8>) -> Option<Vec<(u128, u128, Vec<(Val, Val)>, bool)>> {
    let mut r = ByteReader::with_magic(&bytes, &HOM_MAGIC)?;
    let count = r.u64()?;
    let mut out = Vec::new();
    for _ in 0..count {
        let from_fp = r.u128()?;
        let to_fp = r.u128()?;
        let npairs = r.u32()?;
        let mut fixed = Vec::new();
        for _ in 0..npairs {
            fixed.push((Val(r.u32()?), Val(r.u32()?)));
        }
        out.push((from_fp, to_fp, fixed, r.verdict()?));
    }
    r.finished().then_some(out)
}

#[allow(clippy::type_complexity)]
fn decode_game(bytes: Vec<u8>) -> Option<Vec<(u128, u128, Vec<Val>, Vec<Val>, usize, bool)>> {
    let mut r = ByteReader::with_magic(&bytes, &GAME_MAGIC)?;
    let count = r.u64()?;
    let mut out = Vec::new();
    for _ in 0..count {
        let d_fp = r.u128()?;
        let d2_fp = r.u128()?;
        let a = val_vec(&mut r)?;
        let b = val_vec(&mut r)?;
        let k = r.u32()? as usize;
        out.push((d_fp, d2_fp, a, b, k, r.verdict()?));
    }
    r.finished().then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_rejects_bad_magic_and_underruns() {
        assert!(ByteReader::with_magic(b"NOTMAGIC", &HOM_MAGIC).is_none());
        let mut ok = HOM_MAGIC.to_vec();
        ok.extend_from_slice(&3u64.to_le_bytes());
        let mut r = ByteReader::with_magic(&ok, &HOM_MAGIC).unwrap();
        assert_eq!(r.u64(), Some(3));
        assert_eq!(r.u32(), None, "underrun must fail, not panic");
    }

    #[test]
    fn verdict_bytes_are_strict() {
        let mut buf = HOM_MAGIC.to_vec();
        buf.push(2);
        let mut r = ByteReader::with_magic(&buf, &HOM_MAGIC).unwrap();
        assert_eq!(r.verdict(), None);
    }

    #[test]
    fn trailing_garbage_is_corruption() {
        let mut buf = HOM_MAGIC.to_vec();
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert_eq!(decode_hom(buf.clone()).map(|v| v.len()), Some(0));
        buf.push(0xFF);
        assert_eq!(decode_hom(buf), None);
    }
}
