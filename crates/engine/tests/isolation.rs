//! Cross-engine isolation: independent `Engine` instances must agree on
//! every verdict (with each other, with the global shim, and with the
//! raw solvers) while sharing no counters and no cache entries.

use engine::Engine;
use relational::{Database, DbBuilder, Schema, Val};

/// Deterministic xorshift64* — the workload must be random-ish but
/// reproducible across runs and platforms.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random digraph on `n` named vertices with ~`edges` edges, all
/// vertices entities.
fn random_graph(rng: &mut Rng, n: u64, edges: u64) -> Database {
    let mut s = Schema::entity_schema();
    s.add_relation("E", 2);
    let mut b = DbBuilder::new(s);
    for e in 0..edges {
        let x = rng.below(n);
        let mut y = rng.below(n);
        if x == y {
            y = (y + 1) % n;
        }
        let _ = e;
        b = b.fact("E", &[&format!("v{x}"), &format!("v{y}")]);
    }
    for v in 0..n {
        b = b.entity(&format!("v{v}"));
    }
    b.build()
}

#[test]
fn fresh_engines_agree_with_each_other_and_the_global_shim() {
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    let ea = Engine::new();
    let eb = Engine::new();
    for round in 0..12 {
        let (n1, m1) = (4 + rng.below(3), 5 + rng.below(5));
        let d = random_graph(&mut rng, n1, m1);
        let (n2, m2) = (4 + rng.below(3), 5 + rng.below(5));
        let d2 = random_graph(&mut rng, n2, m2);
        let a: Vec<Val> = d.dom().take(2).collect();
        let b: Vec<Val> = d2.dom().take(2).collect();

        // Hom layer: both engines, the global shim, and the raw solver
        // must return the same verdict.
        let raw = relational::homomorphism_exists(&d, &d2, &[]);
        assert_eq!(ea.hom_exists(&d, &d2, &[]), raw, "round {round}");
        assert_eq!(eb.hom_exists(&d, &d2, &[]), raw, "round {round}");
        assert_eq!(Engine::global().hom_exists(&d, &d2, &[]), raw);
        assert_eq!(relational::exists_cached(&d, &d2, &[]), raw);

        // Game layer, k = 1 and 2.
        for k in 1..=2 {
            let raw = covergame::cover_implies(&d, &a, &d2, &b, k);
            assert_eq!(
                ea.cover_implies(&d, &a, &d2, &b, k),
                raw,
                "round {round} k={k}"
            );
            assert_eq!(
                eb.cover_implies(&d, &a, &d2, &b, k),
                raw,
                "round {round} k={k}"
            );
            assert_eq!(covergame::cover_implies_cached(&d, &a, &d2, &b, k), raw);
        }
    }

    // Identical query streams through two fresh engines: identical
    // per-engine counters, and every lookup was a miss in both — no
    // cross-engine cache hits, so no shared table.
    let (sa, sb) = (ea.stats(), eb.stats());
    assert_eq!(sa.hom, sb.hom);
    assert_eq!(sa.game, sb.game);
    assert_eq!(sa.hom.cache_hits, 0);
    assert_eq!(sa.game.cache_hits, 0);
    assert_eq!(sa.hom.cache_misses, 12);
    assert_eq!(sa.game.cache_misses, 24);
}

#[test]
fn work_on_one_engine_leaves_another_untouched() {
    let worker = Engine::new();
    let bystander = Engine::new();
    let before = bystander.stats();
    let mut rng = Rng(42);
    for _ in 0..6 {
        let d = random_graph(&mut rng, 5, 7);
        let d2 = random_graph(&mut rng, 5, 7);
        worker.hom_exists(&d, &d2, &[]);
        let a: Vec<Val> = d.dom().take(1).collect();
        let b: Vec<Val> = d2.dom().take(1).collect();
        worker.cover_implies(&d, &a, &d2, &b, 1);
        worker.separate(&[vec![1, 1], vec![-1, -1]], &[1, -1]);
    }
    let after = bystander.stats();
    // Only the process-wide promotion counter may move underneath a
    // bystander; every per-engine figure must be untouched.
    assert_eq!(after.hom, before.hom);
    assert_eq!(after.game, before.game);
    assert_eq!(after.lp.lps_solved, before.lp.lps_solved);
    assert_eq!(after.lp.perceptron_hits, before.lp.perceptron_hits);
    assert_eq!(after.lp.conflict_prunes, before.lp.conflict_prunes);
    assert!(bystander.hom_cache().is_empty());
    assert!(bystander.game_cache().is_empty());
    // And the worker saw all of it.
    let w = worker.stats();
    assert_eq!(w.hom.cache_misses, 6);
    assert_eq!(w.game.cache_misses, 6);
    assert_eq!(w.lp.perceptron_hits, 6);
}

#[test]
fn global_shim_shares_one_table_with_legacy_entry_points() {
    // A verdict memoized through the legacy free function must be a hit
    // for Engine::global() (they wrap the same cache), while a fresh
    // engine re-solves it. Use a workload unique to this test so hits
    // are attributable even with other tests in this binary running.
    // Not meaningful when the cold-cache CI job disables the global
    // engine's memo tables outright.
    if std::env::var(engine::NO_CACHE_ENV).is_ok_and(|v| v == "1") {
        eprintln!("skipping: {} is set", engine::NO_CACHE_ENV);
        return;
    }
    let mut rng = Rng(0xDEAD_BEEF);
    let d = random_graph(&mut rng, 6, 9);
    let d2 = random_graph(&mut rng, 6, 9);
    let raw = relational::exists_cached(&d, &d2, &[]);
    let hits_before = Engine::global().hom_cache().hits();
    assert_eq!(Engine::global().hom_exists(&d, &d2, &[]), raw);
    assert!(
        Engine::global().hom_cache().hits() > hits_before,
        "global engine must hit the entry the legacy path memoized"
    );
    let fresh = Engine::new();
    assert_eq!(fresh.hom_exists(&d, &d2, &[]), raw);
    assert_eq!(
        (fresh.stats().hom.cache_hits, fresh.stats().hom.cache_misses),
        (0, 1),
        "a fresh engine must not see the global table"
    );
}
