//! Save → load → warm-hit round trips for the persisted verdict tables,
//! including the corruption fallbacks: a damaged or truncated cache file
//! must degrade to a cold start, never to a wrong answer or a panic.

use engine::persist::{GAME_FILE, HOM_FILE, LINEAGE_FILE};
use engine::Engine;
use relational::{Database, DbBuilder, Delta, Schema, Val};
use std::fs;
use std::path::PathBuf;

/// A scratch directory unique to this test process + name, cleaned up on
/// drop so reruns start fresh.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("cqsep-persist-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn graph(edges: &[(&str, &str)]) -> Database {
    let mut s = Schema::entity_schema();
    s.add_relation("E", 2);
    let mut b = DbBuilder::new(s);
    for &(x, y) in edges {
        b = b.fact("E", &[x, y]);
    }
    b.build()
}

/// A workload touching both tables: 2 hom queries (one with fixed
/// pairs), 2 game queries. Returns the verdicts for later comparison.
fn run_workload(e: &Engine) -> Vec<bool> {
    let p = graph(&[("a", "b"), ("b", "c")]);
    let c3 = graph(&[("x", "y"), ("y", "z"), ("z", "x")]);
    let (a, x) = (p.val_by_name("a").unwrap(), c3.val_by_name("x").unwrap());
    let pa: Vec<Val> = vec![a];
    let cx: Vec<Val> = vec![x];
    vec![
        e.hom_exists(&p, &c3, &[]),
        e.hom_exists(&p, &c3, &[(a, x)]),
        e.cover_implies(&p, &pa, &c3, &cx, 1),
        e.cover_implies(&c3, &cx, &p, &pa, 1),
    ]
}

#[test]
fn save_load_round_trip_starts_warm() {
    let tmp = TempDir::new("roundtrip");
    let first = Engine::new();
    let verdicts = run_workload(&first);
    let s1 = first.stats();
    assert_eq!(s1.hom.cache_misses, 2);
    assert_eq!(s1.game.cache_misses, 2);
    first.save(&tmp.0).expect("save must succeed");

    // A second process (modeled by a second engine) loads the tables and
    // replays the workload entirely from cache: all hits, no solves.
    let second = Engine::new();
    let summary = second.load(&tmp.0).expect("load must succeed");
    assert_eq!(summary.hom_entries, 2);
    assert_eq!(summary.game_entries, 2);
    assert_eq!(summary.total(), 4);
    assert_eq!(run_workload(&second), verdicts);
    let s2 = second.stats();
    assert_eq!(s2.restored_entries, 4);
    assert_eq!((s2.hom.cache_hits, s2.hom.cache_misses), (2, 0));
    assert_eq!((s2.game.cache_hits, s2.game.cache_misses), (2, 0));
    assert_eq!(s2.hom.solves, 0, "warm start must run no searches");
    assert_eq!(s2.game.games_solved, 0, "warm start must run no analyses");
}

#[test]
fn missing_directory_is_a_cold_start() {
    let tmp = TempDir::new("missing");
    let e = Engine::new();
    let summary = e.load(&tmp.0.join("never-created")).unwrap();
    assert_eq!(summary, Default::default());
    assert_eq!(e.stats().restored_entries, 0);
}

#[test]
fn corrupted_and_truncated_files_fall_back_to_cold() {
    let tmp = TempDir::new("corrupt");
    let first = Engine::new();
    let verdicts = run_workload(&first);
    first.save(&tmp.0).unwrap();

    // Flip the magic on one table, truncate the other mid-entry.
    let hom_path = tmp.0.join(HOM_FILE);
    let mut bytes = fs::read(&hom_path).unwrap();
    bytes[0] ^= 0xFF;
    fs::write(&hom_path, &bytes).unwrap();
    let game_path = tmp.0.join(GAME_FILE);
    let game_bytes = fs::read(&game_path).unwrap();
    fs::write(&game_path, &game_bytes[..game_bytes.len() - 3]).unwrap();

    let second = Engine::new();
    let summary = second.load(&tmp.0).unwrap();
    assert_eq!(summary, Default::default(), "both tables must be discarded");
    // Cold but correct: everything recomputes to the same verdicts.
    assert_eq!(run_workload(&second), verdicts);
    let s2 = second.stats();
    assert_eq!(s2.restored_entries, 0);
    assert_eq!(s2.hom.cache_misses, 2);
    assert_eq!(s2.game.cache_misses, 2);
}

#[test]
fn partial_corruption_keeps_the_intact_table() {
    let tmp = TempDir::new("partial");
    let first = Engine::new();
    run_workload(&first);
    first.save(&tmp.0).unwrap();
    fs::write(tmp.0.join(GAME_FILE), b"garbage").unwrap();

    let second = Engine::new();
    let summary = second.load(&tmp.0).unwrap();
    assert_eq!(summary.hom_entries, 2, "intact hom table must restore");
    assert_eq!(summary.game_entries, 0, "damaged game table must not");
    let s2 = second.stats();
    assert_eq!(s2.restored_entries, 2);
}

#[test]
fn lineage_edges_round_trip_and_pay_off_after_reload() {
    let tmp = TempDir::new("lineage");
    let first = Engine::new();
    let p = graph(&[("a", "b"), ("b", "c")]);
    let mut c3 = graph(&[("x", "y"), ("y", "z"), ("z", "x")]);
    assert!(first.hom_exists(&p, &c3, &[]));
    let delta = Delta::new().add_value("w").add_fact("E", &["z", "w"]);
    first.apply_delta(&mut c3, &delta).unwrap();
    assert_eq!(first.stats().sub.lineage_edges, 1);
    first.save(&tmp.0).unwrap();

    // A fresh engine restores the verdicts AND the lineage edge, so the
    // subsumption read works across the process boundary: the grown
    // target is answered without a search.
    let second = Engine::new();
    let summary = second.load(&tmp.0).unwrap();
    assert_eq!(summary.lineage_edges, 1);
    assert!(summary.total() >= 2);
    assert!(second.hom_exists(&p, &c3, &[]));
    let s2 = second.stats();
    assert_eq!(s2.sub.hom_subsumption_hits, 1);
    assert_eq!(s2.hom.solves, 0, "warm lineage must avoid the search");
    // And the registry memo answers a replayed apply.
    let mut parent = graph(&[("x", "y"), ("y", "z"), ("z", "x")]);
    let receipt = second.apply_delta(&mut parent, &delta).unwrap();
    assert!(receipt.registry_hit);
}

#[test]
fn corrupt_lineage_table_is_a_cold_start_for_lineage_only() {
    let tmp = TempDir::new("lineage-corrupt");
    let first = Engine::new();
    run_workload(&first);
    let mut c3 = graph(&[("x", "y"), ("y", "z"), ("z", "x")]);
    let delta = Delta::new().add_value("w").add_fact("E", &["z", "w"]);
    first.apply_delta(&mut c3, &delta).unwrap();
    first.save(&tmp.0).unwrap();

    // Truncate the lineage table mid-entry: the whole file is discarded,
    // the verdict tables still restore.
    let path = tmp.0.join(LINEAGE_FILE);
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

    let second = Engine::new();
    let summary = second.load(&tmp.0).unwrap();
    assert_eq!(summary.lineage_edges, 0, "damaged lineage must not load");
    assert_eq!(summary.hom_entries, 2);
    assert_eq!(summary.game_entries, 2);
    assert_eq!(second.stats().sub.lineage_edges, 0);
}

#[test]
fn save_overwrites_atomically_and_is_reloadable() {
    let tmp = TempDir::new("resave");
    let e = Engine::new();
    run_workload(&e);
    e.save(&tmp.0).unwrap();
    // Grow the table and save again over the same directory.
    let d = graph(&[("m", "n"), ("n", "m")]);
    let d2 = graph(&[("s", "t")]);
    e.hom_exists(&d, &d2, &[]);
    e.save(&tmp.0).unwrap();
    assert!(
        !tmp.0.join(format!("{HOM_FILE}.tmp")).exists(),
        "temp files must not linger after a successful save"
    );
    let reread = Engine::new();
    let summary = reread.load(&tmp.0).unwrap();
    assert_eq!(summary.hom_entries, 3);
    assert_eq!(summary.game_entries, 2);
}
