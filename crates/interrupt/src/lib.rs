//! The deadline/cancellation primitive observed by every solver inner
//! loop.
//!
//! An [`Interrupt`] is a cheaply clonable handle around a shared flag
//! and an optional deadline. The solver stack threads one through every
//! layer (the hom backtracking search, the cover-game position
//! exploration and fixpoint sweeps, the simplex pivot loop, the subset
//! and CQ-candidate sweeps); each inner loop calls [`Interrupt::check`]
//! at bounded intervals and unwinds with [`Stop`] as soon as the handle
//! trips. The `engine` crate wraps the pair `(&Engine, Interrupt)` into
//! its `Ctx` type and converts [`Stop`] into its richer
//! `Interrupted { reason, partial_stats }` error; this crate stays
//! dependency-free so the leaf crates (`relational`, `covergame`,
//! `linsep`) can observe interruption without seeing the engine.
//!
//! # Semantics
//!
//! * **Sticky.** Once tripped (deadline passed or [`Interrupt::cancel`]
//!   called), every later [`Interrupt::check`] fails too. Parallel
//!   drivers exploit this: a worker that swallowed a [`Stop`] mid-batch
//!   cannot "untrip" the handle, so the caller re-checks once after the
//!   fan-in and discards the batch's (possibly partial) results.
//! * **Deadline is absolute.** Fixed at construction; a
//!   `Duration::ZERO` budget is already expired when the first check
//!   runs, so every entry point's mandatory entry check reports
//!   [`Reason::Deadline`] before any work happens.
//! * **Cancellation wins ties.** If a handle is both cancelled and past
//!   its deadline, checks report [`Reason::Cancelled`] — the explicit
//!   action is the more informative cause.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why an [`Interrupt`] tripped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reason {
    /// The handle's deadline passed.
    Deadline,
    /// [`Interrupt::cancel`] was called.
    Cancelled,
}

impl std::fmt::Display for Reason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reason::Deadline => write!(f, "deadline exceeded"),
            Reason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// The low-level "stop now" error a tripped [`Interrupt`] produces.
/// Carries only the [`Reason`]; the engine layer attaches partial stats.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stop {
    pub reason: Reason,
}

impl std::fmt::Display for Stop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "interrupted: {}", self.reason)
    }
}

impl std::error::Error for Stop {}

struct Inner {
    // The cancel flag is its own `Arc` so a [`Interrupt::child`] can
    // share it while carrying a tighter deadline of its own.
    cancelled: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

/// A shared deadline/cancellation handle. Clones observe (and trip) the
/// same underlying flag, so a service can keep one clone per in-flight
/// task and cancel it from the shutdown path while the solver holds
/// another deep inside a search.
#[derive(Clone)]
pub struct Interrupt {
    inner: Arc<Inner>,
}

impl Interrupt {
    /// A handle that never trips on its own (no deadline). It can still
    /// be [`cancel`](Interrupt::cancel)led.
    pub fn none() -> Interrupt {
        Interrupt {
            inner: Arc::new(Inner {
                cancelled: Arc::new(AtomicBool::new(false)),
                deadline: None,
            }),
        }
    }

    /// A handle whose deadline is `budget` from now. A `Duration::ZERO`
    /// budget is already expired.
    pub fn with_deadline(budget: Duration) -> Interrupt {
        Interrupt::at(Instant::now().checked_add(budget).unwrap_or_else(|| {
            // Saturate absurd budgets to "effectively never".
            Instant::now() + Duration::from_secs(u32::MAX as u64)
        }))
    }

    /// A handle with an absolute deadline.
    pub fn at(deadline: Instant) -> Interrupt {
        Interrupt {
            inner: Arc::new(Inner {
                cancelled: Arc::new(AtomicBool::new(false)),
                deadline: Some(deadline),
            }),
        }
    }

    /// A *child* handle sharing this handle's cancel flag but bounded by
    /// its own `budget` from now — never outliving the parent's deadline
    /// (the child deadline is the minimum of the two). Cancelling either
    /// handle trips both; the child's deadline expiring trips only the
    /// child. This is the per-fit timeout primitive: a task running many
    /// solver fits gives each one a `child` budget so a single runaway
    /// fit times out while the task (and its shutdown path) stays in
    /// control of the whole run.
    pub fn child(&self, budget: Duration) -> Interrupt {
        let own = Instant::now().checked_add(budget).unwrap_or_else(|| {
            // Saturate absurd budgets to "effectively never".
            Instant::now() + Duration::from_secs(u32::MAX as u64)
        });
        let deadline = match self.inner.deadline {
            Some(parent) => parent.min(own),
            None => own,
        };
        Interrupt {
            inner: Arc::new(Inner {
                cancelled: Arc::clone(&self.inner.cancelled),
                deadline: Some(deadline),
            }),
        }
    }

    /// Trip the handle. Idempotent; every clone sees it.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Has the handle tripped (cancelled or past deadline)?
    pub fn is_tripped(&self) -> bool {
        self.status().is_some()
    }

    /// Does this handle carry a deadline?
    pub fn has_deadline(&self) -> bool {
        self.inner.deadline.is_some()
    }

    /// The tripped reason, if any (cancellation wins ties).
    pub fn status(&self) -> Option<Reason> {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return Some(Reason::Cancelled);
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => Some(Reason::Deadline),
            _ => None,
        }
    }

    /// `Err(Stop)` iff the handle has tripped. This is the call every
    /// solver inner loop makes at bounded intervals.
    #[inline]
    pub fn check(&self) -> Result<(), Stop> {
        match self.status() {
            Some(reason) => Err(Stop { reason }),
            None => Ok(()),
        }
    }
}

impl Default for Interrupt {
    fn default() -> Interrupt {
        Interrupt::none()
    }
}

impl std::fmt::Debug for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interrupt")
            .field("deadline", &self.inner.deadline)
            .field("cancelled", &self.inner.cancelled.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_trips() {
        let i = Interrupt::none();
        assert!(!i.has_deadline());
        assert_eq!(i.check(), Ok(()));
        assert!(!i.is_tripped());
    }

    #[test]
    fn zero_deadline_is_already_expired() {
        let i = Interrupt::with_deadline(Duration::ZERO);
        assert_eq!(
            i.check(),
            Err(Stop {
                reason: Reason::Deadline
            })
        );
    }

    #[test]
    fn cancel_is_sticky_and_shared_across_clones() {
        let i = Interrupt::none();
        let clone = i.clone();
        assert_eq!(clone.check(), Ok(()));
        i.cancel();
        for handle in [&i, &clone] {
            assert_eq!(
                handle.check(),
                Err(Stop {
                    reason: Reason::Cancelled
                })
            );
        }
        // Still tripped later: sticky.
        assert!(clone.is_tripped());
    }

    #[test]
    fn cancellation_wins_over_expired_deadline() {
        let i = Interrupt::with_deadline(Duration::ZERO);
        i.cancel();
        assert_eq!(i.status(), Some(Reason::Cancelled));
    }

    #[test]
    fn future_deadline_does_not_trip_early() {
        let i = Interrupt::with_deadline(Duration::from_secs(3600));
        assert_eq!(i.check(), Ok(()));
    }

    #[test]
    fn child_shares_cancel_flag_both_ways() {
        let parent = Interrupt::none();
        let child = parent.child(Duration::from_secs(3600));
        assert_eq!(child.check(), Ok(()));
        parent.cancel();
        assert_eq!(child.status(), Some(Reason::Cancelled));

        let parent = Interrupt::none();
        let child = parent.child(Duration::from_secs(3600));
        child.cancel();
        assert_eq!(parent.status(), Some(Reason::Cancelled));
    }

    #[test]
    fn child_deadline_trips_only_the_child() {
        let parent = Interrupt::with_deadline(Duration::from_secs(3600));
        let child = parent.child(Duration::ZERO);
        assert_eq!(child.status(), Some(Reason::Deadline));
        assert_eq!(parent.check(), Ok(()));
    }

    #[test]
    fn child_never_outlives_parent_deadline() {
        let parent = Interrupt::with_deadline(Duration::ZERO);
        let child = parent.child(Duration::from_secs(3600));
        assert_eq!(child.status(), Some(Reason::Deadline));
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Stop {
                reason: Reason::Deadline
            }
            .to_string(),
            "interrupted: deadline exceeded"
        );
        assert_eq!(
            Stop {
                reason: Reason::Cancelled
            }
            .to_string(),
            "interrupted: cancelled"
        );
    }
}
