//! Conjunctive queries without constants (§2 of Barceló et al., PODS 2019)
//! and the regularized classes the paper studies.
//!
//! A CQ `q(x̄) = ∃ȳ (R₁(x̄₁) ∧ … ∧ Rₙ(x̄ₙ))` is represented by [`Cq`]; its
//! semantics is defined, as in the paper, through homomorphisms from the
//! **canonical database** `D_q` ([`Cq::canonical_db`]), evaluated by the
//! solver in the `relational` crate (Chandra–Merlin).
//!
//! The regularized classes:
//!
//! * `CQ[m]` / `CQ[m,p]` — at most `m` atoms (not counting the mandatory
//!   `η(x)` atom of feature queries), at most `p` occurrences per variable;
//!   enumerated up to isomorphism in [`enumerate`] (§4, §6.3);
//! * `GHW(k)` — generalized hypertree width at most `k`; decompositions
//!   and exact width computation live in [`decomp`] (§5).
//!
//! [`contain`] provides containment/equivalence and [`core`] provides core
//! (minimization) computation — both through the homomorphism solver.

pub mod contain;
pub mod core;
pub mod decomp;
pub mod dedup;
pub mod enumerate;
pub mod eval;
pub mod parse;
pub mod query;

pub use contain::{contained_in, equivalent};
pub use decomp::{ghw, ghw_at_most, TreeDecomposition};
pub use dedup::{dedup_by_core, CoreDedup};
pub use enumerate::{enumerate_feature_queries, EnumConfig};
pub use eval::{evaluate_unary, indicator, selects};
pub use query::{Atom, Cq, Var};
