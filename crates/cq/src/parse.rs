//! A Datalog-ish text syntax for CQs, inverse of the `Display` impl:
//!
//! ```text
//! q(x) :- eta(x), edge(x,y), edge(y,z)
//! ```
//!
//! Variable names are arbitrary identifiers; they are interned in order of
//! first occurrence (head first), so round-tripping through `Display`
//! yields identical structures.

use crate::query::{Atom, Cq, Var};
use relational::Schema;
use std::collections::HashMap;
use std::fmt;

/// Error from [`parse_cq`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCqError(pub String);

impl fmt::Display for ParseCqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CQ: {}", self.0)
    }
}

impl std::error::Error for ParseCqError {}

/// Parse a CQ in the `head :- body` syntax against `schema`.
pub fn parse_cq(schema: &Schema, text: &str) -> Result<Cq, ParseCqError> {
    let err = |msg: String| ParseCqError(msg);
    let (head, body) = text
        .split_once(":-")
        .ok_or_else(|| err("missing `:-`".into()))?;

    let mut vars: HashMap<String, Var> = HashMap::new();
    let mut next = 0u32;
    let mut intern = |name: &str, vars: &mut HashMap<String, Var>| -> Var {
        *vars.entry(name.to_string()).or_insert_with(|| {
            let v = Var(next);
            next += 1;
            v
        })
    };

    // Head: q(x, y, ...)
    let head = head.trim();
    let open = head.find('(').ok_or_else(|| err("head needs `(`".into()))?;
    if !head.ends_with(')') {
        return Err(err("head needs `)`".into()));
    }
    let free: Vec<Var> = head[open + 1..head.len() - 1]
        .split(',')
        .map(|v| v.trim())
        .filter(|v| !v.is_empty())
        .map(|v| intern(v, &mut vars))
        .collect();

    // Body: comma-separated atoms; split on commas outside parentheses.
    let mut atoms = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    let body = body.trim();
    let bytes = body.as_bytes();
    let mut pieces = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| err("unbalanced parentheses".into()))?
            }
            b',' if depth == 0 => {
                pieces.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err(err("unbalanced parentheses".into()));
    }
    pieces.push(&body[start..]);

    for piece in pieces {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        let open = piece
            .find('(')
            .ok_or_else(|| err(format!("atom {piece:?} needs `(`")))?;
        if !piece.ends_with(')') {
            return Err(err(format!("atom {piece:?} needs `)`")));
        }
        let rel_name = piece[..open].trim();
        let rel = schema
            .rel_by_name(rel_name)
            .ok_or_else(|| err(format!("unknown relation {rel_name:?}")))?;
        let args: Vec<Var> = piece[open + 1..piece.len() - 1]
            .split(',')
            .map(|v| v.trim())
            .filter(|v| !v.is_empty())
            .map(|v| intern(v, &mut vars))
            .collect();
        if args.len() != schema.arity(rel) {
            return Err(err(format!(
                "atom {piece:?}: expected {} arguments",
                schema.arity(rel)
            )));
        }
        atoms.push(Atom::new(rel, args));
    }

    if atoms.is_empty() {
        return Err(err("body has no atoms".into()));
    }
    Ok(Cq::new(schema.clone(), free, atoms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_unary;
    use relational::DbBuilder;

    fn schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("edge", 2);
        s
    }

    #[test]
    fn parse_simple() {
        let q = parse_cq(&schema(), "q(x) :- eta(x), edge(x,y)").unwrap();
        assert!(q.is_unary());
        assert_eq!(q.atoms().len(), 2);
        assert_eq!(q.atom_count_for_cqm(), 1);
        assert!(q.has_entity_guard());
    }

    #[test]
    fn display_roundtrip() {
        let q = parse_cq(&schema(), "q(x) :- eta(x), edge(x,y), edge(y,z)").unwrap();
        let text = q.to_string();
        let q2 = parse_cq(&schema(), &text).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn parsed_query_evaluates() {
        let q = parse_cq(&schema(), "q(x) :- eta(x), edge(x,y), edge(y,z)").unwrap();
        let d = DbBuilder::new(schema())
            .fact("edge", &["a", "b"])
            .fact("edge", &["b", "c"])
            .entity("a")
            .entity("b")
            .build();
        let sel = evaluate_unary(&q, &d);
        assert_eq!(sel.len(), 1);
        assert_eq!(d.val_name(sel[0]), "a");
    }

    #[test]
    fn errors() {
        let s = schema();
        assert!(parse_cq(&s, "q(x) edge(x,y)").is_err());
        assert!(parse_cq(&s, "q(x) :- nosuch(x)").is_err());
        assert!(parse_cq(&s, "q(x) :- edge(x)").is_err());
        assert!(parse_cq(&s, "q(x) :- ").is_err());
        assert!(parse_cq(&s, "q(x :- edge(x,y)").is_err());
        assert!(parse_cq(&s, "q(x) :- edge(x,y").is_err());
    }

    #[test]
    fn shared_variables_identified() {
        let q = parse_cq(&schema(), "q(x) :- edge(x,y), edge(y,x)").unwrap();
        assert_eq!(q.var_count(), 2);
        let q2 = parse_cq(&schema(), "q(x) :- edge(x,y), edge(z,x)").unwrap();
        assert_eq!(q2.var_count(), 3);
    }
}
