//! Core-deduplication of feature banks.
//!
//! Enumerated and conjoined feature banks are highly redundant: many
//! syntactically distinct queries share one core, hence one semantics
//! (two CQs are equivalent iff their cores are hom-equivalent). For any
//! consumer that evaluates a whole bank — the compiled classifier trie
//! above all — collapsing each equivalence class to a single core both
//! shrinks the work and guarantees that isomorphic features share one
//! trie path.

use crate::contain::equivalent;
use crate::core::core_of;
use crate::query::Cq;
use relational::RelId;
use std::collections::HashMap;

/// The result of [`dedup_by_core`]: one core per equivalence class (in
/// first-seen order) plus the class index of every input feature.
#[derive(Clone, Debug)]
pub struct CoreDedup {
    /// One representative core per equivalence class.
    pub cores: Vec<Cq>,
    /// `class_of[i]` is the index into `cores` of input feature `i`.
    pub class_of: Vec<usize>,
}

impl CoreDedup {
    /// Number of distinct classes.
    pub fn class_count(&self) -> usize {
        self.cores.len()
    }
}

/// Group `features` into equivalence classes and pick each class's core
/// as representative. Deterministic: classes appear in the order their
/// first member appears in `features`.
///
/// Cores of equivalent queries are isomorphic, so a cheap syntactic
/// signature (atom count, variable count, relation multiset of the
/// core) pre-buckets candidates and the quadratic
/// [`equivalent`] checks only run within a bucket.
pub fn dedup_by_core(features: &[Cq]) -> CoreDedup {
    let mut cores: Vec<Cq> = Vec::new();
    let mut class_of: Vec<usize> = Vec::with_capacity(features.len());
    let mut buckets: HashMap<Signature, Vec<usize>> = HashMap::new();
    for q in features {
        let core = core_of(q);
        let bucket = buckets.entry(signature(&core)).or_default();
        match bucket
            .iter()
            .copied()
            .find(|&i| equivalent(&cores[i], &core))
        {
            Some(class) => class_of.push(class),
            None => {
                let class = cores.len();
                bucket.push(class);
                cores.push(core);
                class_of.push(class);
            }
        }
    }
    CoreDedup { cores, class_of }
}

/// Isomorphism-invariant syntactic key of a core: equivalent features
/// have isomorphic cores, so they always land in the same bucket. The
/// variable measure is the number of *distinct occurring* variables —
/// `Cq::var_count` is max-id+1 and cores keep their original (possibly
/// sparse) numbering after retraction.
type Signature = (usize, usize, Vec<(RelId, usize)>);

fn signature(core: &Cq) -> Signature {
    let mut rels: HashMap<RelId, usize> = HashMap::new();
    let mut vars: std::collections::HashSet<crate::query::Var> =
        core.free_vars().iter().copied().collect();
    for a in core.atoms() {
        *rels.entry(a.rel).or_default() += 1;
        vars.extend(a.args.iter().copied());
    }
    let mut rels: Vec<(RelId, usize)> = rels.into_iter().collect();
    rels.sort();
    (core.atoms().len(), vars.len(), rels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_cq;
    use relational::Schema;

    fn schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s
    }

    fn q(text: &str) -> Cq {
        parse_cq(&schema(), text).unwrap()
    }

    #[test]
    fn isomorphic_features_collapse() {
        // Same out-edge feature under three variable namings, plus a
        // redundant-branch variant whose core is again the out-edge.
        let bank = vec![
            q("q(x) :- eta(x), E(x,y)"),
            q("q(a) :- eta(a), E(a,b)"),
            q("q(x) :- eta(x), E(x,z)"),
            q("q(x) :- eta(x), E(x,y), E(x,z)"),
        ];
        let d = dedup_by_core(&bank);
        assert_eq!(d.class_count(), 1);
        assert_eq!(d.class_of, vec![0, 0, 0, 0]);
        assert_eq!(d.cores[0].atom_count_for_cqm(), 1);
    }

    #[test]
    fn inequivalent_features_stay_separate() {
        let bank = vec![
            q("q(x) :- eta(x), E(x,y)"),
            q("q(x) :- eta(x), E(y,x)"),
            q("q(x) :- eta(x), E(x,y), E(y,z)"),
            q("q(x) :- eta(x)"),
        ];
        let d = dedup_by_core(&bank);
        assert_eq!(d.class_count(), 4);
        assert_eq!(d.class_of, vec![0, 1, 2, 3]);
    }

    #[test]
    fn classes_appear_in_first_seen_order() {
        let bank = vec![
            q("q(x) :- eta(x), E(x,y), E(y,z)"), // class 0
            q("q(x) :- eta(x), E(x,y)"),         // class 1
            q("q(x) :- eta(x), E(x,z), E(z,w)"), // back to class 0
            q("q(a) :- eta(a), E(a,b)"),         // back to class 1
        ];
        let d = dedup_by_core(&bank);
        assert_eq!(d.class_of, vec![0, 1, 0, 1]);
    }

    #[test]
    fn representative_is_the_core() {
        // A 2-path conjoined with itself folds back to the 2-path.
        let path = q("q(x) :- eta(x), E(x,y), E(y,z)");
        let fat = path.conjoin(&path);
        assert!(fat.atom_count_for_cqm() > path.atom_count_for_cqm());
        let d = dedup_by_core(&[fat, path.clone()]);
        assert_eq!(d.class_count(), 1);
        assert_eq!(d.cores[0].atom_count_for_cqm(), path.atom_count_for_cqm());
        assert!(crate::core::is_core(&d.cores[0]));
    }

    #[test]
    fn empty_bank() {
        let d = dedup_by_core(&[]);
        assert_eq!(d.class_count(), 0);
        assert!(d.class_of.is_empty());
    }
}
