//! The [`Cq`] type: conjunctive queries without constants, and their
//! canonical databases.

use relational::{Database, RelId, Schema, Val};
use std::collections::HashMap;
use std::fmt;

/// A query variable. Variables are dense per query; the free variable of a
/// unary feature query is conventionally `Var(0)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// One atom `R(x̄)` of a CQ.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    pub rel: RelId,
    pub args: Vec<Var>,
}

impl Atom {
    pub fn new(rel: RelId, args: Vec<Var>) -> Atom {
        Atom { rel, args }
    }
}

/// A conjunctive query `∃ȳ (R₁(x̄₁) ∧ … ∧ Rₙ(x̄ₙ))` with free variables
/// `free`; every variable not listed free is existentially quantified.
///
/// The schema travels with the query so arities can be validated and the
/// canonical database can be constructed without extra context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cq {
    schema: Schema,
    free: Vec<Var>,
    atoms: Vec<Atom>,
    var_count: u32,
}

impl Cq {
    /// Create a query. Variable ids must be dense (`0..var_count`); every
    /// free variable must be `< var_count`.
    ///
    /// # Panics
    /// Panics on arity mismatches or out-of-range variables.
    pub fn new(schema: Schema, free: Vec<Var>, mut atoms: Vec<Atom>) -> Cq {
        // Canonical atom order: a CQ is a conjunction, so order is
        // semantically irrelevant; sorting makes structural equality match
        // logical equality more often (e.g. Display/parse round-trips).
        atoms.sort();
        let mut max_var: Option<u32> = None;
        for a in &atoms {
            assert_eq!(
                a.args.len(),
                schema.arity(a.rel),
                "arity mismatch in atom over {}",
                schema.name(a.rel)
            );
            for v in &a.args {
                max_var = Some(max_var.map_or(v.0, |m| m.max(v.0)));
            }
        }
        for v in &free {
            max_var = Some(max_var.map_or(v.0, |m| m.max(v.0)));
        }
        let var_count = max_var.map_or(0, |m| m + 1);
        Cq {
            schema,
            free,
            atoms,
            var_count,
        }
    }

    /// The unary feature query `q(x) := η(x)` — the "trivial" feature used
    /// as the fallback `q_e^{e'}` in Lemma 5.4.
    pub fn entity_only(schema: Schema) -> Cq {
        let eta = schema.entity_rel_required();
        Cq::new(schema, vec![Var(0)], vec![Atom::new(eta, vec![Var(0)])])
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn free_vars(&self) -> &[Var] {
        &self.free
    }

    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    pub fn var_count(&self) -> u32 {
        self.var_count
    }

    /// Is this a unary query (single free variable)?
    pub fn is_unary(&self) -> bool {
        self.free.len() == 1
    }

    /// The free variable of a unary query.
    pub fn free_var(&self) -> Var {
        assert!(self.is_unary(), "free_var on non-unary CQ");
        self.free[0]
    }

    /// Number of atoms **excluding** the entity atom `η(x)` on the free
    /// variable — the paper's counting convention for `CQ[m]` (§4: "not
    /// counting atom η(x)").
    pub fn atom_count_for_cqm(&self) -> usize {
        let eta = self.schema.entity_rel();
        self.atoms
            .iter()
            .filter(|a| !(Some(a.rel) == eta && self.free.contains(&a.args[0])))
            .count()
    }

    /// Maximum number of occurrences of any variable across the atoms (the
    /// `p` in `CQ[m,p]`). The η(x) occurrence is not counted, matching the
    /// atom-count convention.
    pub fn max_var_occurrences(&self) -> usize {
        let eta = self.schema.entity_rel();
        let mut occ = vec![0usize; self.var_count as usize];
        for a in &self.atoms {
            if Some(a.rel) == eta && self.free.contains(&a.args[0]) {
                continue;
            }
            for v in &a.args {
                occ[v.index()] += 1;
            }
        }
        occ.into_iter().max().unwrap_or(0)
    }

    /// Does the query contain the atom `η(x)` for free variable `x`? The
    /// paper assumes every feature query does (§3).
    pub fn has_entity_guard(&self) -> bool {
        match self.schema.entity_rel() {
            None => false,
            Some(eta) => self
                .atoms
                .iter()
                .any(|a| a.rel == eta && self.free.contains(&a.args[0])),
        }
    }

    /// Add `η(x)` for each free variable if missing, returning the result.
    pub fn with_entity_guard(mut self) -> Cq {
        let eta = self.schema.entity_rel_required();
        for &x in self.free.clone().iter() {
            let present = self.atoms.iter().any(|a| a.rel == eta && a.args[0] == x);
            if !present {
                self.atoms.push(Atom::new(eta, vec![x]));
            }
        }
        self
    }

    /// The canonical database `D_q`: one element per variable, one fact per
    /// atom. Returns the database together with the images of the free
    /// variables, so `(D_q, x̄)` is directly usable in homomorphism checks.
    pub fn canonical_db(&self) -> (Database, Vec<Val>) {
        let mut db = Database::new(self.schema.clone());
        let mut var_val: HashMap<Var, Val> = HashMap::new();
        for i in 0..self.var_count {
            var_val.insert(Var(i), db.value(&format!("x{i}")));
        }
        for a in &self.atoms {
            let args: Vec<Val> = a.args.iter().map(|v| var_val[v]).collect();
            db.add_fact(a.rel, args);
        }
        let free_vals = self.free.iter().map(|v| var_val[v]).collect();
        (db, free_vals)
    }

    /// Conjoin two queries over the same schema, identifying their free
    /// variables pairwise (used to build the `q_e(x) = ⋀ q_e^{e'}(x)` of
    /// Lemma 5.4). Existential variables of `other` are renamed apart.
    pub fn conjoin(&self, other: &Cq) -> Cq {
        assert_eq!(self.schema, other.schema, "conjoin across schemas");
        assert_eq!(
            self.free.len(),
            other.free.len(),
            "conjoin requires equal free arity"
        );
        let mut atoms = self.atoms.clone();
        // Map other's variables: free -> our free; existential -> fresh.
        let mut rename: HashMap<Var, Var> = HashMap::new();
        for (o, s) in other.free.iter().zip(self.free.iter()) {
            rename.insert(*o, *s);
        }
        let mut next = self.var_count;
        for a in &other.atoms {
            let args: Vec<Var> = a
                .args
                .iter()
                .map(|v| {
                    *rename.entry(*v).or_insert_with(|| {
                        let nv = Var(next);
                        next += 1;
                        nv
                    })
                })
                .collect();
            atoms.push(Atom::new(a.rel, args));
        }
        atoms.sort();
        atoms.dedup();
        Cq::new(self.schema.clone(), self.free.clone(), atoms)
    }

    /// Build a unary CQ from a pointed database `(D, a)`: the canonical
    /// query whose variables are the elements of `D` (inverse of
    /// [`Cq::canonical_db`]). Elements not occurring in facts are dropped
    /// unless they are the point.
    pub fn from_pointed_db(d: &Database, point: Val) -> Cq {
        let mut val_var: HashMap<Val, Var> = HashMap::new();
        let mut next = 0u32;
        let mut var_of = |v: Val, val_var: &mut HashMap<Val, Var>| -> Var {
            *val_var.entry(v).or_insert_with(|| {
                let nv = Var(next);
                next += 1;
                nv
            })
        };
        let x = var_of(point, &mut val_var);
        let mut atoms = Vec::with_capacity(d.fact_count());
        for f in d.facts() {
            let args: Vec<Var> = f.args.iter().map(|&a| var_of(a, &mut val_var)).collect();
            atoms.push(Atom::new(f.rel, args));
        }
        Cq::new(d.schema().clone(), vec![x], atoms)
    }
}

impl Cq {
    /// Restrict the query to the atoms connected (through shared
    /// variables) to its free variables. Drops purely existential
    /// "global" conjuncts — e.g. the whole-database side conditions that
    /// product-based feature generation produces. The result is implied
    /// by the original query (it is a subset of its conjuncts).
    pub fn connected_to_free(&self) -> Cq {
        let mut reach: std::collections::HashSet<Var> = self.free.iter().copied().collect();
        loop {
            let mut grew = false;
            for a in &self.atoms {
                if a.args.iter().any(|v| reach.contains(v)) {
                    for v in &a.args {
                        grew |= reach.insert(*v);
                    }
                }
            }
            if !grew {
                break;
            }
        }
        let atoms: Vec<Atom> = self
            .atoms
            .iter()
            .filter(|a| a.args.iter().any(|v| reach.contains(v)))
            .cloned()
            .collect();
        Cq::new(self.schema.clone(), self.free.clone(), atoms)
    }
}

impl fmt::Display for Cq {
    /// Datalog-ish rendering: `q(x0) :- eta(x0), E(x0,x1)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let var = |v: &Var| format!("x{}", v.0);
        let head: Vec<String> = self.free.iter().map(var).collect();
        write!(f, "q({}) :- ", head.join(","))?;
        let mut body: Vec<String> = self
            .atoms
            .iter()
            .map(|a| {
                let args: Vec<String> = a.args.iter().map(var).collect();
                format!("{}({})", self.schema.name(a.rel), args.join(","))
            })
            .collect();
        body.sort();
        write!(f, "{}", body.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s
    }

    fn edge_query() -> Cq {
        // q(x0) :- eta(x0), E(x0, x1)
        let s = schema();
        let eta = s.entity_rel_required();
        let e = s.rel_by_name("E").unwrap();
        Cq::new(
            s,
            vec![Var(0)],
            vec![
                Atom::new(eta, vec![Var(0)]),
                Atom::new(e, vec![Var(0), Var(1)]),
            ],
        )
    }

    #[test]
    fn counting_conventions() {
        let q = edge_query();
        assert_eq!(q.atoms().len(), 2);
        assert_eq!(q.atom_count_for_cqm(), 1); // eta(x) not counted
        assert!(q.has_entity_guard());
        assert!(q.is_unary());
        assert_eq!(q.var_count(), 2);
        assert_eq!(q.max_var_occurrences(), 1);
    }

    #[test]
    fn entity_guard_insertion_is_idempotent() {
        let s = schema();
        let e = s.rel_by_name("E").unwrap();
        let q = Cq::new(s, vec![Var(0)], vec![Atom::new(e, vec![Var(0), Var(1)])]);
        assert!(!q.has_entity_guard());
        let g = q.with_entity_guard();
        assert!(g.has_entity_guard());
        let g2 = g.clone().with_entity_guard();
        assert_eq!(g.atoms().len(), g2.atoms().len());
    }

    #[test]
    fn canonical_db_shape() {
        let q = edge_query();
        let (db, frees) = q.canonical_db();
        assert_eq!(db.dom_size(), 2);
        assert_eq!(db.fact_count(), 2);
        assert_eq!(frees.len(), 1);
        assert!(db.is_entity(frees[0]));
    }

    #[test]
    fn conjoin_renames_apart() {
        let q = edge_query();
        // conjoining with itself: E(x0,x1) ∧ E(x0,x2), eta deduped.
        let c = q.conjoin(&q);
        assert_eq!(c.free_vars(), &[Var(0)]);
        assert_eq!(c.atom_count_for_cqm(), 2);
        assert_eq!(c.var_count(), 3);
    }

    #[test]
    fn from_pointed_db_roundtrip() {
        let q = edge_query();
        let (db, frees) = q.canonical_db();
        let q2 = Cq::from_pointed_db(&db, frees[0]);
        assert_eq!(q2.atoms().len(), q.atoms().len());
        assert!(q2.is_unary());
    }

    #[test]
    fn entity_only_query() {
        let q = Cq::entity_only(schema());
        assert_eq!(q.atom_count_for_cqm(), 0);
        assert!(q.has_entity_guard());
        assert_eq!(q.to_string(), "q(x0) :- eta(x0)");
    }

    #[test]
    fn display_sorts_atoms() {
        let q = edge_query();
        assert_eq!(q.to_string(), "q(x0) :- E(x0,x1), eta(x0)");
    }

    #[test]
    fn connected_to_free_drops_global_conjuncts() {
        let s = schema();
        let e = s.rel_by_name("E").unwrap();
        let eta = s.entity_rel_required();
        // q(x0) :- eta(x0), E(x0,x1), E(x2,x3)  — the last atom floats.
        let q = Cq::new(
            s,
            vec![Var(0)],
            vec![
                Atom::new(eta, vec![Var(0)]),
                Atom::new(e, vec![Var(0), Var(1)]),
                Atom::new(e, vec![Var(2), Var(3)]),
            ],
        );
        let c = q.connected_to_free();
        assert_eq!(c.atoms().len(), 2);
        assert!(c.to_string().contains("E(x0,x1)"));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn bad_arity_panics() {
        let s = schema();
        let e = s.rel_by_name("E").unwrap();
        Cq::new(s, vec![Var(0)], vec![Atom::new(e, vec![Var(0)])]);
    }
}
