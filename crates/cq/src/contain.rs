//! CQ containment and equivalence via the Chandra–Merlin theorem.
//!
//! `q₁ ⊆ q₂` (every database: `q₁(D) ⊆ q₂(D)`) iff there is a homomorphism
//! `(D_{q₂}, x̄₂) → (D_{q₁}, x̄₁)`. Used to deduplicate enumerated `CQ[m]`
//! statistics (Proposition 4.1 speaks of feature CQs "up to equivalence").

use crate::query::Cq;
use relational::{homomorphism_exists, Val};

/// Is `q1` contained in `q2` (`q1 ⊨ q2`)?
pub fn contained_in(q1: &Cq, q2: &Cq) -> bool {
    assert_eq!(q1.schema(), q2.schema(), "containment across schemas");
    assert_eq!(
        q1.free_vars().len(),
        q2.free_vars().len(),
        "containment requires equal free arity"
    );
    let (d1, f1) = q1.canonical_db();
    let (d2, f2) = q2.canonical_db();
    let fixed: Vec<(Val, Val)> = f2.into_iter().zip(f1).collect();
    homomorphism_exists(&d2, &d1, &fixed)
}

/// Are the queries logically equivalent?
pub fn equivalent(q1: &Cq, q2: &Cq) -> bool {
    contained_in(q1, q2) && contained_in(q2, q1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Atom, Cq, Var};
    use relational::Schema;

    fn schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s
    }

    fn path_query(len: usize) -> Cq {
        // q(x0) :- eta(x0), E(x0,x1), ..., E(x_{len-1}, x_len)
        let s = schema();
        let eta = s.entity_rel_required();
        let e = s.rel_by_name("E").unwrap();
        let mut atoms = vec![Atom::new(eta, vec![Var(0)])];
        for i in 0..len {
            atoms.push(Atom::new(e, vec![Var(i as u32), Var(i as u32 + 1)]));
        }
        Cq::new(s, vec![Var(0)], atoms)
    }

    #[test]
    fn longer_path_is_more_specific() {
        let p1 = path_query(1);
        let p2 = path_query(2);
        assert!(contained_in(&p2, &p1));
        assert!(!contained_in(&p1, &p2));
        assert!(!equivalent(&p1, &p2));
    }

    #[test]
    fn redundant_atom_is_equivalent() {
        // q(x) :- eta(x), E(x,y) versus q(x) :- eta(x), E(x,y), E(x,z):
        // the second folds onto the first.
        let s = schema();
        let eta = s.entity_rel_required();
        let e = s.rel_by_name("E").unwrap();
        let q1 = Cq::new(
            s.clone(),
            vec![Var(0)],
            vec![
                Atom::new(eta, vec![Var(0)]),
                Atom::new(e, vec![Var(0), Var(1)]),
            ],
        );
        let q2 = Cq::new(
            s,
            vec![Var(0)],
            vec![
                Atom::new(eta, vec![Var(0)]),
                Atom::new(e, vec![Var(0), Var(1)]),
                Atom::new(e, vec![Var(0), Var(2)]),
            ],
        );
        assert!(equivalent(&q1, &q2));
    }

    #[test]
    fn every_query_contains_itself() {
        for len in 0..4 {
            let q = path_query(len);
            assert!(equivalent(&q, &q));
        }
    }

    #[test]
    fn incomparable_queries() {
        // q(x) :- eta(x), E(x,y)  vs  q(x) :- eta(x), E(y,x).
        let s = schema();
        let eta = s.entity_rel_required();
        let e = s.rel_by_name("E").unwrap();
        let out_q = Cq::new(
            s.clone(),
            vec![Var(0)],
            vec![
                Atom::new(eta, vec![Var(0)]),
                Atom::new(e, vec![Var(0), Var(1)]),
            ],
        );
        let in_q = Cq::new(
            s,
            vec![Var(0)],
            vec![
                Atom::new(eta, vec![Var(0)]),
                Atom::new(e, vec![Var(1), Var(0)]),
            ],
        );
        assert!(!contained_in(&out_q, &in_q));
        assert!(!contained_in(&in_q, &out_q));
    }
}
