//! Exhaustive enumeration of the feature classes `CQ[m]` and `CQ[m,p]`
//! (§4, §6.3).
//!
//! Proposition 4.1 rests on the observation that `(D, λ)` is
//! `CQ[m]`-separable iff it is separated by the statistic containing *all*
//! feature queries of `CQ[m]` over the relations of `D`, up to
//! equivalence. This module produces that statistic.
//!
//! Generation is complete by construction: for each multiset of at most
//! `m` relation symbols (nondecreasing sequences) every variable pattern
//! is enumerated in *restricted-growth* form — the free variable is id 0,
//! and a new existential id may first appear only after all smaller ids
//! have appeared. Every CQ is isomorphic to at least one generated
//! pattern; residual duplicates (atom reorderings, logically equivalent
//! shapes) are removed by a configurable deduplication pass.

use crate::contain::equivalent;
use crate::core::core_of;
use crate::query::{Atom, Cq, Var};
use relational::{RelId, Schema};

/// How aggressively to deduplicate the enumerated queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dedup {
    /// Keep syntactically distinct queries (after canonical sorting).
    /// Fastest; may keep logically equivalent variants.
    Syntactic,
    /// Keep one query per equivalence class (cores compared by mutual
    /// containment). This is the paper's "up to equivalence".
    Equivalence,
}

/// Configuration for [`enumerate_feature_queries`].
#[derive(Clone, Debug)]
pub struct EnumConfig {
    /// Maximum number of atoms `m` (η(x) excluded, per the paper).
    pub max_atoms: usize,
    /// Optional bound `p` on occurrences per variable (`CQ[m,p]`), with
    /// the η(x) occurrence excluded like the atom count.
    pub max_var_occurrences: Option<usize>,
    /// Relations to draw atoms from; `None` means every non-η relation of
    /// the schema. Prop 4.1 restricts to relations appearing in `D`.
    pub relations: Option<Vec<RelId>>,
    pub dedup: Dedup,
}

impl EnumConfig {
    pub fn cqm(m: usize) -> EnumConfig {
        EnumConfig {
            max_atoms: m,
            max_var_occurrences: None,
            relations: None,
            dedup: Dedup::Equivalence,
        }
    }

    pub fn cqmp(m: usize, p: usize) -> EnumConfig {
        EnumConfig {
            max_var_occurrences: Some(p),
            ..EnumConfig::cqm(m)
        }
    }

    pub fn over_relations(mut self, rels: Vec<RelId>) -> EnumConfig {
        self.relations = Some(rels);
        self
    }

    pub fn syntactic(mut self) -> EnumConfig {
        self.dedup = Dedup::Syntactic;
        self
    }
}

/// Enumerate all unary feature queries of `CQ[m]` (resp. `CQ[m,p]`) over
/// `schema`, each carrying the η(x) guard, deduplicated per the config.
/// The trivial feature `q(x) :- η(x)` is always first.
pub fn enumerate_feature_queries(schema: &Schema, config: &EnumConfig) -> Vec<Cq> {
    let eta = schema.entity_rel_required();
    let rels: Vec<RelId> = match &config.relations {
        Some(rs) => rs.clone(),
        None => schema.rel_ids().filter(|&r| r != eta).collect(),
    };

    let mut raw: Vec<Cq> = vec![Cq::entity_only(schema.clone())];
    for n in 1..=config.max_atoms {
        for rel_seq in nondecreasing_sequences(&rels, n) {
            let arities: Vec<usize> = rel_seq.iter().map(|&r| schema.arity(r)).collect();
            let total_slots: usize = arities.iter().sum();
            let mut slots = vec![Var(0); total_slots];
            gen_patterns(&mut slots, 0, 1, &mut |pattern| {
                emit(schema, eta, &rel_seq, &arities, pattern, config, &mut raw);
            });
        }
    }

    dedup(raw, config.dedup)
}

/// All nondecreasing sequences of length `n` over `rels`.
fn nondecreasing_sequences(rels: &[RelId], n: usize) -> Vec<Vec<RelId>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(n);
    fn rec(rels: &[RelId], n: usize, from: usize, cur: &mut Vec<RelId>, out: &mut Vec<Vec<RelId>>) {
        if cur.len() == n {
            out.push(cur.clone());
            return;
        }
        for i in from..rels.len() {
            cur.push(rels[i]);
            rec(rels, n, i, cur, out);
            cur.pop();
        }
    }
    rec(rels, n, 0, &mut cur, &mut out);
    out
}

/// Enumerate variable patterns in restricted-growth form. `slots[..i]` is
/// decided; `next` is the smallest unused existential id.
fn gen_patterns(slots: &mut Vec<Var>, i: usize, next: u32, f: &mut impl FnMut(&[Var])) {
    if i == slots.len() {
        f(slots);
        return;
    }
    for id in 0..=next {
        slots[i] = Var(id);
        let new_next = if id == next { next + 1 } else { next };
        gen_patterns(slots, i + 1, new_next, f);
    }
}

fn emit(
    schema: &Schema,
    eta: RelId,
    rel_seq: &[RelId],
    arities: &[usize],
    pattern: &[Var],
    config: &EnumConfig,
    out: &mut Vec<Cq>,
) {
    let mut atoms = Vec::with_capacity(rel_seq.len() + 1);
    let mut offset = 0usize;
    for (ri, &rel) in rel_seq.iter().enumerate() {
        let args = pattern[offset..offset + arities[ri]].to_vec();
        offset += arities[ri];
        atoms.push(Atom::new(rel, args));
    }
    atoms.sort();
    let before = atoms.len();
    atoms.dedup();
    if atoms.len() != before {
        // A repeated atom: equivalent to a smaller query that the outer
        // loop generates separately.
        return;
    }
    if let Some(p) = config.max_var_occurrences {
        let mut occ = std::collections::HashMap::new();
        for a in &atoms {
            for v in &a.args {
                *occ.entry(*v).or_insert(0usize) += 1;
            }
        }
        if occ.values().any(|&c| c > p) {
            return;
        }
    }
    atoms.push(Atom::new(eta, vec![Var(0)]));
    out.push(Cq::new(schema.clone(), vec![Var(0)], atoms));
}

fn dedup(raw: Vec<Cq>, level: Dedup) -> Vec<Cq> {
    match level {
        Dedup::Syntactic => {
            let mut seen = std::collections::HashSet::new();
            raw.into_iter()
                .filter(|q| seen.insert(canonical_string(q)))
                .collect()
        }
        Dedup::Equivalence => {
            // Compare cores pairwise; the core shrinks the hom checks.
            let mut kept: Vec<Cq> = Vec::new();
            let mut kept_cores: Vec<Cq> = Vec::new();
            for q in raw {
                let c = core_of(&q);
                let dup = kept_cores
                    .iter()
                    .filter(|k| k.atoms().len() == c.atoms().len())
                    .any(|k| equivalent(k, &c));
                if !dup {
                    kept.push(q);
                    kept_cores.push(c);
                }
            }
            kept
        }
    }
}

/// A syntactic canonical key: atoms sorted after the identity labeling
/// (patterns are already in restricted-growth form, so this catches exact
/// duplicates from different relation orderings).
fn canonical_string(q: &Cq) -> String {
    let mut atoms: Vec<String> = q
        .atoms()
        .iter()
        .map(|a| {
            format!(
                "{}({})",
                a.rel.0,
                a.args
                    .iter()
                    .map(|v| v.0.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            )
        })
        .collect();
    atoms.sort();
    atoms.join(";")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::ghw;

    fn unary_schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("R", 1);
        s
    }

    fn graph_schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s
    }

    #[test]
    fn unary_rel_m1_gives_three_queries() {
        // eta(x);  eta(x) ∧ R(x);  eta(x) ∧ ∃y R(y).
        let qs = enumerate_feature_queries(&unary_schema(), &EnumConfig::cqm(1));
        assert_eq!(qs.len(), 3);
        assert!(qs.iter().all(|q| q.has_entity_guard()));
        assert!(qs.iter().all(|q| q.atom_count_for_cqm() <= 1));
    }

    #[test]
    fn binary_rel_m1_gives_six_queries() {
        // eta; E(x,x); E(x,y); E(y,x); E(y,y); E(y,z).
        let qs = enumerate_feature_queries(&graph_schema(), &EnumConfig::cqm(1));
        assert_eq!(qs.len(), 6);
    }

    #[test]
    fn m2_queries_are_pairwise_inequivalent() {
        let qs = enumerate_feature_queries(&graph_schema(), &EnumConfig::cqm(2));
        for (i, a) in qs.iter().enumerate() {
            for b in qs.iter().skip(i + 1) {
                assert!(!equivalent(a, b), "{a} ≡ {b}");
            }
        }
        // And they all respect the atom bound and are inside GHW(2).
        for q in &qs {
            assert!(q.atom_count_for_cqm() <= 2);
            assert!(ghw(q) <= 2, "{q}");
        }
    }

    #[test]
    fn syntactic_superset_of_equivalence() {
        let syn = enumerate_feature_queries(&graph_schema(), &EnumConfig::cqm(2).syntactic());
        let sem = enumerate_feature_queries(&graph_schema(), &EnumConfig::cqm(2));
        assert!(syn.len() >= sem.len());
        // Every semantic representative appears in the syntactic list up
        // to equivalence.
        for q in &sem {
            assert!(syn.iter().any(|s| equivalent(s, q)));
        }
    }

    #[test]
    fn occurrence_bound_filters() {
        let all = enumerate_feature_queries(&graph_schema(), &EnumConfig::cqm(2));
        let restricted = enumerate_feature_queries(&graph_schema(), &EnumConfig::cqmp(2, 1));
        assert!(restricted.len() < all.len());
        for q in &restricted {
            assert!(q.max_var_occurrences() <= 1, "{q}");
        }
        // E(x,x) uses x twice; must be gone.
        assert!(restricted
            .iter()
            .all(|q| q.to_string() != "q(x0) :- E(x0,x0), eta(x0)"));
    }

    #[test]
    fn completeness_spot_check() {
        // Every hand-written CQ[2] query must be equivalent to something
        // enumerated.
        use crate::parse::parse_cq;
        let s = graph_schema();
        let qs = enumerate_feature_queries(&s, &EnumConfig::cqm(2));
        for text in [
            "q(x) :- eta(x), E(x,y), E(y,z)",
            "q(x) :- eta(x), E(y,x), E(x,y)",
            "q(x) :- eta(x), E(y,y), E(x,z)",
            "q(x) :- eta(x), E(a,b), E(b,c)",
            "q(x) :- eta(x), E(x,x), E(x,y)",
        ] {
            let q = parse_cq(&s, text).unwrap();
            assert!(
                qs.iter().any(|c| equivalent(c, &q)),
                "missing representative for {text}"
            );
        }
    }

    #[test]
    fn restricted_relations() {
        let mut s = Schema::entity_schema();
        let r = s.add_relation("R", 1);
        s.add_relation("T", 1);
        let qs = enumerate_feature_queries(&s, &EnumConfig::cqm(1).over_relations(vec![r]));
        // Only eta, R(x), ∃y R(y).
        assert_eq!(qs.len(), 3);
        assert!(qs.iter().all(|q| q.to_string().find('T').is_none()));
    }
}
