//! Cores of conjunctive queries.
//!
//! The core of a CQ is its unique (up to isomorphism) minimal equivalent
//! subquery. Cores make "up to equivalence" computations concrete: two CQs
//! are equivalent iff their cores are isomorphic, and enumeration dedup
//! (Prop 4.1's statistic of *all* `CQ[m]` features up to equivalence) keeps
//! one query per core.
//!
//! Algorithm: a proper retract exists iff for some existential variable
//! `v` there is a homomorphism from the canonical database onto the
//! substructure induced by dropping `v`, fixing the free variables. Repeat
//! until no variable can be dropped.

use crate::query::{Atom, Cq, Var};
use relational::{homomorphism_exists, Database, Val};
use std::collections::HashSet;

/// Compute the core of `q`. The result is equivalent to `q` and no larger.
pub fn core_of(q: &Cq) -> Cq {
    let mut atoms: Vec<Atom> = q.atoms().to_vec();
    atoms.sort();
    atoms.dedup();
    let free: HashSet<Var> = q.free_vars().iter().copied().collect();

    loop {
        let vars: Vec<Var> = {
            let mut vs: HashSet<Var> = HashSet::new();
            for a in &atoms {
                vs.extend(a.args.iter().copied());
            }
            let mut v: Vec<Var> = vs.into_iter().filter(|v| !free.contains(v)).collect();
            v.sort();
            v
        };
        let mut shrunk = false;
        for &v in &vars {
            let reduced: Vec<Atom> = atoms
                .iter()
                .filter(|a| !a.args.contains(&v))
                .cloned()
                .collect();
            if reduced.len() == atoms.len() {
                continue; // v occurs in no atom (cannot happen, but safe)
            }
            if retracts_onto(q, &atoms, &reduced) {
                atoms = reduced;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            break;
        }
    }

    Cq::new(q.schema().clone(), q.free_vars().to_vec(), atoms)
}

/// Is there a homomorphism from the structure of `full` onto the structure
/// of `reduced` (an atom-subset), fixing the free variables of `q`?
fn retracts_onto(q: &Cq, full: &[Atom], reduced: &[Atom]) -> bool {
    let (full_db, full_frees) = build_db(q, full);
    let (red_db, red_frees) = build_db(q, reduced);
    let fixed: Vec<(Val, Val)> = full_frees.into_iter().zip(red_frees).collect();
    homomorphism_exists(&full_db, &red_db, &fixed)
}

/// Build a database from an atom list, interning variables by index so the
/// same `Var` gets the same name in both the full and reduced builds. Free
/// variables are always interned (they must exist as retract targets).
fn build_db(q: &Cq, atoms: &[Atom]) -> (Database, Vec<Val>) {
    let mut db = Database::new(q.schema().clone());
    let frees: Vec<Val> = q
        .free_vars()
        .iter()
        .map(|v| db.value(&format!("x{}", v.0)))
        .collect();
    for a in atoms {
        let args: Vec<Val> = a
            .args
            .iter()
            .map(|v| db.value(&format!("x{}", v.0)))
            .collect();
        db.add_fact(a.rel, args);
    }
    (db, frees)
}

/// Is `q` its own core (no proper retract)?
pub fn is_core(q: &Cq) -> bool {
    core_of(q).atoms().len() == {
        let mut atoms = q.atoms().to_vec();
        atoms.sort();
        atoms.dedup();
        atoms.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contain::equivalent;
    use relational::Schema;

    fn schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s
    }

    fn q(atoms: Vec<Atom>) -> Cq {
        Cq::new(schema(), vec![Var(0)], atoms).with_entity_guard()
    }

    fn e_atom(a: u32, b: u32) -> Atom {
        let s = schema();
        Atom::new(s.rel_by_name("E").unwrap(), vec![Var(a), Var(b)])
    }

    #[test]
    fn redundant_branch_is_folded() {
        // q(x) :- E(x,y), E(x,z): z-branch folds onto y-branch.
        let query = q(vec![e_atom(0, 1), e_atom(0, 2)]);
        let c = core_of(&query);
        assert_eq!(c.atom_count_for_cqm(), 1);
        assert!(equivalent(&query, &c));
        assert!(is_core(&c));
        assert!(!is_core(&query));
    }

    #[test]
    fn path_is_already_core() {
        // q(x) :- E(x,y), E(y,z): a directed 2-path does not fold.
        let query = q(vec![e_atom(0, 1), e_atom(1, 2)]);
        let c = core_of(&query);
        assert_eq!(c.atom_count_for_cqm(), 2);
        assert!(is_core(&query));
    }

    #[test]
    fn triangle_with_pendant_path_keeps_triangle() {
        // Triangle on existentials y1,y2,y3 plus a 2-path from x into it:
        // the path folds into the triangle... it cannot (x is free and
        // fixed), but a *second* parallel path does.
        let query = q(vec![
            // triangle
            e_atom(1, 2),
            e_atom(2, 3),
            e_atom(3, 1),
            // two parallel paths x -> . -> vertex 1 of the triangle
            e_atom(0, 4),
            e_atom(4, 1),
            e_atom(0, 5),
            e_atom(5, 1),
        ]);
        let c = core_of(&query);
        assert!(equivalent(&query, &c));
        // One of the two parallel x-paths folds onto the other (5 ↦ 4);
        // the triangle itself is rigid relative to the fixed entry point.
        assert_eq!(c.atom_count_for_cqm(), 5);
    }

    #[test]
    fn duplicate_atoms_removed() {
        let query = q(vec![e_atom(0, 1), e_atom(0, 1)]);
        let c = core_of(&query);
        assert_eq!(c.atom_count_for_cqm(), 1);
    }

    #[test]
    fn core_is_idempotent() {
        let query = q(vec![e_atom(0, 1), e_atom(0, 2), e_atom(2, 3), e_atom(1, 4)]);
        let c1 = core_of(&query);
        let c2 = core_of(&c1);
        assert_eq!(c1.atoms().len(), c2.atoms().len());
        assert!(equivalent(&c1, &c2));
    }

    #[test]
    fn free_variable_never_dropped() {
        // Even a lonely eta(x) stays.
        let query = Cq::entity_only(schema());
        let c = core_of(&query);
        assert_eq!(c.atoms().len(), 1);
        assert_eq!(c.free_vars(), &[Var(0)]);
    }
}
