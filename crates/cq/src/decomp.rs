//! Tree decompositions and generalized hypertree width (§5).
//!
//! We adopt the Chen–Dalmau definition used by the paper (it suits
//! non-Boolean queries): a tree decomposition of `q = ∃ȳ ⋀ Rᵢ(x̄ᵢ)` assigns
//! to each tree node a bag of **existentially quantified** variables such
//! that
//!
//! 1. for every atom, its existential variables all appear together in
//!    some bag, and
//! 2. every variable's bag-set induces a connected subtree.
//!
//! The width of a node is the least number of atoms whose variables cover
//! its bag; `ghw(q)` is the minimum over decompositions of the maximum
//! node width. `CQ[k] ⊆ GHW(k)` (one bag, covered by the k atoms), but not
//! conversely — long paths have ghw 1.
//!
//! Deciding `ghw ≤ k` is done exactly by a recursive separator search over
//! candidate bags drawn from subsets of unions of ≤ k atom variable sets
//! (every k-coverable bag has that shape), memoized on the
//! (component, interface) pair. Exponential in general — the problem is
//! NP-hard — but exact, and fast on the query sizes the algorithms here
//! produce. Width *verification* of an explicitly-supplied decomposition
//! (used by the cover-game query extraction) is polynomial for fixed k.

use crate::query::{Cq, Var};
use std::collections::{BTreeSet, HashMap, HashSet};

/// An explicit tree decomposition: `bags[i]` is the bag of node `i`;
/// `edges` are the tree edges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeDecomposition {
    pub bags: Vec<BTreeSet<Var>>,
    pub edges: Vec<(usize, usize)>,
}

impl TreeDecomposition {
    /// A single-bag decomposition over the given variables.
    pub fn single(bag: BTreeSet<Var>) -> TreeDecomposition {
        TreeDecomposition {
            bags: vec![bag],
            edges: Vec::new(),
        }
    }

    /// Check all decomposition conditions against `q` and that every bag
    /// is coverable by at most `k` atoms. Returns a human-readable reason
    /// on failure.
    pub fn verify(&self, q: &Cq, k: usize) -> Result<(), String> {
        let n = self.bags.len();
        if n == 0 {
            return Err("empty decomposition".into());
        }
        // Tree shape: n-1 edges, connected.
        if self.edges.len() != n - 1 {
            return Err(format!("{} edges for {} nodes", self.edges.len(), n));
        }
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            if a >= n || b >= n {
                return Err("edge out of range".into());
            }
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for &w in &adj[u] {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        if seen.iter().any(|s| !s) {
            return Err("decomposition tree is disconnected".into());
        }

        let exist = existential_vars(q);
        for (i, bag) in self.bags.iter().enumerate() {
            if let Some(v) = bag.iter().find(|v| !exist.contains(v)) {
                return Err(format!(
                    "bag {i} contains non-existential variable x{}",
                    v.0
                ));
            }
        }

        // Condition 1: each atom's existential vars inside some bag.
        for (ai, atom) in q.atoms().iter().enumerate() {
            let need: BTreeSet<Var> = atom
                .args
                .iter()
                .copied()
                .filter(|v| exist.contains(v))
                .collect();
            if need.is_empty() {
                continue;
            }
            if !self.bags.iter().any(|b| need.is_subset(b)) {
                return Err(format!("atom {ai} not covered by any bag"));
            }
        }

        // Condition 2: connectedness of each variable's occurrence set.
        for &v in &exist {
            let nodes: Vec<usize> = (0..n).filter(|&i| self.bags[i].contains(&v)).collect();
            if nodes.is_empty() {
                continue;
            }
            let node_set: HashSet<usize> = nodes.iter().copied().collect();
            let mut seen: HashSet<usize> = HashSet::new();
            let mut stack = vec![nodes[0]];
            seen.insert(nodes[0]);
            while let Some(u) = stack.pop() {
                for &w in &adj[u] {
                    if node_set.contains(&w) && seen.insert(w) {
                        stack.push(w);
                    }
                }
            }
            if seen.len() != nodes.len() {
                return Err(format!("variable x{} induces a disconnected subtree", v.0));
            }
        }

        // Width: each bag coverable by <= k atoms.
        for (i, bag) in self.bags.iter().enumerate() {
            if min_cover(q, bag) > k {
                return Err(format!("bag {i} needs more than {k} covering atoms"));
            }
        }
        Ok(())
    }

    /// The width of this decomposition w.r.t. `q` (max over bags of the
    /// minimal atom cover size).
    pub fn width(&self, q: &Cq) -> usize {
        self.bags.iter().map(|b| min_cover(q, b)).max().unwrap_or(0)
    }
}

/// Existentially quantified variables of `q`.
fn existential_vars(q: &Cq) -> BTreeSet<Var> {
    let free: HashSet<Var> = q.free_vars().iter().copied().collect();
    let mut out = BTreeSet::new();
    for a in q.atoms() {
        for &v in &a.args {
            if !free.contains(&v) {
                out.insert(v);
            }
        }
    }
    out
}

/// Minimal number of atoms of `q` whose variable sets cover `bag`
/// (∞-free: returns `usize::MAX` if uncoverable, which cannot happen for
/// bags of occurring variables). Branch-and-bound set cover — bags are
/// small.
fn min_cover(q: &Cq, bag: &BTreeSet<Var>) -> usize {
    if bag.is_empty() {
        return 0;
    }
    let atom_sets: Vec<BTreeSet<Var>> = q
        .atoms()
        .iter()
        .map(|a| a.args.iter().copied().collect())
        .collect();
    let mut best = usize::MAX;
    fn rec(remaining: &BTreeSet<Var>, atom_sets: &[BTreeSet<Var>], used: usize, best: &mut usize) {
        if used >= *best {
            return;
        }
        let target = match remaining.iter().next() {
            None => {
                *best = used;
                return;
            }
            Some(&v) => v,
        };
        for s in atom_sets {
            if s.contains(&target) {
                let rest: BTreeSet<Var> = remaining.difference(s).copied().collect();
                rec(&rest, atom_sets, used + 1, best);
            }
        }
    }
    rec(bag, &atom_sets, 0, &mut best);
    best
}

/// Decide `ghw(q) ≤ k`, returning a witnessing decomposition when true.
///
/// Exact but exponential; intended for the small queries produced by
/// enumeration. Large extracted queries should be verified against their
/// construction-time decompositions instead.
pub fn ghw_at_most(q: &Cq, k: usize) -> Option<TreeDecomposition> {
    assert!(k >= 1, "ghw bound must be at least 1");
    let exist: Vec<Var> = existential_vars(q).into_iter().collect();
    if exist.is_empty() {
        return Some(TreeDecomposition::single(BTreeSet::new()));
    }

    // Adjacency between existential variables (co-occurrence in an atom).
    let adjacent: HashMap<Var, BTreeSet<Var>> = {
        let eset: HashSet<Var> = exist.iter().copied().collect();
        let mut m: HashMap<Var, BTreeSet<Var>> = HashMap::new();
        for a in q.atoms() {
            let vs: Vec<Var> = a
                .args
                .iter()
                .copied()
                .filter(|v| eset.contains(v))
                .collect();
            for &u in &vs {
                for &w in &vs {
                    if u != w {
                        m.entry(u).or_default().insert(w);
                    }
                }
            }
        }
        for &v in &exist {
            m.entry(v).or_default();
        }
        m
    };

    // Candidate bags: nonempty subsets of unions of <= k atom var sets.
    let candidate_bags = candidate_bags(q, k);

    // Atom coverage (condition 1) needs no explicit bookkeeping: atom
    // variable sets are cliques of the adjacency relation, and a clique is
    // always absorbed whole by the bag that takes its last member (the
    // others ride along in the interface chain). See the module docs.

    let mut memo: HashMap<(Vec<Var>, Vec<Var>), Option<TreeDecomposition>> = HashMap::new();
    let all: BTreeSet<Var> = exist.iter().copied().collect();
    let mut result_bags: Vec<BTreeSet<Var>> = Vec::new();
    let mut result_edges: Vec<(usize, usize)> = Vec::new();

    if solve(
        &all,
        &BTreeSet::new(),
        &candidate_bags,
        &adjacent,
        &mut memo,
        &mut result_bags,
        &mut result_edges,
    )
    .is_some()
    {
        let td = TreeDecomposition {
            bags: result_bags,
            edges: result_edges,
        };
        debug_assert!(td.verify(q, k).is_ok(), "{:?}", td.verify(q, k));
        Some(td)
    } else {
        None
    }
}

/// All nonempty k-coverable variable sets: subsets of unions of ≤ k atom
/// existential-variable sets. Deduplicated.
fn candidate_bags(q: &Cq, k: usize) -> Vec<BTreeSet<Var>> {
    let exist = existential_vars(q);
    let atom_sets: Vec<BTreeSet<Var>> = {
        let mut seen = HashSet::new();
        q.atoms()
            .iter()
            .map(|a| {
                a.args
                    .iter()
                    .copied()
                    .filter(|v| exist.contains(v))
                    .collect::<BTreeSet<Var>>()
            })
            .filter(|s| !s.is_empty() && seen.insert(s.clone()))
            .collect()
    };
    // Unions of up to k atom sets.
    let mut unions: HashSet<BTreeSet<Var>> = HashSet::new();
    let mut frontier: Vec<BTreeSet<Var>> = vec![BTreeSet::new()];
    for _ in 0..k {
        let mut next = Vec::new();
        for u in &frontier {
            for s in &atom_sets {
                let mut nu = u.clone();
                nu.extend(s.iter().copied());
                if unions.insert(nu.clone()) {
                    next.push(nu);
                }
            }
        }
        frontier = next;
    }
    // All nonempty subsets of each union.
    let mut bags: HashSet<BTreeSet<Var>> = HashSet::new();
    for u in unions {
        let elems: Vec<Var> = u.iter().copied().collect();
        let n = elems.len();
        assert!(n < 24, "bag union too large for subset enumeration");
        for mask in 1u32..(1 << n) {
            let sub: BTreeSet<Var> = elems
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask & (1 << i) != 0)
                .map(|(_, &v)| v)
                .collect();
            bags.insert(sub);
        }
    }
    let mut out: Vec<BTreeSet<Var>> = bags.into_iter().collect();
    // Try large bags first: they split components faster.
    out.sort_by_key(|b| std::cmp::Reverse(b.len()));
    out
}

/// Recursive search: decompose component `comp` whose interface to the
/// parent is `iface` (⊆ parent bag). The root bag of this subtree must
/// contain `iface`. Appends nodes/edges to the output and returns the root
/// node index on success.
#[allow(clippy::too_many_arguments)]
fn solve(
    comp: &BTreeSet<Var>,
    iface: &BTreeSet<Var>,
    candidate_bags: &[BTreeSet<Var>],
    adjacent: &HashMap<Var, BTreeSet<Var>>,
    memo: &mut HashMap<(Vec<Var>, Vec<Var>), Option<TreeDecomposition>>,
    out_bags: &mut Vec<BTreeSet<Var>>,
    out_edges: &mut Vec<(usize, usize)>,
) -> Option<usize> {
    let key = (
        comp.iter().copied().collect::<Vec<_>>(),
        iface.iter().copied().collect::<Vec<_>>(),
    );
    if let Some(cached) = memo.get(&key) {
        return match cached {
            None => None,
            Some(td) => {
                // Splice the cached subtree into the output.
                let base = out_bags.len();
                out_bags.extend(td.bags.iter().cloned());
                out_edges.extend(td.edges.iter().map(|&(a, b)| (a + base, b + base)));
                Some(base)
            }
        };
    }

    let scope: BTreeSet<Var> = comp.union(iface).copied().collect();
    for bag in candidate_bags {
        if !iface.is_subset(bag) || !bag.is_subset(&scope) {
            continue;
        }
        // The bag must make progress: strictly shrink the open component
        // (otherwise recursion may not terminate).
        if !bag.iter().any(|v| comp.contains(v) && !iface.contains(v)) && !comp.is_empty() {
            continue;
        }
        let remaining: BTreeSet<Var> = comp.difference(bag).copied().collect();
        let comps = components(&remaining, adjacent);

        // Atom-coverage bookkeeping: an atom whose vars are all inside
        // bag ∪ (vars never to be seen again) must be covered by this bag
        // or a descendant. We enforce the sufficient local condition: any
        // atom fully inside `scope` but intersecting `bag`'s complement
        // is delegated to the component containing its leftover vars;
        // atoms fully inside `bag` are covered here. Atoms spanning two
        // different components would violate connectivity and cannot
        // occur (their vars are adjacent, hence in one component).
        let snapshot_bags = out_bags.len();
        let snapshot_edges = out_edges.len();
        let root = out_bags.len();
        out_bags.push(bag.clone());

        let mut ok = true;
        for sub in &comps {
            let sub_iface: BTreeSet<Var> = bag
                .iter()
                .copied()
                .filter(|v| {
                    adjacent
                        .get(v)
                        .is_some_and(|adj| adj.iter().any(|w| sub.contains(w)))
                })
                .collect();
            match solve(
                sub,
                &sub_iface,
                candidate_bags,
                adjacent,
                memo,
                out_bags,
                out_edges,
            ) {
                Some(child_root) => out_edges.push((root, child_root)),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            // Cache the subtree rooted here.
            let td = TreeDecomposition {
                bags: out_bags[snapshot_bags..].to_vec(),
                edges: out_edges[snapshot_edges..]
                    .iter()
                    .map(|&(a, b)| (a - snapshot_bags, b - snapshot_bags))
                    .collect(),
            };
            memo.insert(key, Some(td));
            return Some(root);
        }
        out_bags.truncate(snapshot_bags);
        out_edges.truncate(snapshot_edges);
    }

    memo.insert(key, None);
    None
}

/// Connected components of `vars` under the adjacency relation.
fn components(vars: &BTreeSet<Var>, adjacent: &HashMap<Var, BTreeSet<Var>>) -> Vec<BTreeSet<Var>> {
    let mut remaining: BTreeSet<Var> = vars.clone();
    let mut out = Vec::new();
    while let Some(&start) = remaining.iter().next() {
        let mut comp = BTreeSet::new();
        let mut stack = vec![start];
        remaining.remove(&start);
        comp.insert(start);
        while let Some(u) = stack.pop() {
            if let Some(adj) = adjacent.get(&u) {
                for &w in adj {
                    if remaining.remove(&w) {
                        comp.insert(w);
                        stack.push(w);
                    }
                }
            }
        }
        out.push(comp);
    }
    out
}

/// Exact generalized hypertree width of `q` (0 for queries with no
/// existential variables).
pub fn ghw(q: &Cq) -> usize {
    if existential_vars(q).is_empty() {
        return 0;
    }
    let mut k = 1;
    loop {
        if ghw_at_most(q, k).is_some() {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Atom;
    use relational::Schema;

    fn schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s
    }

    fn q(atoms: Vec<(u32, u32)>) -> Cq {
        let s = schema();
        let e = s.rel_by_name("E").unwrap();
        let atoms = atoms
            .into_iter()
            .map(|(a, b)| Atom::new(e, vec![Var(a), Var(b)]))
            .collect();
        Cq::new(s, vec![Var(0)], atoms).with_entity_guard()
    }

    #[test]
    fn paths_have_ghw_one() {
        // q(x) :- E(x,1), E(1,2), E(2,3), E(3,4)
        let query = q(vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(ghw(&query), 1);
        let td = ghw_at_most(&query, 1).unwrap();
        assert!(td.verify(&query, 1).is_ok());
    }

    #[test]
    fn existential_triangle_has_ghw_two() {
        // Triangle among existential vars reachable from x.
        let query = q(vec![(0, 1), (1, 2), (2, 3), (3, 1)]);
        assert!(ghw_at_most(&query, 1).is_none());
        let td = ghw_at_most(&query, 2).unwrap();
        assert!(td.verify(&query, 2).is_ok());
        assert_eq!(ghw(&query), 2);
    }

    #[test]
    fn free_variable_cycles_do_not_count() {
        // A triangle through the free variable x: existential part is just
        // a path, so ghw is 1.
        let query = q(vec![(0, 1), (1, 2), (2, 0)]);
        assert_eq!(ghw(&query), 1);
    }

    #[test]
    fn entity_only_query_has_ghw_zero() {
        let query = Cq::entity_only(schema());
        assert_eq!(ghw(&query), 0);
        assert!(ghw_at_most(&query, 1).is_some());
    }

    #[test]
    fn verify_rejects_broken_decompositions() {
        let query = q(vec![(0, 1), (1, 2)]);
        // Bag with a free variable.
        let bad = TreeDecomposition::single([Var(0)].into_iter().collect());
        assert!(bad.verify(&query, 2).is_err());
        // Missing atom coverage: empty bag only.
        let empty = TreeDecomposition::single(BTreeSet::new());
        assert!(empty.verify(&query, 2).is_err());
        // Disconnected variable occurrence.
        let disc = TreeDecomposition {
            bags: vec![
                [Var(1)].into_iter().collect(),
                [Var(2)].into_iter().collect(),
                [Var(1), Var(2)].into_iter().collect(),
            ],
            edges: vec![(0, 1), (1, 2)],
        };
        assert!(disc.verify(&query, 2).is_err());
        // A correct one.
        let good = TreeDecomposition::single([Var(1), Var(2)].into_iter().collect());
        assert!(good.verify(&query, 2).is_ok());
        // E(1,2) alone covers the bag {1,2}, so the width is 1.
        assert_eq!(good.width(&query), 1);
    }

    #[test]
    fn single_bag_width_uses_min_cover() {
        let query = q(vec![(0, 1), (1, 2)]);
        let bag: BTreeSet<Var> = [Var(1), Var(2)].into_iter().collect();
        let td = TreeDecomposition::single(bag);
        // E(1,2) covers both vars at once.
        assert_eq!(td.width(&query), 1);
    }

    #[test]
    fn k_clique_of_existentials() {
        // K4 on existentials {1,2,3,4} hanging off x; ghw(K4) = 2.
        let query = q(vec![(0, 1), (1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]);
        assert!(ghw_at_most(&query, 1).is_none());
        assert_eq!(ghw(&query), 2);
    }

    #[test]
    fn cqm_is_inside_ghw_m() {
        // Any query with m atoms has ghw <= m (single bag of all
        // existential vars, covered by all atoms).
        for atoms in [
            vec![(0, 1)],
            vec![(0, 1), (2, 3)],
            vec![(1, 2), (2, 1), (1, 1)],
        ] {
            let m = atoms.len();
            let query = q(atoms);
            assert!(ghw(&query) <= m);
        }
    }
}
