//! CQ evaluation over databases (Chandra–Merlin, §2).
//!
//! `q(D)` is the set of tuples `ā` with `(D_q, x̄) → (D, ā)`; for the unary
//! feature queries of the paper, the set of selected entities. Evaluation
//! is one homomorphism check per candidate, driven by the CSP solver of
//! the `relational` crate.

use crate::query::Cq;
use relational::{homomorphism_exists, Database, Val};

/// Does `q` select `ā` over `D`? (`ā ∈ q(D)`.)
pub fn selects_tuple(q: &Cq, d: &Database, tuple: &[Val]) -> bool {
    assert_eq!(q.free_vars().len(), tuple.len(), "tuple arity mismatch");
    let (canon, frees) = q.canonical_db();
    let fixed: Vec<(Val, Val)> = frees.iter().copied().zip(tuple.iter().copied()).collect();
    homomorphism_exists(&canon, d, &fixed)
}

/// Does the unary query `q` select entity `e` over `D`?
pub fn selects(q: &Cq, d: &Database, e: Val) -> bool {
    selects_tuple(q, d, &[e])
}

/// Evaluate a unary query: `q(D)` as a set of elements.
///
/// When `q` carries the entity guard `η(x)` (the paper's convention for
/// feature queries) only entities can be selected, so only they are tried.
pub fn evaluate_unary(q: &Cq, d: &Database) -> Vec<Val> {
    assert!(q.is_unary(), "evaluate_unary on non-unary CQ");
    let candidates: Vec<Val> = if q.has_entity_guard() {
        d.entities()
    } else {
        d.dom().collect()
    };
    let (canon, frees) = q.canonical_db();
    let x = frees[0];
    candidates
        .into_iter()
        .filter(|&e| homomorphism_exists(&canon, d, &[(x, e)]))
        .collect()
}

/// The indicator function `𝟙_{q(D)} : η(D) → {1, -1}` (§3), as a vector
/// aligned with `entities`.
pub fn indicator(q: &Cq, d: &Database, entities: &[Val]) -> Vec<i32> {
    let (canon, frees) = q.canonical_db();
    let x = frees[0];
    entities
        .iter()
        .map(|&e| {
            if homomorphism_exists(&canon, d, &[(x, e)]) {
                1
            } else {
                -1
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Atom, Cq, Var};
    use relational::{DbBuilder, Schema};

    fn schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s
    }

    fn db() -> Database {
        // a -> b -> c, all entities; d isolated entity.
        DbBuilder::new(schema())
            .fact("E", &["a", "b"])
            .fact("E", &["b", "c"])
            .entity("a")
            .entity("b")
            .entity("c")
            .entity("d")
            .build()
    }

    fn has_out_edge() -> Cq {
        let s = schema();
        let eta = s.entity_rel_required();
        let e = s.rel_by_name("E").unwrap();
        Cq::new(
            s,
            vec![Var(0)],
            vec![
                Atom::new(eta, vec![Var(0)]),
                Atom::new(e, vec![Var(0), Var(1)]),
            ],
        )
    }

    fn has_two_step() -> Cq {
        let s = schema();
        let eta = s.entity_rel_required();
        let e = s.rel_by_name("E").unwrap();
        Cq::new(
            s,
            vec![Var(0)],
            vec![
                Atom::new(eta, vec![Var(0)]),
                Atom::new(e, vec![Var(0), Var(1)]),
                Atom::new(e, vec![Var(1), Var(2)]),
            ],
        )
    }

    #[test]
    fn out_edge_selects_sources() {
        let d = db();
        let names: Vec<&str> = evaluate_unary(&has_out_edge(), &d)
            .into_iter()
            .map(|v| d.val_name(v))
            .collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn two_step_selects_only_a() {
        let d = db();
        let names: Vec<&str> = evaluate_unary(&has_two_step(), &d)
            .into_iter()
            .map(|v| d.val_name(v))
            .collect();
        assert_eq!(names, vec!["a"]);
    }

    #[test]
    fn selects_matches_evaluate() {
        let d = db();
        let q = has_out_edge();
        for e in d.entities() {
            let in_eval = evaluate_unary(&q, &d).contains(&e);
            assert_eq!(selects(&q, &d, e), in_eval);
        }
    }

    #[test]
    fn indicator_signs() {
        let d = db();
        let ents = d.entities();
        let ind = indicator(&has_out_edge(), &d, &ents);
        assert_eq!(ind, vec![1, 1, -1, -1]);
    }

    #[test]
    fn unguarded_query_sees_non_entities() {
        // Without eta(x), q(x) :- E(y, x) selects b and c (non-entityhood
        // is irrelevant).
        let s = schema();
        let e = s.rel_by_name("E").unwrap();
        let q = Cq::new(s, vec![Var(0)], vec![Atom::new(e, vec![Var(1), Var(0)])]);
        let d = db();
        let names: Vec<&str> = evaluate_unary(&q, &d)
            .into_iter()
            .map(|v| d.val_name(v))
            .collect();
        assert_eq!(names, vec!["b", "c"]);
    }

    #[test]
    fn eta_only_selects_all_entities() {
        let d = db();
        let q = Cq::entity_only(schema());
        assert_eq!(evaluate_unary(&q, &d).len(), 4);
    }
}
