//! Property tests for the CQ calculus: containment laws, core soundness,
//! ghw bounds, evaluation consistency, and enumeration coverage.

use cq::core::{core_of, is_core};
use cq::{
    contained_in, enumerate_feature_queries, equivalent, evaluate_unary, ghw, Atom, Cq, EnumConfig,
    Var,
};
use proptest::prelude::*;
use relational::{Database, Schema, Val};

fn schema() -> Schema {
    let mut s = Schema::entity_schema();
    s.add_relation("E", 2);
    s
}

/// Strategy: a random unary CQ over the graph schema with ≤ `max_atoms`
/// E-atoms and variables drawn from a small pool (0 = free).
fn random_cq(max_atoms: usize, max_var: u32) -> impl Strategy<Value = Cq> {
    proptest::collection::vec((0..=max_var, 0..=max_var), 1..=max_atoms).prop_map(move |pairs| {
        let s = schema();
        let e = s.rel_by_name("E").unwrap();
        let atoms: Vec<Atom> = pairs
            .into_iter()
            .map(|(a, b)| Atom::new(e, vec![Var(a), Var(b)]))
            .collect();
        Cq::new(s, vec![Var(0)], atoms).with_entity_guard()
    })
}

/// Strategy: a small graph database with all nodes as entities.
fn random_db() -> impl Strategy<Value = Database> {
    (2usize..5)
        .prop_flat_map(|n| (Just(n), proptest::collection::vec((0..n, 0..n), 0..(2 * n))))
        .prop_map(|(n, edges)| {
            let mut db = Database::new(schema());
            let vals: Vec<Val> = (0..n).map(|i| db.value(&format!("v{i}"))).collect();
            let e = db.schema().rel_by_name("E").unwrap();
            for (a, b) in edges {
                db.add_fact(e, vec![vals[a], vals[b]]);
            }
            for &v in &vals {
                db.add_entity(v);
            }
            db
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn containment_is_reflexive_and_transitive(
        q1 in random_cq(3, 3), q2 in random_cq(3, 3), q3 in random_cq(3, 3)
    ) {
        prop_assert!(contained_in(&q1, &q1));
        if contained_in(&q1, &q2) && contained_in(&q2, &q3) {
            prop_assert!(contained_in(&q1, &q3));
        }
    }

    #[test]
    fn containment_implies_answer_inclusion(
        q1 in random_cq(3, 3), q2 in random_cq(3, 3), d in random_db()
    ) {
        if contained_in(&q1, &q2) {
            let a1 = evaluate_unary(&q1, &d);
            let a2 = evaluate_unary(&q2, &d);
            for e in a1 {
                prop_assert!(a2.contains(&e), "{q1} ⊑ {q2} violated on an instance");
            }
        }
    }

    #[test]
    fn core_is_equivalent_minimal_and_idempotent(q in random_cq(4, 4)) {
        let c = core_of(&q);
        prop_assert!(equivalent(&q, &c), "core must be equivalent: {q} vs {c}");
        prop_assert!(c.atoms().len() <= q.atoms().len());
        prop_assert!(is_core(&c));
        let cc = core_of(&c);
        prop_assert_eq!(cc.atoms().len(), c.atoms().len());
    }

    #[test]
    fn equivalent_queries_evaluate_identically(q in random_cq(3, 3), d in random_db()) {
        let c = core_of(&q);
        let mut a1 = evaluate_unary(&q, &d);
        let mut a2 = evaluate_unary(&c, &d);
        a1.sort();
        a2.sort();
        prop_assert_eq!(a1, a2);
    }

    #[test]
    fn ghw_at_most_atom_count(q in random_cq(3, 3)) {
        // Any query with m atoms has ghw ≤ m (single bag, Prop. in §5).
        let m = q.atom_count_for_cqm().max(1);
        prop_assert!(ghw(&q) <= m, "{q}");
    }

    #[test]
    fn ghw_at_most_is_monotone(q in random_cq(4, 4)) {
        let w = ghw(&q);
        for k in w..w + 2 {
            if k >= 1 {
                let td = cq::ghw_at_most(&q, k);
                prop_assert!(td.is_some(), "ghw={w} but no decomposition at k={k}: {q}");
                td.unwrap().verify(&q, k).unwrap();
            }
        }
        if w > 1 {
            prop_assert!(cq::ghw_at_most(&q, w - 1).is_none());
        }
    }

    #[test]
    fn core_preserves_ghw_bound(q in random_cq(3, 3)) {
        // The core is a subquery, so its ghw cannot exceed the atom
        // count; more importantly it stays a well-formed query that the
        // decomposition machinery accepts.
        let c = core_of(&q);
        prop_assert!(ghw(&c) <= c.atom_count_for_cqm().max(1));
    }

    #[test]
    fn enumeration_covers_random_small_queries(q in random_cq(2, 2)) {
        // Every random CQ[2] query must be equivalent to some enumerated
        // representative (completeness of Prop 4.1's statistic).
        let pool = enumerate_feature_queries(&schema(), &EnumConfig::cqm(2));
        let c = core_of(&q);
        if c.atom_count_for_cqm() <= 2 {
            prop_assert!(
                pool.iter().any(|p| equivalent(p, &c)),
                "no representative for {q} (core {c})"
            );
        }
    }

    #[test]
    fn parse_display_roundtrip(q in random_cq(3, 3)) {
        let text = q.to_string();
        let back = cq::parse::parse_cq(&schema(), &text).unwrap();
        prop_assert!(equivalent(&q, &back), "{text}");
    }

    #[test]
    fn conjoin_is_intersection(q1 in random_cq(2, 2), q2 in random_cq(2, 2), d in random_db()) {
        let c = q1.conjoin(&q2);
        let a1: std::collections::BTreeSet<Val> = evaluate_unary(&q1, &d).into_iter().collect();
        let a2: std::collections::BTreeSet<Val> = evaluate_unary(&q2, &d).into_iter().collect();
        let ac: std::collections::BTreeSet<Val> = evaluate_unary(&c, &d).into_iter().collect();
        let expect: std::collections::BTreeSet<Val> = a1.intersection(&a2).copied().collect();
        prop_assert_eq!(ac, expect);
    }
}
