//! The original all-[`BigRational`] simplex, kept as a reference oracle.
//!
//! This is the seed implementation the hybrid engine in [`crate::simplex`]
//! replaced: normalized pivot rows (divide through by the pivot element),
//! a fresh allocation per eliminated cell, every entry a heap-backed
//! [`BigRational`]. It is deliberately untouched by the instrumentation
//! counters and the in-place/rescaling machinery so that property tests
//! (`tests/lp_prop.rs`) and the `bench_lp_engine` benchmark can pin the
//! fast engine against it: same inputs, same pivot rule, therefore the
//! same Optimal/Infeasible/Unbounded verdicts and the same exact values.

use numeric::BigRational;

/// Result of [`solve_lp_big`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpOutcomeBig {
    /// No feasible point.
    Infeasible,
    /// The objective is unbounded above.
    Unbounded,
    /// Optimal solution: values of the structural variables and the
    /// optimal objective value.
    Optimal {
        x: Vec<BigRational>,
        value: BigRational,
    },
}

struct Tableau {
    /// `rows × cols` coefficient matrix; the last column is the RHS.
    t: Vec<Vec<BigRational>>,
    /// Objective row (same width as `t` rows).
    obj: Vec<BigRational>,
    /// Basis: for each row, the variable index currently basic in it.
    basis: Vec<usize>,
    ncols: usize,
}

impl Tableau {
    fn rhs_col(&self) -> usize {
        self.ncols - 1
    }

    /// One simplex pivot round with Bland's rule. Returns:
    /// `None` if optimal, `Some(Ok(()))` after a pivot,
    /// `Some(Err(col))` if unbounded in column `col`.
    fn step(&mut self) -> Option<Result<(), usize>> {
        let rhs = self.rhs_col();
        // Entering variable: smallest index with positive reduced cost.
        let enter = (0..rhs).find(|&j| self.obj[j].is_positive())?;
        // Ratio test; ties broken by smallest basis variable (Bland).
        let mut best: Option<(usize, BigRational)> = None;
        for r in 0..self.t.len() {
            if !self.t[r][enter].is_positive() {
                continue;
            }
            let ratio = &self.t[r][rhs] / &self.t[r][enter];
            let better = match &best {
                None => true,
                Some((br, bratio)) => {
                    ratio < *bratio || (ratio == *bratio && self.basis[r] < self.basis[*br])
                }
            };
            if better {
                best = Some((r, ratio));
            }
        }
        let (row, _) = match best {
            None => return Some(Err(enter)),
            Some(x) => x,
        };
        self.pivot(row, enter);
        Some(Ok(()))
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let inv = self.t[row][col].recip();
        for v in self.t[row].iter_mut() {
            *v = &*v * &inv;
        }
        for r in 0..self.t.len() {
            if r == row || self.t[r][col].is_zero() {
                continue;
            }
            let factor = self.t[r][col].clone();
            for j in 0..self.ncols {
                let delta = &factor * &self.t[row][j];
                self.t[r][j] = &self.t[r][j] - &delta;
            }
        }
        if !self.obj[col].is_zero() {
            let factor = self.obj[col].clone();
            for j in 0..self.ncols {
                let delta = &factor * &self.t[row][j];
                self.obj[j] = &self.obj[j] - &delta;
            }
        }
        self.basis[row] = col;
    }

    /// Run pivots to optimality. Returns `false` on unboundedness.
    fn optimize(&mut self) -> bool {
        loop {
            match self.step() {
                None => return true,
                Some(Ok(())) => {}
                Some(Err(_)) => return false,
            }
        }
    }
}

/// Solve `max cᵀx s.t. Ax ≤ b, x ≥ 0` exactly with the all-big reference
/// engine. Same contract as [`crate::simplex::solve_lp`].
pub fn solve_lp_big(a: &[Vec<BigRational>], b: &[BigRational], c: &[BigRational]) -> LpOutcomeBig {
    let m = a.len();
    let n = c.len();
    assert_eq!(b.len(), m, "b must match the number of constraint rows");
    for row in a {
        assert_eq!(row.len(), n, "every row of A must match c's length");
    }

    // Columns: n structural + m slack + (phase-1 artificials) + rhs.
    let negatives: Vec<usize> = (0..m).filter(|&i| b[i].is_negative()).collect();
    let nart = negatives.len();
    let ncols = n + m + nart + 1;
    let zero = BigRational::zero;
    let one = BigRational::one;

    let mut t: Vec<Vec<BigRational>> = Vec::with_capacity(m);
    let mut basis = vec![0usize; m];
    let mut art_of_row = vec![usize::MAX; m];
    for (ai, &i) in negatives.iter().enumerate() {
        art_of_row[i] = n + m + ai;
    }
    for i in 0..m {
        let mut row = vec![zero(); ncols];
        let flip = b[i].is_negative();
        for j in 0..n {
            row[j] = if flip { -&a[i][j] } else { a[i][j].clone() };
        }
        // Slack: +1 normally; -1 after flipping the row.
        row[n + i] = if flip { -one() } else { one() };
        row[ncols - 1] = if flip { -&b[i] } else { b[i].clone() };
        if flip {
            row[art_of_row[i]] = one();
            basis[i] = art_of_row[i];
        } else {
            basis[i] = n + i;
        }
        t.push(row);
    }

    if nart > 0 {
        // Phase 1: maximize -(sum of artificials). The objective row must
        // be expressed in terms of the nonbasic variables: start from
        // -Σ artificials and add each artificial row (which has the
        // artificial basic with coefficient 1).
        let mut obj = vec![zero(); ncols];
        for &i in &negatives {
            for j in 0..ncols {
                let add = t[i][j].clone();
                obj[j] = &obj[j] + &add;
            }
        }
        for &i in &negatives {
            obj[art_of_row[i]] = zero();
        }
        let mut tab = Tableau {
            t,
            obj,
            basis,
            ncols,
        };
        let bounded = tab.optimize();
        debug_assert!(bounded, "phase-1 objective is bounded by 0");
        // Feasible iff all artificials are zero: the phase-1 optimum
        // (stored as obj[rhs], negated running value) must be 0.
        let resid = tab.obj[ncols - 1].clone();
        if !resid.is_zero() {
            return LpOutcomeBig::Infeasible;
        }
        // Drive any artificial still basic (at value 0) out of the basis.
        for r in 0..m {
            if tab.basis[r] >= n + m {
                if let Some(j) = (0..n + m).find(|&j| !tab.t[r][j].is_zero()) {
                    tab.pivot(r, j);
                }
                // If the whole row is zero the constraint was redundant;
                // leaving the zero artificial basic is harmless as long
                // as it can never re-enter (we zero its columns below).
            }
        }
        // Erase artificial columns so they never re-enter.
        for row in tab.t.iter_mut() {
            for cell in &mut row[n + m..ncols - 1] {
                *cell = zero();
            }
        }
        // Phase 2 objective: c over the structural variables, rewritten
        // through the current basis.
        let mut obj = vec![zero(); ncols];
        for (j, item) in c.iter().enumerate() {
            obj[j] = item.clone();
        }
        for r in 0..m {
            let bv = tab.basis[r];
            if bv < ncols - 1 && !obj[bv].is_zero() {
                let factor = obj[bv].clone();
                for (o, cell) in obj.iter_mut().zip(&tab.t[r]) {
                    let delta = &factor * cell;
                    *o = &*o - &delta;
                }
            }
        }
        tab.obj = obj;
        finish(tab, n)
    } else {
        // All-slack basis is feasible; single phase.
        let mut obj = vec![zero(); ncols];
        for (j, item) in c.iter().enumerate() {
            obj[j] = item.clone();
        }
        let tab = Tableau {
            t,
            obj,
            basis,
            ncols,
        };
        finish(tab, n)
    }
}

fn finish(mut tab: Tableau, n: usize) -> LpOutcomeBig {
    if !tab.optimize() {
        return LpOutcomeBig::Unbounded;
    }
    let rhs = tab.ncols - 1;
    let mut x = vec![BigRational::zero(); n];
    for (r, &bv) in tab.basis.iter().enumerate() {
        if bv < n {
            x[bv] = tab.t[r][rhs].clone();
        }
    }
    // The objective row's RHS holds -(current value) relative to 0 start.
    let value = -&tab.obj[rhs];
    LpOutcomeBig::Optimal { x, value }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numeric::{int, ratio};

    // Smoke coverage only: the exhaustive suite lives with the fast
    // engine in `simplex.rs`, and `tests/lp_prop.rs` pins the two
    // implementations to each other on random instances.

    #[test]
    fn textbook_optimum() {
        let a: Vec<Vec<BigRational>> = vec![
            vec![int(1), int(0)],
            vec![int(0), int(2)],
            vec![int(3), int(2)],
        ];
        match solve_lp_big(&a, &[int(4), int(12), int(18)], &[int(3), int(5)]) {
            LpOutcomeBig::Optimal { x, value } => {
                assert_eq!(value, int(36));
                assert_eq!(x, vec![int(2), int(6)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn infeasible_and_unbounded_detected() {
        let out = solve_lp_big(&[vec![int(1)]], &[int(-1)], &[int(1)]);
        assert_eq!(out, LpOutcomeBig::Infeasible);
        let out = solve_lp_big(&[vec![int(0), int(1)]], &[int(5)], &[int(1), int(0)]);
        assert_eq!(out, LpOutcomeBig::Unbounded);
    }

    #[test]
    fn fractional_optimum_is_exact() {
        match solve_lp_big(&[vec![int(3)]], &[int(2)], &[int(1)]) {
            LpOutcomeBig::Optimal { x, value } => {
                assert_eq!(x[0], ratio(2, 3));
                assert_eq!(value, ratio(2, 3));
            }
            other => panic!("{other:?}"),
        }
    }
}
