//! The linear classifier `Λ_w̄` (§2 of the paper).

use numeric::BigRational;
use std::fmt;

/// A linear classifier `Λ_w̄` with `w̄ = (w_0, w_1, …, w_n)`:
/// `Λ(b̄) = 1` iff `Σ w_i b_i ≥ w_0`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinearClassifier {
    /// The threshold `w_0`.
    pub threshold: BigRational,
    /// The feature weights `w_1 … w_n`.
    pub weights: Vec<BigRational>,
}

impl LinearClassifier {
    pub fn new(threshold: BigRational, weights: Vec<BigRational>) -> LinearClassifier {
        LinearClassifier { threshold, weights }
    }

    pub fn arity(&self) -> usize {
        self.weights.len()
    }

    /// The raw score `Σ w_i b_i` of a ±1 feature vector.
    pub fn score(&self, features: &[i32]) -> BigRational {
        assert_eq!(features.len(), self.weights.len(), "feature arity mismatch");
        let mut s = BigRational::zero();
        for (w, &f) in self.weights.iter().zip(features.iter()) {
            match f {
                1 => s += w,
                -1 => s -= w,
                other => panic!("feature values must be ±1, got {other}"),
            }
        }
        s
    }

    /// Classify a ±1 feature vector: `+1` iff `score ≥ w_0`.
    pub fn classify(&self, features: &[i32]) -> i32 {
        if self.score(features) >= self.threshold {
            1
        } else {
            -1
        }
    }

    /// Does this classifier label every `(vector, label)` pair correctly?
    pub fn separates<'a>(&self, examples: impl IntoIterator<Item = (&'a [i32], i32)>) -> bool {
        examples.into_iter().all(|(v, y)| self.classify(v) == y)
    }

    /// Number of misclassified examples.
    pub fn errors<'a>(&self, examples: impl IntoIterator<Item = (&'a [i32], i32)>) -> usize {
        examples
            .into_iter()
            .filter(|(v, y)| self.classify(v) != *y)
            .count()
    }
}

impl fmt::Display for LinearClassifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Λ(b) = [")?;
        for (i, w) in self.weights.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{w}·b{}", i + 1)?;
        }
        write!(f, " ≥ {}]", self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numeric::{int, ratio};

    #[test]
    fn majority_vote() {
        let c = LinearClassifier::new(int(0), vec![int(1), int(1), int(1)]);
        assert_eq!(c.classify(&[1, 1, -1]), 1);
        assert_eq!(c.classify(&[1, -1, -1]), -1);
        // Ties (score 0) go positive by the ≥ convention.
        let c2 = LinearClassifier::new(int(0), vec![int(1), int(-1)]);
        assert_eq!(c2.classify(&[1, 1]), 1);
    }

    #[test]
    fn separates_and_errors() {
        let c = LinearClassifier::new(ratio(1, 2), vec![int(1)]);
        let pos = [1i32];
        let neg = [-1i32];
        let examples = [(&pos[..], 1), (&neg[..], -1)];
        assert!(c.separates(examples.iter().map(|&(v, y)| (v, y))));
        let wrong = [(&pos[..], -1), (&neg[..], -1)];
        assert_eq!(c.errors(wrong.iter().map(|&(v, y)| (v, y))), 1);
    }

    #[test]
    #[should_panic(expected = "±1")]
    fn rejects_non_sign_features() {
        let c = LinearClassifier::new(int(0), vec![int(1)]);
        c.classify(&[0]);
    }
}
