//! The linear classifier `Λ_w̄` (§2 of the paper).

use numeric::Rat;
use std::fmt;

/// A linear classifier `Λ_w̄` with `w̄ = (w_0, w_1, …, w_n)`:
/// `Λ(b̄) = 1` iff `Σ w_i b_i ≥ w_0`.
///
/// Weights are hybrid [`Rat`]s: exact, but inline `i64` fractions until a
/// value genuinely needs arbitrary precision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinearClassifier {
    /// The threshold `w_0`.
    pub threshold: Rat,
    /// The feature weights `w_1 … w_n`.
    pub weights: Vec<Rat>,
}

impl LinearClassifier {
    pub fn new(threshold: Rat, weights: Vec<Rat>) -> LinearClassifier {
        LinearClassifier { threshold, weights }
    }

    pub fn arity(&self) -> usize {
        self.weights.len()
    }

    /// The raw score `Σ w_i b_i` of a ±1 feature vector.
    pub fn score(&self, features: &[i32]) -> Rat {
        assert_eq!(features.len(), self.weights.len(), "feature arity mismatch");
        let mut s = Rat::zero();
        for (w, &f) in self.weights.iter().zip(features.iter()) {
            match f {
                1 => s += w,
                -1 => s -= w,
                other => panic!("feature values must be ±1, got {other}"),
            }
        }
        s
    }

    /// Classify a ±1 feature vector: `+1` iff `score ≥ w_0`.
    pub fn classify(&self, features: &[i32]) -> i32 {
        if self.score(features) >= self.threshold {
            1
        } else {
            -1
        }
    }

    /// Does this classifier label every `(vector, label)` pair correctly?
    pub fn separates<'a>(&self, examples: impl IntoIterator<Item = (&'a [i32], i32)>) -> bool {
        examples.into_iter().all(|(v, y)| self.classify(v) == y)
    }

    /// Number of misclassified examples.
    pub fn errors<'a>(&self, examples: impl IntoIterator<Item = (&'a [i32], i32)>) -> usize {
        examples
            .into_iter()
            .filter(|(v, y)| self.classify(v) != *y)
            .count()
    }
}

impl fmt::Display for LinearClassifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Λ(b) = [")?;
        for (i, w) in self.weights.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{w}·b{}", i + 1)?;
        }
        write!(f, " ≥ {}]", self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numeric::{qint, qrat};

    #[test]
    fn majority_vote() {
        let c = LinearClassifier::new(qint(0), vec![qint(1), qint(1), qint(1)]);
        assert_eq!(c.classify(&[1, 1, -1]), 1);
        assert_eq!(c.classify(&[1, -1, -1]), -1);
        // Ties (score 0) go positive by the ≥ convention.
        let c2 = LinearClassifier::new(qint(0), vec![qint(1), qint(-1)]);
        assert_eq!(c2.classify(&[1, 1]), 1);
    }

    #[test]
    fn separates_and_errors() {
        let c = LinearClassifier::new(qrat(1, 2), vec![qint(1)]);
        let pos = [1i32];
        let neg = [-1i32];
        let examples = [(&pos[..], 1), (&neg[..], -1)];
        assert!(c.separates(examples.iter().map(|&(v, y)| (v, y))));
        let wrong = [(&pos[..], -1), (&neg[..], -1)];
        assert_eq!(c.errors(wrong.iter().map(|&(v, y)| (v, y))), 1);
    }

    #[test]
    fn promoted_weights_still_classify_exactly() {
        // A weight beyond i64: score arithmetic must stay exact through
        // the big representation.
        let huge = &qint(i64::MAX) * &qint(4);
        let c = LinearClassifier::new(qint(0), vec![huge.clone(), qint(-1)]);
        assert_eq!(c.classify(&[1, 1]), 1);
        assert_eq!(c.classify(&[-1, -1]), -1);
        assert_eq!(c.score(&[1, 1]), &huge - &qint(1));
    }

    #[test]
    #[should_panic(expected = "±1")]
    fn rejects_non_sign_features() {
        let c = LinearClassifier::new(qint(0), vec![qint(1)]);
        c.classify(&[0]);
    }
}
