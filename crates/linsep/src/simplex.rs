//! A two-phase primal simplex solver over exact hybrid rationals.
//!
//! Solves `max cᵀx subject to Ax ≤ b, x ≥ 0` exactly. Bland's rule makes
//! termination unconditional (no cycling); exact [`Rat`] arithmetic makes
//! the Optimal/Infeasible/Unbounded verdict trustworthy — which matters
//! because the callers turn these verdicts directly into separability
//! answers.
//!
//! The implementation is a dense tableau: rows are the constraints (with
//! slack variables completing an identity), the last row is the objective.
//! Phase 1 drives artificial variables out of the basis when some
//! `b_i < 0`; phase 2 optimizes the real objective.
//!
//! # Performance shape
//!
//! Three things distinguish this engine from a textbook rational simplex
//! (and from the all-[`BigRational`] reference kept in
//! [`crate::simplex_big`]):
//!
//! * **Hybrid arithmetic.** Every tableau cell is a [`numeric::Rat`]: an
//!   inline `i64` fraction with `i128` intermediates that promotes to
//!   [`BigRational`] only on overflow. On the ±1 separation LPs the
//!   entries essentially never leave the small representation, so the
//!   inner loop is branch-plus-integer-ops with no heap traffic.
//! * **In-place, unnormalized pivoting.** The pivot row is *not* divided
//!   through by the pivot element (that division is what manufactures
//!   fractions). Instead each eliminated row subtracts
//!   `(t[r][col]/piv) ·` pivot-row via the fused [`Rat::sub_mul`] kernel,
//!   reusing the row buffers — the pivot row is moved out with
//!   `mem::take` and moved back, never cloned. The invariant becomes
//!   "each basic column is zero off its row and *positive* (not 1) on
//!   it", so ratio tests, the phase-2 objective rewrite, and solution
//!   extraction all divide by `t[r][basis[r]]` where the textbook reads
//!   off the cell directly.
//! * **Per-row integer rescaling.** After elimination each constraint row
//!   is rescaled by the positive factor `lcm(denominators)/gcd(numerators)`
//!   back to primitive integers (when that fits in `i64`), bounding entry
//!   growth the way fraction-free Gaussian elimination does. The
//!   objective row is never rescaled: its RHS cell is the exact running
//!   objective value (negated) and the phase-1 feasibility residual.
//!
//! Because positive row scalings change neither reduced costs nor ratios
//! nor Bland tie-breaking, this engine performs *exactly* the same pivot
//! sequence as the reference solver and returns identical outcomes (see
//! `tests/lp_prop.rs`). Every solve reports its pivot count to
//! [`crate::stats`].

use crate::stats;
use interrupt::{Interrupt, Stop};
use numeric::Rat;

/// Result of [`solve_lp`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpOutcome {
    /// No feasible point.
    Infeasible,
    /// The objective is unbounded above.
    Unbounded,
    /// Optimal solution: values of the structural variables and the
    /// optimal objective value.
    Optimal { x: Vec<Rat>, value: Rat },
}

struct Tableau {
    /// `rows × cols` coefficient matrix; the last column is the RHS.
    /// Row invariant: `t[r][basis[r]]` is positive and the basic column
    /// is zero in every other row (rows are *not* normalized to 1).
    t: Vec<Vec<Rat>>,
    /// Objective row (same width as `t` rows), kept as true reduced
    /// costs — never rescaled.
    obj: Vec<Rat>,
    /// Basis: for each row, the variable index currently basic in it.
    basis: Vec<usize>,
    ncols: usize,
    /// Pivots performed so far (phase 1 + phase 2), flushed to the
    /// global [`stats`] counters once per solve.
    pivots: u64,
}

fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Rescale a constraint row in place to primitive integers via the
/// positive factor `lcm(dens)/gcd(nums)`. A no-op whenever any entry has
/// already promoted to the big representation or the scaled values would
/// not fit `i64` — correctness never depends on rescaling, it only keeps
/// entries in the small representation longer.
fn rescale_row(row: &mut [Rat]) {
    let mut num_gcd: u128 = 0;
    let mut den_lcm: u128 = 1;
    for v in row.iter() {
        let Some((n, d)) = v.as_small() else { return };
        if n != 0 {
            num_gcd = gcd_u128(num_gcd, n.unsigned_abs() as u128);
            let g = gcd_u128(den_lcm, d as u128);
            match (den_lcm / g).checked_mul(d as u128) {
                Some(l) if l <= i64::MAX as u128 => den_lcm = l,
                _ => return,
            }
        }
    }
    if num_gcd <= 1 && den_lcm == 1 {
        return; // all-zero or already primitive
    }
    // n/d · den_lcm/num_gcd = n · (den_lcm/d) / num_gcd, exactly (d
    // divides den_lcm, num_gcd divides n). Verify the fit, then write.
    let scaled = |n: i64, d: i64| n as i128 * (den_lcm / d as u128) as i128 / num_gcd as i128;
    for v in row.iter() {
        let (n, d) = v.as_small().expect("checked small above");
        if n != 0 && i64::try_from(scaled(n, d)).is_err() {
            return;
        }
    }
    for v in row.iter_mut() {
        let (n, d) = v.as_small().expect("checked small above");
        if n != 0 {
            *v = Rat::from(scaled(n, d) as i64);
        }
    }
}

impl Tableau {
    fn rhs_col(&self) -> usize {
        self.ncols - 1
    }

    /// One simplex pivot round with Bland's rule. Returns:
    /// `None` if optimal, `Some(Ok(()))` after a pivot,
    /// `Some(Err(col))` if unbounded in column `col`.
    fn step(&mut self) -> Option<Result<(), usize>> {
        let rhs = self.rhs_col();
        // Entering variable: smallest index with positive reduced cost.
        let enter = (0..rhs).find(|&j| self.obj[j].is_positive())?;
        // Ratio test; ties broken by smallest basis variable (Bland).
        // Ratios are invariant under the positive row scalings of
        // `rescale_row`, so this picks the same row as a normalized
        // tableau would.
        let mut best: Option<(usize, Rat)> = None;
        for r in 0..self.t.len() {
            if !self.t[r][enter].is_positive() {
                continue;
            }
            let ratio = &self.t[r][rhs] / &self.t[r][enter];
            let better = match &best {
                None => true,
                Some((br, bratio)) => {
                    ratio < *bratio || (ratio == *bratio && self.basis[r] < self.basis[*br])
                }
            };
            if better {
                best = Some((r, ratio));
            }
        }
        let (row, _) = match best {
            None => return Some(Err(enter)),
            Some(x) => x,
        };
        self.pivot(row, enter);
        Some(Ok(()))
    }

    fn pivot(&mut self, row: usize, col: usize) {
        self.pivots += 1;
        // Orient the pivot row so the incoming basic coefficient is
        // positive (can be negative when driving artificials out on an
        // arbitrary nonzero entry); the row is an equation, so negating
        // it is a legal scaling, and the positive-basic invariant is what
        // the ratio test and the rhs ≥ 0 feasibility reading rely on.
        if self.t[row][col].is_negative() {
            for v in self.t[row].iter_mut() {
                *v = -&*v;
            }
        }
        // Move the pivot row out to borrow it against the others; the
        // buffer is moved back untouched below (never cloned).
        let prow = std::mem::take(&mut self.t[row]);
        let piv = prow[col].clone();
        for (r, trow) in self.t.iter_mut().enumerate() {
            if r == row || trow[col].is_zero() {
                continue;
            }
            let f = &trow[col] / &piv;
            for (cell, p) in trow.iter_mut().zip(prow.iter()) {
                cell.sub_mul(&f, p);
            }
            debug_assert!(trow[col].is_zero(), "exact elimination");
            rescale_row(trow);
        }
        if !self.obj[col].is_zero() {
            let f = &self.obj[col] / &piv;
            for (cell, p) in self.obj.iter_mut().zip(prow.iter()) {
                cell.sub_mul(&f, p);
            }
            debug_assert!(self.obj[col].is_zero(), "exact elimination");
        }
        self.t[row] = prow;
        self.basis[row] = col;
    }

    /// Run pivots to optimality. Returns `false` on unboundedness.
    /// Observes `intr` once per pivot round — the bounded-interval check
    /// of the simplex layer (a single pivot touches `rows × cols` cells,
    /// so the check cost is negligible against it).
    fn optimize(&mut self, intr: Option<&Interrupt>) -> Result<bool, Stop> {
        loop {
            if let Some(h) = intr {
                h.check()?;
            }
            match self.step() {
                None => return Ok(true),
                Some(Ok(())) => {}
                Some(Err(_)) => return Ok(false),
            }
        }
    }
}

/// Solve `max cᵀx s.t. Ax ≤ b, x ≥ 0` exactly.
///
/// `a` is row-major with `a.len() == b.len()` and each row of length
/// `c.len()`. Bumps the global [`stats`] counters (one LP, its pivots).
pub fn solve_lp(a: &[Vec<Rat>], b: &[Rat], c: &[Rat]) -> LpOutcome {
    let (out, pivots) = solve_lp_counted(a, b, c);
    stats::record_lp(pivots);
    out
}

/// As [`solve_lp`], also returning the number of tableau pivots the solve
/// took — and *without* flushing any counters: the caller owns the
/// accounting. Having the count in-band lets tests and benches assert on
/// a single solve without racing other threads on the process-wide
/// atomics, and lets per-engine counter sets attribute pivots to the
/// engine that ran them (see `LpCounters`).
pub fn solve_lp_counted(a: &[Vec<Rat>], b: &[Rat], c: &[Rat]) -> (LpOutcome, u64) {
    let (out, pivots) = solve_lp_inner(a, b, c, None);
    (out.expect("uninterruptible solve cannot stop"), pivots)
}

/// Interruptible [`solve_lp_counted`]: the pivot loop observes `intr`
/// once per round. On [`Stop`] the pivots performed so far are still
/// reported, so the caller's accounting sees the truncated solve's
/// effort; the half-pivoted tableau is discarded.
pub fn solve_lp_counted_int(
    a: &[Vec<Rat>],
    b: &[Rat],
    c: &[Rat],
    intr: &Interrupt,
) -> (Result<LpOutcome, Stop>, u64) {
    solve_lp_inner(a, b, c, Some(intr))
}

fn solve_lp_inner(
    a: &[Vec<Rat>],
    b: &[Rat],
    c: &[Rat],
    intr: Option<&Interrupt>,
) -> (Result<LpOutcome, Stop>, u64) {
    let m = a.len();
    let n = c.len();
    assert_eq!(b.len(), m, "b must match the number of constraint rows");
    for row in a {
        assert_eq!(row.len(), n, "every row of A must match c's length");
    }
    if let Some(h) = intr {
        if let Err(stop) = h.check() {
            return (Err(stop), 0);
        }
    }

    // Columns: n structural + m slack + (phase-1 artificials) + rhs.
    let negatives: Vec<usize> = (0..m).filter(|&i| b[i].is_negative()).collect();
    let nart = negatives.len();
    let ncols = n + m + nart + 1;

    let mut t: Vec<Vec<Rat>> = Vec::with_capacity(m);
    let mut basis = vec![0usize; m];
    let mut art_of_row = vec![usize::MAX; m];
    for (ai, &i) in negatives.iter().enumerate() {
        art_of_row[i] = n + m + ai;
    }
    for i in 0..m {
        let mut row = vec![Rat::zero(); ncols];
        let flip = b[i].is_negative();
        for j in 0..n {
            row[j] = if flip { -&a[i][j] } else { a[i][j].clone() };
        }
        // Slack: +1 normally; -1 after flipping the row.
        row[n + i] = if flip { -Rat::one() } else { Rat::one() };
        row[ncols - 1] = if flip { -&b[i] } else { b[i].clone() };
        if flip {
            row[art_of_row[i]] = Rat::one();
            basis[i] = art_of_row[i];
        } else {
            basis[i] = n + i;
        }
        // Clear denominators up front so fractional inputs start primitive.
        rescale_row(&mut row);
        t.push(row);
    }

    let mut tab = Tableau {
        t,
        obj: vec![Rat::zero(); ncols],
        basis,
        ncols,
        pivots: 0,
    };

    if nart > 0 {
        // Phase 1: maximize -(sum of artificials). The objective row must
        // be expressed in terms of the nonbasic variables: start from
        // -Σ artificials and add each artificial row *divided by its
        // basic coefficient* (1 before rescaling, the row scale after).
        for &i in &negatives {
            let scale = tab.t[i][art_of_row[i]].clone();
            debug_assert!(scale.is_positive());
            for j in 0..ncols {
                let add = &tab.t[i][j] / &scale;
                tab.obj[j] = &tab.obj[j] + &add;
            }
        }
        for &i in &negatives {
            tab.obj[art_of_row[i]] = Rat::zero();
        }
        let bounded = match tab.optimize(intr) {
            Ok(b) => b,
            Err(stop) => return (Err(stop), tab.pivots),
        };
        debug_assert!(bounded, "phase-1 objective is bounded by 0");
        // Feasible iff all artificials are zero: the phase-1 optimum
        // (stored as obj[rhs], negated running value) must be 0.
        if !tab.obj[ncols - 1].is_zero() {
            return (Ok(LpOutcome::Infeasible), tab.pivots);
        }
        // Drive any artificial still basic (at value 0) out of the basis.
        for r in 0..m {
            if tab.basis[r] >= n + m {
                if let Some(j) = (0..n + m).find(|&j| !tab.t[r][j].is_zero()) {
                    tab.pivot(r, j);
                }
                // If the whole row is zero the constraint was redundant;
                // leaving the zero artificial basic is harmless as long
                // as it can never re-enter (we zero its columns below).
            }
        }
        // Erase artificial columns so they never re-enter.
        for row in tab.t.iter_mut() {
            for cell in &mut row[n + m..ncols - 1] {
                *cell = Rat::zero();
            }
        }
        // Phase 2 objective: c over the structural variables, rewritten
        // through the current basis. A basic variable's row carries it
        // with coefficient t[r][bv] (not 1), hence the division.
        let mut obj = vec![Rat::zero(); ncols];
        for (j, item) in c.iter().enumerate() {
            obj[j] = item.clone();
        }
        for r in 0..m {
            let bv = tab.basis[r];
            if bv < ncols - 1 && !obj[bv].is_zero() {
                let factor = &obj[bv] / &tab.t[r][bv];
                for (o, cell) in obj.iter_mut().zip(&tab.t[r]) {
                    o.sub_mul(&factor, cell);
                }
            }
        }
        tab.obj = obj;
    } else {
        // All-slack basis is feasible; single phase.
        for (j, item) in c.iter().enumerate() {
            tab.obj[j] = item.clone();
        }
    }
    finish(tab, n, intr)
}

fn finish(mut tab: Tableau, n: usize, intr: Option<&Interrupt>) -> (Result<LpOutcome, Stop>, u64) {
    match tab.optimize(intr) {
        Ok(true) => {}
        Ok(false) => return (Ok(LpOutcome::Unbounded), tab.pivots),
        Err(stop) => return (Err(stop), tab.pivots),
    }
    let rhs = tab.ncols - 1;
    let mut x = vec![Rat::zero(); n];
    for (r, &bv) in tab.basis.iter().enumerate() {
        if bv < n {
            // Unnormalized rows carry the basic variable with a positive
            // coefficient, so its value is the ratio.
            x[bv] = &tab.t[r][rhs] / &tab.t[r][bv];
        }
    }
    // The objective row's RHS holds -(current value) relative to 0 start.
    let value = -&tab.obj[rhs];
    (Ok(LpOutcome::Optimal { x, value }), tab.pivots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use numeric::{qint, qrat};

    fn lp(a: &[&[i64]], b: &[i64], c: &[i64]) -> LpOutcome {
        let a: Vec<Vec<Rat>> = a
            .iter()
            .map(|r| r.iter().map(|&v| qint(v)).collect())
            .collect();
        let b: Vec<Rat> = b.iter().map(|&v| qint(v)).collect();
        let c: Vec<Rat> = c.iter().map(|&v| qint(v)).collect();
        solve_lp(&a, &b, &c)
    }

    #[test]
    fn textbook_optimum() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> 36 at (2,6).
        let out = lp(&[&[1, 0], &[0, 2], &[3, 2]], &[4, 12, 18], &[3, 5]);
        match out {
            LpOutcome::Optimal { x, value } => {
                assert_eq!(value, qint(36));
                assert_eq!(x, vec![qint(2), qint(6)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unbounded_detected() {
        // max x with only y constrained.
        let out = lp(&[&[0, 1]], &[5], &[1, 0]);
        assert_eq!(out, LpOutcome::Unbounded);
    }

    #[test]
    fn infeasible_detected() {
        // x <= -1 with x >= 0.
        let out = lp(&[&[1]], &[-1], &[1]);
        assert_eq!(out, LpOutcome::Infeasible);
        // x + y <= 2, -x - y <= -5.
        let out = lp(&[&[1, 1], &[-1, -1]], &[2, -5], &[1, 1]);
        assert_eq!(out, LpOutcome::Infeasible);
    }

    #[test]
    fn phase_one_needed_but_feasible() {
        // x >= 1 (as -x <= -1), x <= 3, max -x  -> optimum -1 at x = 1.
        let out = lp(&[&[-1], &[1]], &[-1, 3], &[-1]);
        match out {
            LpOutcome::Optimal { x, value } => {
                assert_eq!(x, vec![qint(1)]);
                assert_eq!(value, qint(-1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fractional_optimum_is_exact() {
        // max x + y s.t. 2x + y <= 3, x + 2y <= 3 -> (1,1) value 2;
        // max 2x + y with same constraints -> x=3/2, y=0? value 3.
        let out = lp(&[&[2, 1], &[1, 2]], &[3, 3], &[2, 1]);
        match out {
            LpOutcome::Optimal { value, .. } => assert_eq!(value, qint(3)),
            other => panic!("{other:?}"),
        }
        // A genuinely fractional one: max y s.t. 3y <= 2.
        let out = lp(&[&[3]], &[2], &[1]);
        match out {
            LpOutcome::Optimal { x, value } => {
                assert_eq!(x[0], qrat(2, 3));
                assert_eq!(value, qrat(2, 3));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // Classic degenerate instance (Beale-like); Bland must terminate.
        let a: Vec<Vec<Rat>> = vec![
            vec![qrat(1, 4), qint(-8), qint(-1), qint(9)],
            vec![qrat(1, 2), qint(-12), qrat(-1, 2), qint(3)],
            vec![qint(0), qint(0), qint(1), qint(0)],
        ];
        let b = vec![qint(0), qint(0), qint(1)];
        let c = vec![qrat(3, 4), qint(-20), qrat(1, 2), qint(-6)];
        match solve_lp(&a, &b, &c) {
            LpOutcome::Optimal { value, .. } => assert_eq!(value, qrat(5, 4)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn zero_dimensional_inputs() {
        // No constraints: max of the zero objective over nothing.
        let out = lp(&[], &[], &[]);
        assert_eq!(
            out,
            LpOutcome::Optimal {
                x: vec![],
                value: qint(0)
            }
        );
        // No constraints but a positive objective: unbounded.
        let out = lp(&[], &[], &[1]);
        assert_eq!(out, LpOutcome::Unbounded);
        // Constraints but empty objective over zero variables.
        let out = lp(&[&[]], &[1], &[]);
        assert_eq!(
            out,
            LpOutcome::Optimal {
                x: vec![],
                value: qint(0)
            }
        );
    }

    #[test]
    fn redundant_constraints_survive_phase_one() {
        // x >= 2 twice, x <= 5, max x -> 5.
        let out = lp(&[&[-1], &[-1], &[1]], &[-2, -2, 5], &[1]);
        match out {
            LpOutcome::Optimal { x, value } => {
                assert_eq!(x, vec![qint(5)]);
                assert_eq!(value, qint(5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pivot_counts_are_reported_in_band() {
        // The textbook instance pivots at least twice; a tableau that is
        // optimal at the start pivots zero times.
        let a: Vec<Vec<Rat>> = vec![vec![qint(1), qint(0)], vec![qint(3), qint(2)]];
        let b = vec![qint(4), qint(18)];
        let c = vec![qint(3), qint(5)];
        let (_, pivots) = solve_lp_counted(&a, &b, &c);
        assert!(pivots >= 2, "expected real pivoting, got {pivots}");
        let (out, pivots) = solve_lp_counted(&a, &b, &[qint(-1), qint(-1)]);
        assert_eq!(pivots, 0, "all-slack basis is already optimal");
        assert!(matches!(out, LpOutcome::Optimal { .. }));
    }

    #[test]
    fn rescale_row_produces_primitive_integers() {
        let mut row = vec![qrat(1, 2), qrat(3, 4), qint(0), qrat(-5, 2)];
        rescale_row(&mut row);
        assert_eq!(row, vec![qint(2), qint(3), qint(0), qint(-10)]);
        // Common numerator factor is divided out too.
        let mut row = vec![qint(6), qint(-9), qint(12)];
        rescale_row(&mut row);
        assert_eq!(row, vec![qint(2), qint(-3), qint(4)]);
        // All-zero rows and big entries are left alone.
        let mut row = vec![qint(0), qint(0)];
        rescale_row(&mut row);
        assert_eq!(row, vec![qint(0), qint(0)]);
        let big = &qint(i64::MAX) * &qint(3); // promoted
        let mut row = vec![big.clone(), qrat(1, 2)];
        rescale_row(&mut row);
        assert_eq!(row, vec![big, qrat(1, 2)]);
    }

    #[test]
    fn huge_coefficients_promote_and_stay_exact() {
        // max x s.t. K·x <= K² with K near the i64 boundary: the tableau
        // must promote internally yet produce the exact x = K.
        let k = qint(3_000_000_000);
        let ksq = &k * &k; // overflows i64 -> Big
        let out = solve_lp(&[vec![k.clone()]], &[ksq], &[qint(1)]);
        match out {
            LpOutcome::Optimal { x, value } => {
                assert_eq!(x[0], k);
                assert_eq!(value, k);
            }
            other => panic!("{other:?}"),
        }
    }
}
