//! A two-phase primal simplex solver over exact rationals.
//!
//! Solves `max cᵀx subject to Ax ≤ b, x ≥ 0` exactly. Bland's rule makes
//! termination unconditional (no cycling); exact [`BigRational`]
//! arithmetic makes the Optimal/Infeasible/Unbounded verdict trustworthy —
//! which matters because the callers turn these verdicts directly into
//! separability answers.
//!
//! The implementation is a dense tableau: rows are the constraints (with
//! slack variables completing an identity), the last row is the objective.
//! Phase 1 drives artificial variables out of the basis when some
//! `b_i < 0`; phase 2 optimizes the real objective.

use numeric::BigRational;

/// Result of [`solve_lp`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpOutcome {
    /// No feasible point.
    Infeasible,
    /// The objective is unbounded above.
    Unbounded,
    /// Optimal solution: values of the structural variables and the
    /// optimal objective value.
    Optimal {
        x: Vec<BigRational>,
        value: BigRational,
    },
}

struct Tableau {
    /// `rows × cols` coefficient matrix; the last column is the RHS.
    t: Vec<Vec<BigRational>>,
    /// Objective row (same width as `t` rows).
    obj: Vec<BigRational>,
    /// Basis: for each row, the variable index currently basic in it.
    basis: Vec<usize>,
    ncols: usize,
}

impl Tableau {
    fn rhs_col(&self) -> usize {
        self.ncols - 1
    }

    /// One simplex pivot round with Bland's rule. Returns:
    /// `None` if optimal, `Some(Ok(()))` after a pivot,
    /// `Some(Err(col))` if unbounded in column `col`.
    fn step(&mut self) -> Option<Result<(), usize>> {
        let rhs = self.rhs_col();
        // Entering variable: smallest index with positive reduced cost.
        let enter = (0..rhs).find(|&j| self.obj[j].is_positive())?;
        // Ratio test; ties broken by smallest basis variable (Bland).
        let mut best: Option<(usize, BigRational)> = None;
        for r in 0..self.t.len() {
            if !self.t[r][enter].is_positive() {
                continue;
            }
            let ratio = &self.t[r][rhs] / &self.t[r][enter];
            let better = match &best {
                None => true,
                Some((br, bratio)) => {
                    ratio < *bratio || (ratio == *bratio && self.basis[r] < self.basis[*br])
                }
            };
            if better {
                best = Some((r, ratio));
            }
        }
        let (row, _) = match best {
            None => return Some(Err(enter)),
            Some(x) => x,
        };
        self.pivot(row, enter);
        Some(Ok(()))
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let inv = self.t[row][col].recip();
        for v in self.t[row].iter_mut() {
            *v = &*v * &inv;
        }
        for r in 0..self.t.len() {
            if r == row || self.t[r][col].is_zero() {
                continue;
            }
            let factor = self.t[r][col].clone();
            for j in 0..self.ncols {
                let delta = &factor * &self.t[row][j];
                self.t[r][j] = &self.t[r][j] - &delta;
            }
        }
        if !self.obj[col].is_zero() {
            let factor = self.obj[col].clone();
            for j in 0..self.ncols {
                let delta = &factor * &self.t[row][j];
                self.obj[j] = &self.obj[j] - &delta;
            }
        }
        self.basis[row] = col;
    }

    /// Run pivots to optimality. Returns `false` on unboundedness.
    fn optimize(&mut self) -> bool {
        loop {
            match self.step() {
                None => return true,
                Some(Ok(())) => {}
                Some(Err(_)) => return false,
            }
        }
    }
}

/// Solve `max cᵀx s.t. Ax ≤ b, x ≥ 0` exactly.
///
/// `a` is row-major with `a.len() == b.len()` and each row of length
/// `c.len()`.
pub fn solve_lp(a: &[Vec<BigRational>], b: &[BigRational], c: &[BigRational]) -> LpOutcome {
    let m = a.len();
    let n = c.len();
    assert_eq!(b.len(), m, "b must match the number of constraint rows");
    for row in a {
        assert_eq!(row.len(), n, "every row of A must match c's length");
    }

    // Columns: n structural + m slack + (phase-1 artificials) + rhs.
    let negatives: Vec<usize> = (0..m).filter(|&i| b[i].is_negative()).collect();
    let nart = negatives.len();
    let ncols = n + m + nart + 1;
    let zero = BigRational::zero;
    let one = BigRational::one;

    let mut t: Vec<Vec<BigRational>> = Vec::with_capacity(m);
    let mut basis = vec![0usize; m];
    let mut art_of_row = vec![usize::MAX; m];
    for (ai, &i) in negatives.iter().enumerate() {
        art_of_row[i] = n + m + ai;
    }
    for i in 0..m {
        let mut row = vec![zero(); ncols];
        let flip = b[i].is_negative();
        for j in 0..n {
            row[j] = if flip { -&a[i][j] } else { a[i][j].clone() };
        }
        // Slack: +1 normally; -1 after flipping the row.
        row[n + i] = if flip { -one() } else { one() };
        row[ncols - 1] = if flip { -&b[i] } else { b[i].clone() };
        if flip {
            row[art_of_row[i]] = one();
            basis[i] = art_of_row[i];
        } else {
            basis[i] = n + i;
        }
        t.push(row);
    }

    if nart > 0 {
        // Phase 1: maximize -(sum of artificials). The objective row must
        // be expressed in terms of the nonbasic variables: start from
        // -Σ artificials and add each artificial row (which has the
        // artificial basic with coefficient 1).
        let mut obj = vec![zero(); ncols];
        for &i in &negatives {
            for j in 0..ncols {
                let add = t[i][j].clone();
                obj[j] = &obj[j] + &add;
            }
        }
        for &i in &negatives {
            obj[art_of_row[i]] = zero();
        }
        let mut tab = Tableau {
            t,
            obj,
            basis,
            ncols,
        };
        let bounded = tab.optimize();
        debug_assert!(bounded, "phase-1 objective is bounded by 0");
        // Feasible iff all artificials are zero: the phase-1 optimum
        // (stored as obj[rhs], negated running value) must be 0.
        let resid = tab.obj[ncols - 1].clone();
        if !resid.is_zero() {
            return LpOutcome::Infeasible;
        }
        // Drive any artificial still basic (at value 0) out of the basis.
        for r in 0..m {
            if tab.basis[r] >= n + m {
                if let Some(j) = (0..n + m).find(|&j| !tab.t[r][j].is_zero()) {
                    tab.pivot(r, j);
                }
                // If the whole row is zero the constraint was redundant;
                // leaving the zero artificial basic is harmless as long
                // as it can never re-enter (we zero its columns below).
            }
        }
        // Erase artificial columns so they never re-enter.
        for row in tab.t.iter_mut() {
            for cell in &mut row[n + m..ncols - 1] {
                *cell = zero();
            }
        }
        // Phase 2 objective: c over the structural variables, rewritten
        // through the current basis.
        let mut obj = vec![zero(); ncols];
        for (j, item) in c.iter().enumerate() {
            obj[j] = item.clone();
        }
        for r in 0..m {
            let bv = tab.basis[r];
            if bv < ncols - 1 && !obj[bv].is_zero() {
                let factor = obj[bv].clone();
                for (o, cell) in obj.iter_mut().zip(&tab.t[r]) {
                    let delta = &factor * cell;
                    *o = &*o - &delta;
                }
            }
        }
        tab.obj = obj;
        finish(tab, n)
    } else {
        // All-slack basis is feasible; single phase.
        let mut obj = vec![zero(); ncols];
        for (j, item) in c.iter().enumerate() {
            obj[j] = item.clone();
        }
        let tab = Tableau {
            t,
            obj,
            basis,
            ncols,
        };
        finish(tab, n)
    }
}

fn finish(mut tab: Tableau, n: usize) -> LpOutcome {
    if !tab.optimize() {
        return LpOutcome::Unbounded;
    }
    let rhs = tab.ncols - 1;
    let mut x = vec![BigRational::zero(); n];
    for (r, &bv) in tab.basis.iter().enumerate() {
        if bv < n {
            x[bv] = tab.t[r][rhs].clone();
        }
    }
    // The objective row's RHS holds -(current value) relative to 0 start.
    let value = -&tab.obj[rhs];
    LpOutcome::Optimal { x, value }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numeric::{int, ratio};

    fn lp(a: &[&[i64]], b: &[i64], c: &[i64]) -> LpOutcome {
        let a: Vec<Vec<BigRational>> = a
            .iter()
            .map(|r| r.iter().map(|&v| int(v)).collect())
            .collect();
        let b: Vec<BigRational> = b.iter().map(|&v| int(v)).collect();
        let c: Vec<BigRational> = c.iter().map(|&v| int(v)).collect();
        solve_lp(&a, &b, &c)
    }

    #[test]
    fn textbook_optimum() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> 36 at (2,6).
        let out = lp(&[&[1, 0], &[0, 2], &[3, 2]], &[4, 12, 18], &[3, 5]);
        match out {
            LpOutcome::Optimal { x, value } => {
                assert_eq!(value, int(36));
                assert_eq!(x, vec![int(2), int(6)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unbounded_detected() {
        // max x with only y constrained.
        let out = lp(&[&[0, 1]], &[5], &[1, 0]);
        assert_eq!(out, LpOutcome::Unbounded);
    }

    #[test]
    fn infeasible_detected() {
        // x <= -1 with x >= 0.
        let out = lp(&[&[1]], &[-1], &[1]);
        assert_eq!(out, LpOutcome::Infeasible);
        // x + y <= 2, -x - y <= -5.
        let out = lp(&[&[1, 1], &[-1, -1]], &[2, -5], &[1, 1]);
        assert_eq!(out, LpOutcome::Infeasible);
    }

    #[test]
    fn phase_one_needed_but_feasible() {
        // x >= 1 (as -x <= -1), x <= 3, max -x  -> optimum -1 at x = 1.
        let out = lp(&[&[-1], &[1]], &[-1, 3], &[-1]);
        match out {
            LpOutcome::Optimal { x, value } => {
                assert_eq!(x, vec![int(1)]);
                assert_eq!(value, int(-1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fractional_optimum_is_exact() {
        // max x + y s.t. 2x + y <= 3, x + 2y <= 3 -> (1,1) value 2;
        // max 2x + y with same constraints -> x=3/2, y=0? value 3.
        let out = lp(&[&[2, 1], &[1, 2]], &[3, 3], &[2, 1]);
        match out {
            LpOutcome::Optimal { value, .. } => assert_eq!(value, int(3)),
            other => panic!("{other:?}"),
        }
        // A genuinely fractional one: max y s.t. 3y <= 2.
        let out = lp(&[&[3]], &[2], &[1]);
        match out {
            LpOutcome::Optimal { x, value } => {
                assert_eq!(x[0], ratio(2, 3));
                assert_eq!(value, ratio(2, 3));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // Classic degenerate instance (Beale-like); Bland must terminate.
        let a: Vec<Vec<BigRational>> = vec![
            vec![ratio(1, 4), int(-8), int(-1), int(9)],
            vec![ratio(1, 2), int(-12), ratio(-1, 2), int(3)],
            vec![int(0), int(0), int(1), int(0)],
        ];
        let b = vec![int(0), int(0), int(1)];
        let c = vec![ratio(3, 4), int(-20), ratio(1, 2), int(-6)];
        match solve_lp(&a, &b, &c) {
            LpOutcome::Optimal { value, .. } => assert_eq!(value, ratio(5, 4)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn zero_dimensional_inputs() {
        // No constraints: max of the zero objective over nothing.
        let out = lp(&[], &[], &[]);
        assert_eq!(
            out,
            LpOutcome::Optimal {
                x: vec![],
                value: int(0)
            }
        );
        // No constraints but a positive objective: unbounded.
        let out = lp(&[], &[], &[1]);
        assert_eq!(out, LpOutcome::Unbounded);
        // Constraints but empty objective over zero variables.
        let out = lp(&[&[]], &[1], &[]);
        assert_eq!(
            out,
            LpOutcome::Optimal {
                x: vec![],
                value: int(0)
            }
        );
    }

    #[test]
    fn redundant_constraints_survive_phase_one() {
        // x >= 2 twice, x <= 5, max x -> 5.
        let out = lp(&[&[-1], &[-1], &[1]], &[-2, -2, 5], &[1]);
        match out {
            LpOutcome::Optimal { x, value } => {
                assert_eq!(x, vec![int(5)]);
                assert_eq!(value, int(5));
            }
            other => panic!("{other:?}"),
        }
    }
}
