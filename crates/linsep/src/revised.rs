//! Sparse revised simplex over exact rationals, with warm-started bases.
//!
//! The dense tableau in [`crate::simplex`] rewrites the entire `m × (n+m)`
//! matrix on every pivot. The separation LPs the subset sweep generates
//! are mostly ±1 and highly structured (example rows + unit box rows), so
//! a revised simplex that keeps only the original columns (column-major
//! nonzero lists, slacks implicit) plus a factorization of the current
//! basis does `O(m²)` work per pivot instead of `O(m·(n+m))` — and, more
//! importantly, can **warm-start**: a caller holding the final basis of a
//! structurally similar LP (subset `S` vs `S ∪ {j}` in the ≤ℓ sweep) can
//! hand it back and skip most pivots.
//!
//! Representation (see DESIGN.md):
//!
//! * **Basis factorization**: a packed exact LU of the row-permuted basis
//!   matrix (`PB = LU`; multipliers of `L` strictly below the unit
//!   diagonal, `U` on and above; `perm[i]` = original constraint row at
//!   pivot position `i`), plus an **eta file**: after `k` pivots the
//!   basis is `B_k = B₀·E₁···E_k`, each `E_t` an identity with one column
//!   replaced by the FTRAN-ed entering column. FTRAN/BTRAN apply the LU
//!   triangles and then the eta columns (oldest-first forward,
//!   newest-first transposed). The file is collapsed back into a fresh LU
//!   every [`REFACTOR_LIMIT`] pivots.
//! * **Pricing**: partial — a rotating cursor takes the first nonbasic
//!   column with positive reduced cost, so one BTRAN prices the whole
//!   round and easy entering columns are found without scanning all
//!   `n+m`. A run of [`degen ≥ 2m+16`](Pricing) consecutive degenerate
//!   pivots permanently switches to Bland's smallest-index rule, which
//!   cannot cycle (a cycle is all-degenerate); [`Pricing::Bland`] forces
//!   that rule from the start, in which case this solver performs
//!   *exactly* the dense tableau's pivot sequence (same entering rule,
//!   same ratio tie-break) — the agreement tests pin this.
//! * **Warm starts**: [`Warm::Reuse`] clones a sibling instance's entire
//!   factorization (valid when every basis column's data is unchanged —
//!   the caller's contract) and recomputes `x_B = B⁻¹b` for the new RHS;
//!   [`Warm::Basis`] takes just a variable list (e.g. a parent basis
//!   remapped to the child's indices) and refactorizes from the current
//!   columns. Both verify `B·x_B = b` against the *actual* columns and
//!   `x_B ≥ 0` before accepting, falling back to the all-slack cold
//!   start otherwise — a rejected warm start can cost one factorization
//!   but can never change a verdict.
//!
//! Scope: this solver requires `b ≥ 0` (the all-slack basis feasible, so
//! a single phase suffices). The margin LPs of [`crate::separate`] always
//! satisfy this; [`solve_lp_sparse`] returns `None` otherwise and the
//! caller falls back to the dense two-phase solver.

use interrupt::{Interrupt, Stop};
use numeric::Rat;

/// Collapse the eta file into a fresh LU once it reaches this many
/// columns: FTRAN/BTRAN cost grows linearly with the file, refactoring
/// costs one `O(m³)` elimination.
const REFACTOR_LIMIT: usize = 24;

/// One product-form update: the basis column at position `r` was replaced
/// by the FTRAN-ed entering column `w` (`diag = w_r`, always nonzero;
/// `col` holds the remaining nonzeros of `w`).
#[derive(Clone, Debug)]
struct Eta {
    r: usize,
    diag: Rat,
    col: Vec<(usize, Rat)>,
}

/// A factorized simplex basis, detachable from the solve that produced it
/// and reusable to warm-start a later one (see [`Warm`]).
#[derive(Clone, Debug)]
pub struct SparseBasis {
    /// Basic variable at each basis position (structural `j < n`, slack
    /// `n + row` otherwise).
    vars: Vec<usize>,
    /// Packed LU of the row-permuted basis matrix at the last refactor.
    lu: Vec<Vec<Rat>>,
    /// `perm[i]` = original constraint row at pivot position `i`.
    perm: Vec<usize>,
    /// Product-form updates since the last refactor.
    etas: Vec<Eta>,
}

impl SparseBasis {
    /// The basic variable indices, one per constraint row (structural
    /// variables are `0..n`, the slack of row `i` is `n + i`).
    pub fn vars(&self) -> &[usize] {
        &self.vars
    }

    fn cold(n: usize, m: usize) -> SparseBasis {
        let mut lu = vec![vec![Rat::zero(); m]; m];
        for (i, row) in lu.iter_mut().enumerate() {
            row[i] = Rat::one();
        }
        SparseBasis {
            vars: (n..n + m).collect(),
            lu,
            perm: (0..m).collect(),
            etas: Vec::new(),
        }
    }
}

/// How to seed the starting basis of a sparse solve.
pub enum Warm<'a> {
    /// Clone a finished basis (factorization included) from a *sibling*
    /// instance whose basis columns are all byte-identical to this one's
    /// — only the RHS (and non-basic column data) may differ. `x_B` is
    /// recomputed for the new `b` and the clone is verified against the
    /// actual columns; any mismatch or infeasibility falls back to cold.
    Reuse(&'a SparseBasis),
    /// Start from this variable list, refactorizing against the current
    /// instance's columns (use when indices had to be remapped, e.g. a
    /// parent subset's basis extended to `S ∪ {j}`). Singular or
    /// infeasible lists fall back to cold.
    Basis(Vec<usize>),
}

/// Entering-variable rule. `Partial` is the performance default; `Bland`
/// reproduces the dense tableau's pivot sequence exactly (used by the
/// agreement tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pricing {
    /// Rotating-cursor first-improving, with an automatic permanent
    /// switch to Bland after a long degenerate run.
    Partial,
    /// Smallest-index rule from the first pivot.
    Bland,
}

/// Per-solve accounting returned alongside the outcome.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SparseReport {
    /// Simplex pivots performed.
    pub pivots: u64,
    /// Whether an offered warm basis was actually accepted (an offered
    /// basis that failed verification cold-starts and reports `false`).
    pub warm_used: bool,
}

/// Result of [`solve_lp_sparse`]. Infeasibility cannot occur: the solver
/// only accepts instances with `b ≥ 0`, where the all-slack basis is
/// feasible.
#[derive(Clone, Debug)]
pub enum SparseOutcome {
    /// Optimal structural solution, objective value, and the final basis
    /// (hand it back via [`Warm`] to warm-start a related solve).
    Optimal {
        x: Vec<Rat>,
        value: Rat,
        basis: SparseBasis,
    },
    /// The objective is unbounded above.
    Unbounded,
}

/// Solve `max cᵀx s.t. Ax ≤ b, x ≥ 0` exactly by the sparse revised
/// simplex with partial pricing, optionally warm-started.
///
/// Returns `None` when some `b_i < 0` (the caller should use the dense
/// two-phase [`crate::simplex::solve_lp_counted`] instead). The caller
/// owns all counter accounting via the returned [`SparseReport`].
pub fn solve_lp_sparse(
    a: &[Vec<Rat>],
    b: &[Rat],
    c: &[Rat],
    warm: Option<Warm>,
    intr: Option<&Interrupt>,
) -> Option<(Result<SparseOutcome, Stop>, SparseReport)> {
    solve_lp_sparse_with_pricing(a, b, c, warm, Pricing::Partial, intr)
}

/// [`solve_lp_sparse`] with an explicit entering rule.
pub fn solve_lp_sparse_with_pricing(
    a: &[Vec<Rat>],
    b: &[Rat],
    c: &[Rat],
    warm: Option<Warm>,
    pricing: Pricing,
    intr: Option<&Interrupt>,
) -> Option<(Result<SparseOutcome, Stop>, SparseReport)> {
    let m = a.len();
    let n = c.len();
    assert_eq!(b.len(), m, "b must match the number of constraint rows");
    for row in a {
        assert_eq!(row.len(), n, "every row of A must match c's length");
    }
    if b.iter().any(|v| v.is_negative()) {
        return None;
    }
    // Column-major nonzero lists of the structural columns; slack columns
    // stay implicit unit vectors.
    let mut cols: Vec<Vec<(usize, Rat)>> = vec![Vec::new(); n];
    for (i, row) in a.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            if !v.is_zero() {
                cols[j].push((i, v.clone()));
            }
        }
    }
    let mut rev = Rev {
        cols,
        b,
        c,
        n,
        m,
        basis: SparseBasis::cold(n, m),
        x_b: b.to_vec(),
        in_basis: {
            let mut ib = vec![false; n + m];
            for s in ib.iter_mut().skip(n) {
                *s = true;
            }
            ib
        },
        pivots: 0,
        cursor: 0,
    };
    let warm_used = warm.is_some_and(|w| rev.try_warm(w));
    let result = rev.run(pricing, intr);
    let report = SparseReport {
        pivots: rev.pivots,
        warm_used,
    };
    Some((result, report))
}

struct Rev<'a> {
    cols: Vec<Vec<(usize, Rat)>>,
    b: &'a [Rat],
    c: &'a [Rat],
    n: usize,
    m: usize,
    basis: SparseBasis,
    /// Values of the basic variables, aligned with `basis.vars`.
    x_b: Vec<Rat>,
    in_basis: Vec<bool>,
    pivots: u64,
    /// Partial-pricing rotating cursor.
    cursor: usize,
}

/// Exact LU with row permutation by first-nonzero pivoting (exact
/// arithmetic needs no magnitude pivoting; first-nonzero keeps the
/// elimination deterministic). `None` iff the matrix is singular.
fn factorize(mut mtx: Vec<Vec<Rat>>) -> Option<(Vec<Vec<Rat>>, Vec<usize>)> {
    let m = mtx.len();
    let mut perm: Vec<usize> = (0..m).collect();
    for k in 0..m {
        let p = (k..m).find(|&p| !mtx[p][k].is_zero())?;
        mtx.swap(k, p);
        perm.swap(k, p);
        for i in k + 1..m {
            let (upper, lower) = mtx.split_at_mut(i);
            let rk = &upper[k];
            let ri = &mut lower[0];
            if ri[k].is_zero() {
                continue;
            }
            let f = &ri[k] / &rk[k];
            for j in k + 1..m {
                if !rk[j].is_zero() {
                    ri[j].sub_mul(&f, &rk[j]);
                }
            }
            ri[k] = f;
        }
    }
    Some((mtx, perm))
}

impl Rev<'_> {
    /// The basis matrix for `vars` as dense rows (columns of `A`, slacks
    /// as unit vectors).
    fn dense_basis_matrix(&self, vars: &[usize]) -> Vec<Vec<Rat>> {
        let mut mtx = vec![vec![Rat::zero(); self.m]; self.m];
        for (k, &v) in vars.iter().enumerate() {
            if v < self.n {
                for (i, coef) in &self.cols[v] {
                    mtx[*i][k] = coef.clone();
                }
            } else {
                mtx[v - self.n][k] = Rat::one();
            }
        }
        mtx
    }

    /// Attempt to install a warm basis; `true` iff it was accepted.
    /// Runs before any pivot, so on rejection the cold state (`x_b = b`,
    /// all-slack `in_basis`) is still intact.
    fn try_warm(&mut self, warm: Warm) -> bool {
        let candidate = match warm {
            Warm::Reuse(sb) => {
                if sb.vars.len() != self.m
                    || sb.lu.len() != self.m
                    || sb.vars.iter().any(|&v| v >= self.n + self.m)
                {
                    return false;
                }
                sb.clone()
            }
            Warm::Basis(vars) => {
                if vars.len() != self.m || vars.iter().any(|&v| v >= self.n + self.m) {
                    return false;
                }
                let mut seen = vec![false; self.n + self.m];
                for &v in &vars {
                    if seen[v] {
                        return false;
                    }
                    seen[v] = true;
                }
                match factorize(self.dense_basis_matrix(&vars)) {
                    Some((lu, perm)) => SparseBasis {
                        vars,
                        lu,
                        perm,
                        etas: Vec::new(),
                    },
                    None => return false,
                }
            }
        };
        let saved = std::mem::replace(&mut self.basis, candidate);
        let xb = self.ftran(self.b);
        // Accept only a verified feasible basic solution: `x_B ≥ 0` and
        // `B·x_B = b` against the *current* columns (so a stale or
        // mismatched factorization can never corrupt the verdict).
        if xb.iter().all(|v| !v.is_negative()) && self.residual_is_zero(&xb) {
            self.x_b = xb;
            self.in_basis = vec![false; self.n + self.m];
            for &v in &self.basis.vars {
                self.in_basis[v] = true;
            }
            true
        } else {
            self.basis = saved;
            false
        }
    }

    /// Does `B·x_B = b` hold against the instance's actual columns?
    fn residual_is_zero(&self, xb: &[Rat]) -> bool {
        let mut acc = vec![Rat::zero(); self.m];
        for (k, &v) in self.basis.vars.iter().enumerate() {
            if xb[k].is_zero() {
                continue;
            }
            if v < self.n {
                for (i, coef) in &self.cols[v] {
                    acc[*i].add_mul(coef, &xb[k]);
                }
            } else {
                let i = v - self.n;
                acc[i] = &acc[i] + &xb[k];
            }
        }
        acc.iter().zip(self.b.iter()).all(|(l, r)| l == r)
    }

    /// FTRAN: solve `B z = v` (`v` indexed by original constraint row,
    /// `z` by basis position): LU triangles, then etas oldest-first.
    fn ftran(&self, v: &[Rat]) -> Vec<Rat> {
        let m = self.m;
        let lu = &self.basis.lu;
        // Forward `L y = P v`.
        let mut y: Vec<Rat> = Vec::with_capacity(m);
        for i in 0..m {
            let mut acc = v[self.basis.perm[i]].clone();
            for (j, yj) in y.iter().enumerate() {
                if !lu[i][j].is_zero() && !yj.is_zero() {
                    acc.sub_mul(&lu[i][j], yj);
                }
            }
            y.push(acc);
        }
        // Backward `U z = y`.
        let mut z = vec![Rat::zero(); m];
        for i in (0..m).rev() {
            let mut acc = std::mem::take(&mut y[i]);
            for j in i + 1..m {
                if !lu[i][j].is_zero() && !z[j].is_zero() {
                    acc.sub_mul(&lu[i][j], &z[j]);
                }
            }
            z[i] = &acc / &lu[i][i];
        }
        // Product form, oldest first: z ← E_t⁻¹ z.
        for eta in &self.basis.etas {
            let zr = &z[eta.r] / &eta.diag;
            if !zr.is_zero() {
                for (i, wi) in &eta.col {
                    z[*i].sub_mul(wi, &zr);
                }
            }
            z[eta.r] = zr;
        }
        z
    }

    /// BTRAN: solve `Bᵀ y = c_B` (`c_B` indexed by basis position, `y` by
    /// original constraint row): etas newest-first transposed, then the
    /// transposed LU triangles.
    fn btran(&self, cb: &[Rat]) -> Vec<Rat> {
        let m = self.m;
        let lu = &self.basis.lu;
        let mut d = cb.to_vec();
        for eta in self.basis.etas.iter().rev() {
            let mut acc = std::mem::take(&mut d[eta.r]);
            for (i, wi) in &eta.col {
                if !d[*i].is_zero() {
                    acc.sub_mul(wi, &d[*i]);
                }
            }
            d[eta.r] = &acc / &eta.diag;
        }
        // Forward `Uᵀ z = d` (lower triangular with diag `lu[i][i]`).
        let mut z: Vec<Rat> = Vec::with_capacity(m);
        for i in 0..m {
            let mut acc = std::mem::take(&mut d[i]);
            for (j, zj) in z.iter().enumerate() {
                if !lu[j][i].is_zero() && !zj.is_zero() {
                    acc.sub_mul(&lu[j][i], zj);
                }
            }
            z.push(&acc / &lu[i][i]);
        }
        // Backward `Lᵀ w = z` (unit upper triangular).
        let mut w = vec![Rat::zero(); m];
        for i in (0..m).rev() {
            let mut acc = std::mem::take(&mut z[i]);
            for j in i + 1..m {
                if !lu[j][i].is_zero() && !w[j].is_zero() {
                    acc.sub_mul(&lu[j][i], &w[j]);
                }
            }
            w[i] = acc;
        }
        // Undo the row permutation: y[perm[i]] = w[i].
        let mut y = vec![Rat::zero(); m];
        for (i, wi) in w.into_iter().enumerate() {
            y[self.basis.perm[i]] = wi;
        }
        y
    }

    /// Reduced cost of nonbasic `j` under duals `y`.
    fn reduced_cost(&self, j: usize, y: &[Rat]) -> Rat {
        if j < self.n {
            let mut d = self.c[j].clone();
            for (i, coef) in &self.cols[j] {
                if !y[*i].is_zero() {
                    d.sub_mul(&y[*i], coef);
                }
            }
            d
        } else {
            -&y[j - self.n]
        }
    }

    /// Entering variable, or `None` if optimal.
    fn price(&mut self, y: &[Rat], bland: bool) -> Option<usize> {
        let total = self.n + self.m;
        if bland {
            return (0..total)
                .find(|&j| !self.in_basis[j] && self.reduced_cost(j, y).is_positive());
        }
        for off in 0..total {
            let j = (self.cursor + off) % total;
            if !self.in_basis[j] && self.reduced_cost(j, y).is_positive() {
                self.cursor = (j + 1) % total;
                return Some(j);
            }
        }
        None
    }

    fn column_dense(&self, j: usize) -> Vec<Rat> {
        let mut v = vec![Rat::zero(); self.m];
        if j < self.n {
            for (i, coef) in &self.cols[j] {
                v[*i] = coef.clone();
            }
        } else {
            v[j - self.n] = Rat::one();
        }
        v
    }

    /// Collapse the eta file into a fresh LU of the current basis. A true
    /// basis is nonsingular, so this cannot fail.
    fn refactor(&mut self) {
        let (lu, perm) = factorize(self.dense_basis_matrix(&self.basis.vars))
            .expect("current basis matrix is nonsingular");
        self.basis.lu = lu;
        self.basis.perm = perm;
        self.basis.etas.clear();
    }

    fn run(&mut self, pricing: Pricing, intr: Option<&Interrupt>) -> Result<SparseOutcome, Stop> {
        let mut bland = pricing == Pricing::Bland;
        let mut degen_run = 0usize;
        // A cycle consists solely of degenerate pivots, so a long
        // degenerate run is the signal to fall back to Bland's rule
        // (which terminates unconditionally).
        let degen_limit = 2 * self.m + 16;
        loop {
            if let Some(h) = intr {
                h.check()?;
            }
            let cb: Vec<Rat> = self
                .basis
                .vars
                .iter()
                .map(|&v| {
                    if v < self.n {
                        self.c[v].clone()
                    } else {
                        Rat::zero()
                    }
                })
                .collect();
            let y = self.btran(&cb);
            let Some(enter) = self.price(&y, bland) else {
                return Ok(self.extract());
            };
            let w = self.ftran(&self.column_dense(enter));
            // Ratio test; ties broken by smallest basic variable (Bland),
            // matching the dense tableau exactly.
            let mut best: Option<(usize, Rat)> = None;
            for (i, wi) in w.iter().enumerate() {
                if !wi.is_positive() {
                    continue;
                }
                let ratio = &self.x_b[i] / wi;
                let better = match &best {
                    None => true,
                    Some((bi, br)) => {
                        ratio < *br || (ratio == *br && self.basis.vars[i] < self.basis.vars[*bi])
                    }
                };
                if better {
                    best = Some((i, ratio));
                }
            }
            let Some((r, theta)) = best else {
                return Ok(SparseOutcome::Unbounded);
            };
            if theta.is_zero() {
                degen_run += 1;
                if degen_run >= degen_limit {
                    bland = true;
                }
            } else {
                degen_run = 0;
            }
            self.pivots += 1;
            for (i, wi) in w.iter().enumerate() {
                if i != r && !wi.is_zero() && !theta.is_zero() {
                    self.x_b[i].sub_mul(wi, &theta);
                }
            }
            self.x_b[r] = theta;
            let leave = self.basis.vars[r];
            self.in_basis[leave] = false;
            self.in_basis[enter] = true;
            self.basis.vars[r] = enter;
            let diag = w[r].clone();
            let col: Vec<(usize, Rat)> = w
                .into_iter()
                .enumerate()
                .filter(|(i, wi)| *i != r && !wi.is_zero())
                .collect();
            self.basis.etas.push(Eta { r, diag, col });
            if self.basis.etas.len() >= REFACTOR_LIMIT {
                self.refactor();
            }
        }
    }

    fn extract(&self) -> SparseOutcome {
        let mut x = vec![Rat::zero(); self.n];
        let mut value = Rat::zero();
        for (k, &v) in self.basis.vars.iter().enumerate() {
            if v < self.n {
                if !self.c[v].is_zero() {
                    value.add_mul(&self.c[v], &self.x_b[k]);
                }
                x[v] = self.x_b[k].clone();
            }
        }
        SparseOutcome::Optimal {
            x,
            value,
            basis: self.basis.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::{solve_lp_counted, LpOutcome};
    use numeric::{qint, qrat};

    fn rats(rows: &[&[i64]]) -> Vec<Vec<Rat>> {
        rows.iter()
            .map(|r| r.iter().map(|&v| qint(v)).collect())
            .collect()
    }

    fn sparse(
        a: &[Vec<Rat>],
        b: &[Rat],
        c: &[Rat],
        warm: Option<Warm>,
        pricing: Pricing,
    ) -> (SparseOutcome, SparseReport) {
        let (res, report) =
            solve_lp_sparse_with_pricing(a, b, c, warm, pricing, None).expect("b >= 0");
        (res.expect("uninterruptible"), report)
    }

    #[test]
    fn textbook_optimum_matches_dense() {
        let a = rats(&[&[1, 0], &[0, 2], &[3, 2]]);
        let b = vec![qint(4), qint(12), qint(18)];
        let c = vec![qint(3), qint(5)];
        for pricing in [Pricing::Partial, Pricing::Bland] {
            let (out, report) = sparse(&a, &b, &c, None, pricing);
            match out {
                SparseOutcome::Optimal { x, value, .. } => {
                    assert_eq!(value, qint(36));
                    assert_eq!(x, vec![qint(2), qint(6)]);
                }
                other => panic!("{other:?}"),
            }
            assert!(!report.warm_used);
            assert!(report.pivots >= 2);
        }
    }

    #[test]
    fn bland_mode_matches_dense_pivot_for_pivot() {
        // With b >= 0 the dense solver runs a single Bland phase from the
        // same all-slack basis, so outcomes AND pivot counts must agree.
        type Case = (Vec<Vec<Rat>>, Vec<Rat>, Vec<Rat>);
        let cases: Vec<Case> = vec![
            (
                rats(&[&[1, 0], &[0, 2], &[3, 2]]),
                vec![qint(4), qint(12), qint(18)],
                vec![qint(3), qint(5)],
            ),
            (
                rats(&[&[2, 1], &[1, 2]]),
                vec![qint(3), qint(3)],
                vec![qint(2), qint(1)],
            ),
            (rats(&[&[3]]), vec![qint(2)], vec![qint(1)]),
            (
                // Degenerate Beale-like instance (b = 0 rows).
                vec![
                    vec![qrat(1, 4), qint(-8), qint(-1), qint(9)],
                    vec![qrat(1, 2), qint(-12), qrat(-1, 2), qint(3)],
                    vec![qint(0), qint(0), qint(1), qint(0)],
                ],
                vec![qint(0), qint(0), qint(1)],
                vec![qrat(3, 4), qint(-20), qrat(1, 2), qint(-6)],
            ),
        ];
        for (a, b, c) in &cases {
            let (dense_out, dense_pivots) = solve_lp_counted(a, b, c);
            let (out, report) = sparse(a, b, c, None, Pricing::Bland);
            match (out, dense_out) {
                (
                    SparseOutcome::Optimal { x, value, .. },
                    LpOutcome::Optimal {
                        x: dx,
                        value: dvalue,
                    },
                ) => {
                    assert_eq!(value, dvalue);
                    assert_eq!(x, dx, "exact vertex agreement");
                }
                (l, r) => panic!("outcome mismatch: {l:?} vs {r:?}"),
            }
            assert_eq!(report.pivots, dense_pivots, "identical pivot sequence");
        }
    }

    #[test]
    fn unbounded_detected() {
        let a = rats(&[&[0, 1]]);
        let b = vec![qint(5)];
        let c = vec![qint(1), qint(0)];
        let (out, _) = sparse(&a, &b, &c, None, Pricing::Partial);
        assert!(matches!(out, SparseOutcome::Unbounded));
    }

    #[test]
    fn declines_negative_rhs() {
        let a = rats(&[&[1]]);
        let b = vec![qint(-1)];
        let c = vec![qint(1)];
        assert!(solve_lp_sparse(&a, &b, &c, None, None).is_none());
    }

    #[test]
    fn warm_basis_restart_is_pivot_free() {
        let a = rats(&[&[1, 0], &[0, 2], &[3, 2]]);
        let b = vec![qint(4), qint(12), qint(18)];
        let c = vec![qint(3), qint(5)];
        let (out, _) = sparse(&a, &b, &c, None, Pricing::Partial);
        let SparseOutcome::Optimal { basis, value, .. } = out else {
            panic!("optimal expected");
        };
        let warm = Warm::Basis(basis.vars().to_vec());
        let (out2, report2) = sparse(&a, &b, &c, Some(warm), Pricing::Partial);
        let SparseOutcome::Optimal { value: v2, .. } = out2 else {
            panic!("optimal expected");
        };
        assert_eq!(v2, value);
        assert!(report2.warm_used);
        assert_eq!(report2.pivots, 0, "optimal basis needs no pivots");
    }

    #[test]
    fn warm_reuse_adapts_to_a_new_rhs() {
        // Same columns, different b: the cloned factorization stays
        // valid and only x_B = B⁻¹b changes.
        let a = rats(&[&[1, 0], &[0, 1]]);
        let c = vec![qint(1), qint(1)];
        let b1 = vec![qint(4), qint(6)];
        let (out, _) = sparse(&a, &b1, &c, None, Pricing::Partial);
        let SparseOutcome::Optimal { basis, .. } = out else {
            panic!("optimal expected");
        };
        let b2 = vec![qint(3), qint(5)];
        let (out2, report2) = sparse(&a, &b2, &c, Some(Warm::Reuse(&basis)), Pricing::Partial);
        let SparseOutcome::Optimal { x, value, .. } = out2 else {
            panic!("optimal expected");
        };
        assert!(report2.warm_used);
        assert_eq!(report2.pivots, 0);
        assert_eq!(value, qint(8));
        assert_eq!(x, vec![qint(3), qint(5)]);
    }

    #[test]
    fn infeasible_warm_basis_falls_back_to_cold() {
        // max x s.t. x <= 1, x <= 2: the basis {x (from row 1), slack 0}
        // would put x = 2 > 1 — infeasible, so the warm offer must be
        // rejected and the cold start still reach the right answer.
        let a = rats(&[&[1], &[1]]);
        let b = vec![qint(1), qint(2)];
        let c = vec![qint(1)];
        let (out, report) = sparse(&a, &b, &c, Some(Warm::Basis(vec![0, 1])), Pricing::Partial);
        // vars [0, 1]: x basic in position 0, slack of row 0 in position
        // 1 — B⁻¹b = [2, -1]: infeasible, rejected.
        let SparseOutcome::Optimal { value, .. } = out else {
            panic!("optimal expected");
        };
        assert!(!report.warm_used);
        assert_eq!(value, qint(1));
    }

    #[test]
    fn garbage_warm_offers_are_rejected_not_fatal() {
        let a = rats(&[&[1]]);
        let b = vec![qint(3)];
        let c = vec![qint(1)];
        for warm in [
            Warm::Basis(vec![7]),    // out of range
            Warm::Basis(vec![0, 0]), // wrong length
            Warm::Basis(Vec::new()), // wrong length
        ] {
            let (out, report) = sparse(&a, &b, &c, Some(warm), Pricing::Partial);
            let SparseOutcome::Optimal { value, .. } = out else {
                panic!("optimal expected");
            };
            assert!(!report.warm_used);
            assert_eq!(value, qint(3));
        }
    }

    #[test]
    fn long_solves_cross_the_refactor_boundary() {
        // n independent x_i <= 1 constraints force one pivot per
        // variable; n > REFACTOR_LIMIT exercises the eta-file collapse.
        let n = REFACTOR_LIMIT + 6;
        let a: Vec<Vec<Rat>> = (0..n)
            .map(|i| {
                let mut row = vec![Rat::zero(); n];
                row[i] = Rat::one();
                row
            })
            .collect();
        let b = vec![qint(1); n];
        let c = vec![qint(1); n];
        let (out, report) = sparse(&a, &b, &c, None, Pricing::Partial);
        let SparseOutcome::Optimal { x, value, .. } = out else {
            panic!("optimal expected");
        };
        assert_eq!(value, qint(n as i64));
        assert!(x.iter().all(|v| *v == qint(1)));
        assert_eq!(report.pivots, n as u64);
    }

    #[test]
    fn zero_dimensional_inputs() {
        let (out, _) = sparse(&[], &[], &[], None, Pricing::Partial);
        let SparseOutcome::Optimal { x, value, .. } = out else {
            panic!("optimal expected");
        };
        assert!(x.is_empty());
        assert_eq!(value, qint(0));
        let (out, _) = sparse(&[], &[], &[qint(1)], None, Pricing::Partial);
        assert!(matches!(out, SparseOutcome::Unbounded));
    }
}
