//! Global instrumentation counters for the LP engine, mirroring
//! `relational::hom::stats` and `covergame::stats` one layer down the
//! stack.
//!
//! The simplex solver ([`crate::simplex`]) counts the LPs it solves and
//! the tableau pivots they take; [`crate::separate`] counts perceptron
//! fast-path hits (separations decided without touching the tableau) and
//! conflict prunes (instances refuted by a duplicate-vector/opposite-label
//! scan before any arithmetic); the hybrid rational ([`numeric::Rat`])
//! contributes its small→big promotion counter. [`LpStats`] snapshots the
//! lot, so a caller (the CLI `--stats` flag, the bench harness) can
//! difference two snapshots around a region of interest.
//!
//! Counters are process-global atomics: cheap to bump from the parallel
//! subset-search workers and aggregated without any locking.

use std::sync::atomic::{AtomicU64, Ordering};

static LPS_SOLVED: AtomicU64 = AtomicU64::new(0);
static SIMPLEX_PIVOTS: AtomicU64 = AtomicU64::new(0);
static PERCEPTRON_HITS: AtomicU64 = AtomicU64::new(0);
static CONFLICT_PRUNES: AtomicU64 = AtomicU64::new(0);

/// Flush one LP solve's worth of pivot counts (called by the solver).
pub(crate) fn record_lp(pivots: u64) {
    LPS_SOLVED.fetch_add(1, Ordering::Relaxed);
    SIMPLEX_PIVOTS.fetch_add(pivots, Ordering::Relaxed);
}

/// Record a separation decided by the integer perceptron fast path.
pub(crate) fn record_perceptron_hit() {
    PERCEPTRON_HITS.fetch_add(1, Ordering::Relaxed);
}

/// Record an instance (or column subset) refuted by the cheap
/// duplicate-vector/opposite-label conflict scan, skipping the LP
/// entirely. Public because the dimension-bounded subset search in
/// `cqsep::sep_dim` runs the same pre-check before projecting columns.
pub fn record_conflict_prune() {
    CONFLICT_PRUNES.fetch_add(1, Ordering::Relaxed);
}

/// A point-in-time aggregate of the LP engine counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LpStats {
    /// Simplex solves run to completion (perceptron hits excluded — a
    /// fast-path hit never builds a tableau).
    pub lps_solved: u64,
    /// Tableau pivots across all solves (phase 1 + phase 2).
    pub simplex_pivots: u64,
    /// Separations decided by the integer perceptron without an LP.
    pub perceptron_hits: u64,
    /// Hybrid-rational values that overflowed the inline `i64`
    /// representation and promoted to `BigRational`.
    pub bignum_promotions: u64,
    /// Instances refuted by the duplicate-row conflict scan, skipping
    /// the LP (and, in the subset search, the projection) entirely.
    pub conflict_prunes: u64,
}

impl LpStats {
    /// Read all counters now.
    pub fn snapshot() -> LpStats {
        LpStats {
            lps_solved: LPS_SOLVED.load(Ordering::Relaxed),
            simplex_pivots: SIMPLEX_PIVOTS.load(Ordering::Relaxed),
            perceptron_hits: PERCEPTRON_HITS.load(Ordering::Relaxed),
            bignum_promotions: numeric::rat::promotion_count(),
            conflict_prunes: CONFLICT_PRUNES.load(Ordering::Relaxed),
        }
    }

    /// Counter deltas since an earlier snapshot (saturating, so a
    /// concurrent reset cannot produce bogus huge values).
    pub fn since(&self, earlier: &LpStats) -> LpStats {
        LpStats {
            lps_solved: self.lps_solved.saturating_sub(earlier.lps_solved),
            simplex_pivots: self.simplex_pivots.saturating_sub(earlier.simplex_pivots),
            perceptron_hits: self.perceptron_hits.saturating_sub(earlier.perceptron_hits),
            bignum_promotions: self
                .bignum_promotions
                .saturating_sub(earlier.bignum_promotions),
            conflict_prunes: self.conflict_prunes.saturating_sub(earlier.conflict_prunes),
        }
    }

    /// Human-readable multi-line report (used by the CLI's `--stats`).
    pub fn report(&self) -> String {
        let decided = self.lps_solved + self.perceptron_hits + self.conflict_prunes;
        let fast = self.perceptron_hits + self.conflict_prunes;
        let fast_rate = if decided == 0 {
            0.0
        } else {
            fast as f64 / decided as f64 * 100.0
        };
        format!(
            "lp engine stats:\n\
             \x20 LPs solved:          {}\n\
             \x20 simplex pivots:      {}\n\
             \x20 perceptron hits:     {}\n\
             \x20 conflict prunes:     {}\n\
             \x20 bignum promotions:   {}\n\
             \x20 fast-path rate:      {fast_rate:.1}%",
            self.lps_solved,
            self.simplex_pivots,
            self.perceptron_hits,
            self.conflict_prunes,
            self.bignum_promotions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::separate::separate;

    #[test]
    fn separations_bump_the_counters() {
        let before = LpStats::snapshot();
        // Perceptron-friendly instance: decided on the fast path.
        let vs = vec![vec![1, 1], vec![-1, -1]];
        assert!(separate(&vs, &[1, -1]).is_some());
        // Conflicting duplicate: pruned before any arithmetic.
        let dup = vec![vec![1, -1], vec![1, -1]];
        assert!(separate(&dup, &[1, -1]).is_none());
        let delta = LpStats::snapshot().since(&before);
        assert!(delta.perceptron_hits >= 1, "delta={delta:?}");
        assert!(delta.conflict_prunes >= 1, "delta={delta:?}");
    }

    #[test]
    fn report_mentions_every_counter() {
        let st = LpStats {
            lps_solved: 1,
            simplex_pivots: 2,
            perceptron_hits: 3,
            bignum_promotions: 4,
            conflict_prunes: 1,
        };
        let r = st.report();
        for needle in [
            "LPs solved",
            "pivots",
            "perceptron",
            "promotions",
            "prunes",
            "80.0%",
        ] {
            assert!(r.contains(needle), "missing {needle:?} in {r}");
        }
    }
}
