//! Global instrumentation counters for the LP engine, mirroring
//! `relational::hom::stats` and `covergame::stats` one layer down the
//! stack.
//!
//! The simplex solver ([`crate::simplex`]) counts the LPs it solves and
//! the tableau pivots they take; [`crate::separate`] counts perceptron
//! fast-path hits (separations decided without touching the tableau) and
//! conflict prunes (instances refuted by a duplicate-vector/opposite-label
//! scan before any arithmetic); the hybrid rational ([`numeric::Rat`])
//! contributes its small→big promotion counter. [`LpStats`] snapshots the
//! lot, so a caller (the CLI `--stats` flag, the bench harness) can
//! difference two snapshots around a region of interest.
//!
//! Counters are process-global atomics: cheap to bump from the parallel
//! subset-search workers and aggregated without any locking.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A free-standing set of LP-engine counters — the per-engine twin of
/// the process-global statics that used to live here. The legacy
/// [`LpStats::snapshot`] path reads the [`global_counters`] instance;
/// an isolated `Engine` owns its own instance and passes it to the
/// `_counted` entry points ([`crate::separate::separate_counted`],
/// [`crate::simplex::solve_lp_counted`] plus an explicit
/// [`LpCounters::record_lp`]).
///
/// `bignum_promotions` is *not* tracked here: the hybrid rational's
/// promotion counter lives in `numeric` and is inherently process-wide
/// (promotions happen inside arithmetic with no engine in sight), so
/// [`LpCounters::snapshot`] reports 0 for it and callers that want the
/// figure fill it in from [`numeric::rat::promotion_count`].
#[derive(Debug, Default)]
pub struct LpCounters {
    lps_solved: AtomicU64,
    simplex_pivots: AtomicU64,
    sparse_pivots: AtomicU64,
    warm_start_hits: AtomicU64,
    warm_start_misses: AtomicU64,
    /// High-water mark, not a counter: the deepest S → S ∪ {j} basis
    /// reuse chain observed (0 = every sparse LP cold-started).
    basis_reuse_depth: AtomicU64,
    perceptron_hits: AtomicU64,
    conflict_prunes: AtomicU64,
}

impl LpCounters {
    pub fn new() -> LpCounters {
        LpCounters::default()
    }

    /// Note one LP solve and the tableau pivots it took.
    pub fn record_lp(&self, pivots: u64) {
        self.lps_solved.fetch_add(1, Ordering::Relaxed);
        self.simplex_pivots.fetch_add(pivots, Ordering::Relaxed);
    }

    /// Note one LP decided by the sparse revised simplex. `warm_depth`
    /// is `Some(d)` when the solve started from a reused basis whose
    /// reuse chain is `d` links long, `None` for a cold (all-slack or
    /// rejected-warm) start.
    pub fn record_sparse_lp(&self, pivots: u64, warm_depth: Option<u64>) {
        self.lps_solved.fetch_add(1, Ordering::Relaxed);
        self.sparse_pivots.fetch_add(pivots, Ordering::Relaxed);
        match warm_depth {
            Some(d) => {
                self.warm_start_hits.fetch_add(1, Ordering::Relaxed);
                self.basis_reuse_depth.fetch_max(d, Ordering::Relaxed);
            }
            None => {
                self.warm_start_misses.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Note a separation decided by the integer perceptron fast path.
    pub fn record_perceptron_hit(&self) {
        self.perceptron_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Note an instance (or column subset) refuted by the cheap
    /// duplicate-vector/opposite-label conflict scan, skipping the LP
    /// (and, in the subset search, the projection) entirely.
    pub fn record_conflict_prune(&self) {
        self.conflict_prunes.fetch_add(1, Ordering::Relaxed);
    }

    /// These counters as an [`LpStats`] (with `bignum_promotions` 0 —
    /// see the type-level note).
    pub fn snapshot(&self) -> LpStats {
        LpStats {
            lps_solved: self.lps_solved.load(Ordering::Relaxed),
            simplex_pivots: self.simplex_pivots.load(Ordering::Relaxed),
            sparse_pivots: self.sparse_pivots.load(Ordering::Relaxed),
            warm_start_hits: self.warm_start_hits.load(Ordering::Relaxed),
            warm_start_misses: self.warm_start_misses.load(Ordering::Relaxed),
            basis_reuse_depth: self.basis_reuse_depth.load(Ordering::Relaxed),
            perceptron_hits: self.perceptron_hits.load(Ordering::Relaxed),
            bignum_promotions: 0,
            conflict_prunes: self.conflict_prunes.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter (and the reuse-depth high-water mark).
    pub fn reset(&self) {
        for c in [
            &self.lps_solved,
            &self.simplex_pivots,
            &self.sparse_pivots,
            &self.warm_start_hits,
            &self.warm_start_misses,
            &self.basis_reuse_depth,
            &self.perceptron_hits,
            &self.conflict_prunes,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }
}

static GLOBAL: OnceLock<Arc<LpCounters>> = OnceLock::new();

/// The process-wide counter set used by the legacy (engine-less) entry
/// points and `Engine::global()`.
pub fn global_counters() -> &'static LpCounters {
    GLOBAL.get_or_init(|| Arc::new(LpCounters::new()))
}

/// The global counter set as a shared handle, so an `Engine` can co-own
/// it.
pub fn global_counters_arc() -> Arc<LpCounters> {
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(LpCounters::new())))
}

/// Flush one LP solve's worth of pivot counts (called by the solver).
pub(crate) fn record_lp(pivots: u64) {
    global_counters().record_lp(pivots);
}

/// Record an instance (or column subset) refuted by the cheap
/// duplicate-vector/opposite-label conflict scan, skipping the LP
/// entirely. Public because the dimension-bounded subset search in
/// `cqsep::sep_dim` historically ran the same pre-check against the
/// global counters; engine-threaded callers use
/// [`LpCounters::record_conflict_prune`] instead.
pub fn record_conflict_prune() {
    global_counters().record_conflict_prune();
}

/// A point-in-time aggregate of the LP engine counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LpStats {
    /// Simplex solves run to completion (perceptron hits excluded — a
    /// fast-path hit never builds a tableau). Counts both dense-tableau
    /// and sparse revised-simplex solves.
    pub lps_solved: u64,
    /// Dense-tableau pivots across all dense solves (phase 1 + phase 2).
    pub simplex_pivots: u64,
    /// Revised-simplex pivots across all sparse solves — the
    /// sparse-vs-dense split of the engine's total pivot work.
    pub sparse_pivots: u64,
    /// Sparse solves that started from a reused (warm) basis.
    pub warm_start_hits: u64,
    /// Sparse solves that cold-started (no warm basis available, or the
    /// offered basis was singular/infeasible for the new instance).
    pub warm_start_misses: u64,
    /// High-water mark of the S → S ∪ {j} basis-reuse chain length (a
    /// gauge, not a counter: `since` passes it through unchanged).
    pub basis_reuse_depth: u64,
    /// Separations decided by the integer perceptron without an LP.
    pub perceptron_hits: u64,
    /// Hybrid-rational values that overflowed the inline `i64`
    /// representation and promoted to `BigRational`.
    pub bignum_promotions: u64,
    /// Instances refuted by the duplicate-row conflict scan, skipping
    /// the LP (and, in the subset search, the projection) entirely.
    pub conflict_prunes: u64,
}

impl LpStats {
    /// Read all (process-global) counters now.
    pub fn snapshot() -> LpStats {
        LpStats {
            bignum_promotions: numeric::rat::promotion_count(),
            ..global_counters().snapshot()
        }
    }

    /// Counter deltas since an earlier snapshot (saturating, so a
    /// concurrent reset cannot produce bogus huge values).
    pub fn since(&self, earlier: &LpStats) -> LpStats {
        LpStats {
            lps_solved: self.lps_solved.saturating_sub(earlier.lps_solved),
            simplex_pivots: self.simplex_pivots.saturating_sub(earlier.simplex_pivots),
            sparse_pivots: self.sparse_pivots.saturating_sub(earlier.sparse_pivots),
            warm_start_hits: self.warm_start_hits.saturating_sub(earlier.warm_start_hits),
            warm_start_misses: self
                .warm_start_misses
                .saturating_sub(earlier.warm_start_misses),
            // A gauge, not a counter: the later high-water mark already
            // covers the interval, so pass it through unsubtracted.
            basis_reuse_depth: self.basis_reuse_depth,
            perceptron_hits: self.perceptron_hits.saturating_sub(earlier.perceptron_hits),
            bignum_promotions: self
                .bignum_promotions
                .saturating_sub(earlier.bignum_promotions),
            conflict_prunes: self.conflict_prunes.saturating_sub(earlier.conflict_prunes),
        }
    }

    /// Human-readable multi-line report (used by the CLI's `--stats`).
    pub fn report(&self) -> String {
        let decided = self.lps_solved + self.perceptron_hits + self.conflict_prunes;
        let fast = self.perceptron_hits + self.conflict_prunes;
        let fast_rate = if decided == 0 {
            0.0
        } else {
            fast as f64 / decided as f64 * 100.0
        };
        format!(
            "lp engine stats:\n\
             \x20 LPs solved:          {}\n\
             \x20 simplex pivots:      {}\n\
             \x20 sparse pivots:       {}\n\
             \x20 warm-start hits:     {}\n\
             \x20 warm-start misses:   {}\n\
             \x20 basis reuse depth:   {}\n\
             \x20 perceptron hits:     {}\n\
             \x20 conflict prunes:     {}\n\
             \x20 bignum promotions:   {}\n\
             \x20 fast-path rate:      {fast_rate:.1}%",
            self.lps_solved,
            self.simplex_pivots,
            self.sparse_pivots,
            self.warm_start_hits,
            self.warm_start_misses,
            self.basis_reuse_depth,
            self.perceptron_hits,
            self.conflict_prunes,
            self.bignum_promotions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::separate::separate;

    #[test]
    fn separations_bump_the_counters() {
        let before = LpStats::snapshot();
        // Perceptron-friendly instance: decided on the fast path.
        let vs = vec![vec![1, 1], vec![-1, -1]];
        assert!(separate(&vs, &[1, -1]).is_some());
        // Conflicting duplicate: pruned before any arithmetic.
        let dup = vec![vec![1, -1], vec![1, -1]];
        assert!(separate(&dup, &[1, -1]).is_none());
        let delta = LpStats::snapshot().since(&before);
        assert!(delta.perceptron_hits >= 1, "delta={delta:?}");
        assert!(delta.conflict_prunes >= 1, "delta={delta:?}");
    }

    #[test]
    fn report_mentions_every_counter() {
        let st = LpStats {
            lps_solved: 1,
            simplex_pivots: 2,
            sparse_pivots: 5,
            warm_start_hits: 6,
            warm_start_misses: 7,
            basis_reuse_depth: 2,
            perceptron_hits: 3,
            bignum_promotions: 4,
            conflict_prunes: 1,
        };
        let r = st.report();
        for needle in [
            "LPs solved",
            "simplex pivots",
            "sparse pivots",
            "warm-start hits",
            "warm-start misses",
            "basis reuse depth",
            "perceptron",
            "promotions",
            "prunes",
            "80.0%",
        ] {
            assert!(r.contains(needle), "missing {needle:?} in {r}");
        }
    }

    #[test]
    fn since_passes_reuse_depth_through_and_subtracts_counters() {
        let earlier = LpStats {
            lps_solved: 10,
            sparse_pivots: 4,
            warm_start_hits: 2,
            basis_reuse_depth: 3,
            ..LpStats::default()
        };
        let later = LpStats {
            lps_solved: 15,
            sparse_pivots: 9,
            warm_start_hits: 5,
            basis_reuse_depth: 3,
            ..LpStats::default()
        };
        let delta = later.since(&earlier);
        assert_eq!(delta.lps_solved, 5);
        assert_eq!(delta.sparse_pivots, 5);
        assert_eq!(delta.warm_start_hits, 3);
        // Gauge semantics: the high-water mark is not differenced.
        assert_eq!(delta.basis_reuse_depth, 3);
    }
}
