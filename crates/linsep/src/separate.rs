//! Strict linear separation of labeled ±1 vectors.
//!
//! A training collection `(b̄_i, y_i)` is linearly separable iff there are
//! weights with `y_i (w·b̄_i − w_0) > 0` for all `i`; by scaling this is
//! equivalent to `y_i (w·b̄_i − w_0) ≥ 1` with `|w_j|, |w_0| ≤ M` for a
//! suitable `M`, which is a bounded LP feasibility problem — polynomial
//! time in principle ([19, 21] in the paper), solved here exactly by the
//! rational simplex.
//!
//! A margin subtlety: the classifier convention is `Λ(b̄) = 1 ⇔ score ≥
//! w_0`, so positives need `w·b̄ ≥ w_0` and negatives need `w·b̄ < w_0`;
//! maximizing a symmetric margin `t` and checking `t > 0` handles both
//! strictness and the boundary convention.
//!
//! Decisions cascade through three tiers, cheapest first, each reported
//! to [`crate::stats`]:
//!
//! 1. **Conflict scan** — identical vectors with opposite labels make
//!    separation impossible; one `O(rows·n)` hash pass refutes such
//!    instances before any arithmetic.
//! 2. **Integer perceptron** — converges immediately on the easy
//!    instances the enumeration algorithms mostly generate.
//! 3. **Exact LP** — the maximum-margin simplex solve, now over hybrid
//!    [`Rat`] arithmetic.

use crate::classifier::LinearClassifier;
use crate::revised::{solve_lp_sparse, SparseBasis, SparseOutcome, Warm};
use crate::simplex::{solve_lp_counted, solve_lp_counted_int, LpOutcome};
use crate::stats::{global_counters, LpCounters};
use interrupt::{Interrupt, Stop};
use numeric::{qint, Rat};
use std::collections::HashMap;

/// Which LP engine decides the margin LP.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LpBackend {
    /// Sparse revised simplex with warm-start support (the default);
    /// falls back to the dense tableau on the—here impossible—negative
    /// RHS case.
    #[default]
    SparseWarm,
    /// The PR-3 dense in-place tableau, always cold. Kept selectable so
    /// benches can compare engines on identical workloads.
    DenseCold,
}

/// Instance-independent identity of one margin-LP variable, so a basis
/// can be carried from subset `S` to `S ∪ {j}` (or to a same-arity
/// sibling) by *meaning* rather than by raw column index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarTag {
    /// `u_{p+1} = w_{p+1} + 1` — the weight of projected column `p`.
    Weight(usize),
    /// `u_0 = w_0 + 1` — the threshold.
    Threshold,
    /// `t' = t + (n + 2)` — the margin.
    Margin,
    /// Slack of example row `i`.
    ExampleSlack(usize),
    /// Slack of the `u_{p+1} ≤ 2` box row.
    WeightBox(usize),
    /// Slack of the `u_0 ≤ 2` box row.
    ThresholdBox,
    /// Slack of the `t' ≤ n + 3` box row.
    MarginBox,
}

/// A margin-LP basis annotated with enough structure to warm-start a
/// related instance: variable tags, the arity/row shape it came from,
/// and how long its reuse chain already is.
#[derive(Clone, Debug)]
pub struct SepBasis {
    tags: Vec<VarTag>,
    arity: usize,
    nrows: usize,
    depth: u64,
    sparse: SparseBasis,
}

impl SepBasis {
    fn tag_of(arity: usize, nrows: usize, var: usize) -> VarTag {
        let nvars = arity + 2;
        if var < nvars {
            match var {
                p if p < arity => VarTag::Weight(p),
                p if p == arity => VarTag::Threshold,
                _ => VarTag::Margin,
            }
        } else {
            let s = var - nvars;
            match s {
                i if i < nrows => VarTag::ExampleSlack(i),
                i if i - nrows < arity => VarTag::WeightBox(i - nrows),
                i if i - nrows == arity => VarTag::ThresholdBox,
                _ => VarTag::MarginBox,
            }
        }
    }

    fn index_of(arity: usize, nrows: usize, tag: VarTag) -> Option<usize> {
        let nvars = arity + 2;
        Some(match tag {
            VarTag::Weight(p) => (p < arity).then_some(p)?,
            VarTag::Threshold => arity,
            VarTag::Margin => arity + 1,
            VarTag::ExampleSlack(i) => (i < nrows).then_some(nvars + i)?,
            VarTag::WeightBox(p) => (p < arity).then_some(nvars + nrows + p)?,
            VarTag::ThresholdBox => nvars + nrows + arity,
            VarTag::MarginBox => nvars + nrows + arity + 1,
        })
    }

    fn from_sparse(arity: usize, nrows: usize, depth: u64, sparse: SparseBasis) -> SepBasis {
        let tags = sparse
            .vars()
            .iter()
            .map(|&v| SepBasis::tag_of(arity, nrows, v))
            .collect();
        SepBasis {
            tags,
            arity,
            nrows,
            depth,
            sparse,
        }
    }

    /// How many consecutive warm reuses this basis sits on top of.
    pub fn depth(&self) -> u64 {
        self.depth
    }

    /// Would [`SepBasis::offer`] to a same-shape instance clone the whole
    /// factorization (the near-free [`Warm::Reuse`] path)? True iff the
    /// shapes match and the basis excludes the dirty variable
    /// `Weight(arity − 1)`, the only column whose data differs between
    /// lexicographic siblings `prefix + [j]`. Callers holding several
    /// candidate bases use this to prefer the cheap one.
    pub fn reuses_cleanly(&self, arity: usize, nrows: usize) -> bool {
        self.arity == arity
            && self.nrows == nrows
            && arity > 0
            && !self.tags.contains(&VarTag::Weight(arity - 1))
    }

    /// Translate this basis into a [`Warm`] offer for an instance of
    /// shape `(arity, nrows)`, or `None` when the shapes are unrelated.
    ///
    /// * Same shape, basis free of the *dirty* variable `Weight(arity-1)`
    ///   (whose projected column is the only data differing between
    ///   lexicographic siblings `prefix + [j]`): the whole factorization
    ///   is cloned — [`Warm::Reuse`], near-zero restart cost.
    /// * Same shape but dirty, or a parent one arity smaller: remap the
    ///   tags to the target's indices (appending the new box row's slack
    ///   for a parent) and refactorize — [`Warm::Basis`].
    fn offer(&self, arity: usize, nrows: usize) -> Option<Warm<'_>> {
        if self.nrows != nrows {
            return None;
        }
        if self.arity == arity {
            let dirty = VarTag::Weight(arity.checked_sub(1)?);
            if !self.tags.contains(&dirty) {
                return Some(Warm::Reuse(&self.sparse));
            }
        } else if self.arity + 1 != arity {
            return None;
        }
        let mut vars: Vec<usize> = self
            .tags
            .iter()
            .map(|&t| SepBasis::index_of(arity, nrows, t))
            .collect::<Option<_>>()?;
        if self.arity + 1 == arity {
            // The child has one extra constraint row (the new weight's
            // box); its slack completes the basis and is trivially
            // feasible at value 2.
            vars.push(SepBasis::index_of(
                arity,
                nrows,
                VarTag::WeightBox(arity - 1),
            )?);
        }
        Some(Warm::Basis(vars))
    }
}

/// Outcome of a warm-capable separation: the verdict (as elsewhere:
/// `Some` with the classifier and its positive margin iff separable) plus
/// the final LP basis when an LP actually ran — reusable to warm-start a
/// related instance. Conflict prunes, perceptron hits, and dense-backend
/// solves carry no basis.
#[derive(Clone, Debug)]
pub struct SepOutcome {
    pub result: Option<(LinearClassifier, Rat)>,
    pub basis: Option<SepBasis>,
}

/// Find a linear classifier separating the examples, or `None` if they
/// are not linearly separable. Exact. Counts against the process-global
/// [`crate::stats`] counters; engine-threaded callers use
/// [`separate_counted`].
pub fn separate(vectors: &[Vec<i32>], labels: &[i32]) -> Option<LinearClassifier> {
    separate_with_margin(vectors, labels).map(|(c, _)| c)
}

/// As [`separate`], recording the decision (conflict prune, perceptron
/// hit, or LP solve + pivots) into a caller-supplied counter set instead
/// of the process-global one.
pub fn separate_counted(
    counters: &LpCounters,
    vectors: &[Vec<i32>],
    labels: &[i32],
) -> Option<LinearClassifier> {
    separate_with_margin_counted(counters, vectors, labels).map(|(c, _)| c)
}

/// Interruptible [`separate_counted`]: the conflict scan runs to
/// completion (one cheap pass), the perceptron observes `intr` per epoch,
/// and the margin LP observes it per pivot. Effort spent before the stop
/// is still recorded into `counters`.
pub fn separate_counted_int(
    counters: &LpCounters,
    vectors: &[Vec<i32>],
    labels: &[i32],
    intr: &Interrupt,
) -> Result<Option<LinearClassifier>, Stop> {
    Ok(separate_with_margin_counted_int(counters, vectors, labels, intr)?.map(|(c, _)| c))
}

/// Do identical vectors appear with opposite labels? If so no classifier
/// (linear or otherwise) can separate, and the LP is pointless. Shared
/// with the subset search in `cqsep`, which runs the same scan on
/// projected rows before assembling an LP per candidate feature set.
pub fn has_label_conflict(vectors: &[Vec<i32>], labels: &[i32]) -> bool {
    let mut seen: HashMap<&[i32], i32> = HashMap::with_capacity(vectors.len());
    for (v, &y) in vectors.iter().zip(labels.iter()) {
        match seen.insert(v.as_slice(), y) {
            Some(prev) if prev != y => return true,
            _ => {}
        }
    }
    false
}

/// As [`separate`], also returning the optimal margin achieved under the
/// normalization `|w_j| ≤ 1, |w_0| ≤ 1`. The margin is positive iff the
/// collection is separable.
pub fn separate_with_margin(
    vectors: &[Vec<i32>],
    labels: &[i32],
) -> Option<(LinearClassifier, Rat)> {
    separate_with_margin_counted(global_counters(), vectors, labels)
}

/// As [`separate_with_margin`], recording into a caller-supplied counter
/// set instead of the process-global one.
pub fn separate_with_margin_counted(
    counters: &LpCounters,
    vectors: &[Vec<i32>],
    labels: &[i32],
) -> Option<(LinearClassifier, Rat)> {
    separate_margin_inner(counters, vectors, labels, None)
        .expect("uninterruptible separation cannot stop")
}

/// Interruptible [`separate_with_margin_counted`].
pub fn separate_with_margin_counted_int(
    counters: &LpCounters,
    vectors: &[Vec<i32>],
    labels: &[i32],
    intr: &Interrupt,
) -> Result<Option<(LinearClassifier, Rat)>, Stop> {
    separate_margin_inner(counters, vectors, labels, Some(intr))
}

/// The warm-capable separation entry point: as
/// [`separate_with_margin_counted_int`] but accepting a basis from a
/// related instance to warm-start the LP (see [`SepBasis::offer`] for
/// which shapes qualify) and an explicit backend, and returning the final
/// basis alongside the verdict. The verdict is backend- and
/// warm-independent — a rejected or absent warm offer only costs pivots.
pub fn separate_warm_counted_int(
    counters: &LpCounters,
    vectors: &[Vec<i32>],
    labels: &[i32],
    warm: Option<&SepBasis>,
    backend: LpBackend,
    intr: &Interrupt,
) -> Result<SepOutcome, Stop> {
    separate_warm_inner(counters, vectors, labels, warm, backend, Some(intr))
}

fn separate_margin_inner(
    counters: &LpCounters,
    vectors: &[Vec<i32>],
    labels: &[i32],
    intr: Option<&Interrupt>,
) -> Result<Option<(LinearClassifier, Rat)>, Stop> {
    Ok(separate_warm_inner(counters, vectors, labels, None, LpBackend::default(), intr)?.result)
}

fn separate_warm_inner(
    counters: &LpCounters,
    vectors: &[Vec<i32>],
    labels: &[i32],
    warm: Option<&SepBasis>,
    backend: LpBackend,
    intr: Option<&Interrupt>,
) -> Result<SepOutcome, Stop> {
    assert_eq!(vectors.len(), labels.len(), "one label per vector");
    if let Some(h) = intr {
        h.check()?;
    }
    if vectors.is_empty() {
        return Ok(SepOutcome {
            result: Some((LinearClassifier::new(qint(0), Vec::new()), qint(1))),
            basis: None,
        });
    }
    let n = vectors[0].len();
    for v in vectors {
        assert_eq!(v.len(), n, "uniform vector arity required");
        assert!(v.iter().all(|&x| x == 1 || x == -1), "features must be ±1");
    }
    assert!(
        labels.iter().all(|&y| y == 1 || y == -1),
        "labels must be ±1"
    );

    // Tier 1: refute duplicate-vector conflicts without any arithmetic.
    if has_label_conflict(vectors, labels) {
        counters.record_conflict_prune();
        return Ok(SepOutcome {
            result: None,
            basis: None,
        });
    }

    // Tier 2: the integer perceptron usually converges immediately on
    // the easy instances the enumeration algorithms generate. It exists
    // to dodge *cold* LP solves, and its value is asymmetric: a hit
    // costs a few integer epochs, but a miss burns the whole update
    // budget before the LP runs anyway. With a warm basis on offer the
    // LP is expected to be nearly pivot-free — cheaper than even a
    // perceptron hit — so the heuristic tier is skipped entirely. (This
    // means which tier decides a subset, and hence `lps_solved`, can
    // depend on the backend and warm offer; verdicts never do.)
    let warm_offered = backend == LpBackend::SparseWarm && warm.is_some();
    let heuristic = if warm_offered {
        None
    } else {
        perceptron(vectors, labels, 200 * (n + 1) * (vectors.len() + 1), intr)?
    };
    if let Some(c) = heuristic {
        debug_assert!(c.separates(
            vectors
                .iter()
                .map(|v| v.as_slice())
                .zip(labels.iter().copied())
        ));
        counters.record_perceptron_hit();
        let margin = margin_of(&c_normalized(&c), vectors, labels);
        return Ok(SepOutcome {
            result: Some((c, margin)),
            basis: None,
        });
    }

    // Tier 3, exact LP: variables u_j = w_j + 1 ∈ [0, 2] (j = 1..n),
    // u_0 = w_0 + 1, and the margin t' = t + (n + 2) ≥ 0 (t ≥ -(n+1) - 1
    // always holds under the box bounds). Maximize t.
    //
    // Constraints per example (with s_i = y_i):
    //   s_i (w·b_i − w_0) ≥ t
    //   ⇔ −s_i Σ b_ij w_j + s_i w_0 + t ≤ 0
    //   substitute w_j = u_j − 1, w_0 = u_0 − 1, t = t' − (n + 2):
    //   −s_i Σ b_ij u_j + s_i u_0 + t' ≤ (n + 2) − s_i (1 − Σ b_ij)
    // Box: u_j ≤ 2, u_0 ≤ 2, t' ≤ (n + 2) + 1.
    let nvars = n + 2; // u_1..u_n, u_0, t'
    let mut a: Vec<Vec<Rat>> = Vec::new();
    let mut b: Vec<Rat> = Vec::new();
    for (v, &y) in vectors.iter().zip(labels.iter()) {
        let s = y as i64;
        let mut row = vec![Rat::zero(); nvars];
        let mut sum_b = 0i64;
        for (j, &bij) in v.iter().enumerate() {
            row[j] = qint(-s * bij as i64);
            sum_b += bij as i64;
        }
        row[n] = qint(s);
        row[n + 1] = qint(1);
        let rhs = qint(n as i64 + 2 - s * (1 - sum_b));
        a.push(row);
        b.push(rhs);
    }
    for j in 0..=n {
        let mut row = vec![Rat::zero(); nvars];
        row[j] = qint(1);
        a.push(row);
        b.push(qint(2));
    }
    {
        let mut row = vec![Rat::zero(); nvars];
        row[n + 1] = qint(1);
        a.push(row);
        b.push(qint(n as i64 + 3));
    }
    let mut c = vec![Rat::zero(); nvars];
    c[n + 1] = qint(1);

    if backend == LpBackend::SparseWarm {
        // The margin LP always has b ≥ 1, so the single-phase sparse
        // solver applies unconditionally; a warm offer comes from a
        // related subset's final basis and can only save pivots, never
        // change the verdict (rejected offers cold-start).
        let offer = warm.and_then(|sb| sb.offer(n, vectors.len()));
        let depth = warm.map_or(0, |sb| sb.depth + 1);
        if let Some((res, report)) = solve_lp_sparse(&a, &b, &c, offer, intr) {
            // Record effort whether or not the solve completed: partial
            // effort is still attributable effort.
            counters.record_sparse_lp(report.pivots, report.warm_used.then_some(depth));
            return match res? {
                SparseOutcome::Optimal { x, value, basis } => {
                    let chain = if report.warm_used { depth } else { 0 };
                    let sep = SepBasis::from_sparse(n, vectors.len(), chain, basis);
                    Ok(margin_outcome(n, vectors, labels, &x, value, Some(sep)))
                }
                SparseOutcome::Unbounded => unreachable!("margin LP is box-bounded"),
            };
        }
        // b ≥ 1 makes the decline branch unreachable for this LP family,
        // but keep the dense fallback real rather than asserting.
    }
    let (outcome, pivots) = match intr {
        None => {
            let (out, pivots) = solve_lp_counted(&a, &b, &c);
            (Ok(out), pivots)
        }
        Some(h) => solve_lp_counted_int(&a, &b, &c, h),
    };
    // Record the pivots whether or not the solve completed: partial
    // effort is still attributable effort.
    counters.record_lp(pivots);
    match outcome? {
        LpOutcome::Optimal { x, value } => Ok(margin_outcome(n, vectors, labels, &x, value, None)),
        // The LP is a bounded feasibility problem with an always-feasible
        // box (e.g. all-zero weights, t = -(n+2) ⇒ t' = 0).
        other => unreachable!("margin LP cannot be {other:?}"),
    }
}

/// Turn the margin LP's optimal point into the separation verdict:
/// `t = value − (n+2) > 0` iff separable, with the classifier read off
/// the shifted variables. The final basis rides along regardless of the
/// verdict — an inseparable subset's basis still warm-starts its
/// successors.
fn margin_outcome(
    n: usize,
    vectors: &[Vec<i32>],
    labels: &[i32],
    x: &[Rat],
    value: Rat,
    basis: Option<SepBasis>,
) -> SepOutcome {
    let t = value - qint(n as i64 + 2);
    if !t.is_positive() {
        return SepOutcome {
            result: None,
            basis,
        };
    }
    let weights: Vec<Rat> = (0..n).map(|j| &x[j] - &qint(1)).collect();
    let threshold = &x[n] - &qint(1);
    let c = LinearClassifier::new(threshold, weights);
    debug_assert!(c.separates(
        vectors
            .iter()
            .map(|v| v.as_slice())
            .zip(labels.iter().copied())
    ));
    SepOutcome {
        result: Some((c, t)),
        basis,
    }
}

/// Integer perceptron with an iteration cap; `Ok(None)` means "gave up",
/// not "inseparable". The boundary convention (`≥` ⇒ positive) is
/// enforced by training with a strict margin of 1 on both sides.
/// Observes `intr` once per epoch (a full pass over the examples).
fn perceptron(
    vectors: &[Vec<i32>],
    labels: &[i32],
    max_updates: usize,
    intr: Option<&Interrupt>,
) -> Result<Option<LinearClassifier>, Stop> {
    let n = vectors[0].len();
    let mut w = vec![0i64; n];
    let mut w0 = 0i64;
    let mut updates = 0usize;
    loop {
        if let Some(h) = intr {
            h.check()?;
        }
        let mut clean = true;
        for (v, &y) in vectors.iter().zip(labels.iter()) {
            let score: i64 = w
                .iter()
                .zip(v.iter())
                .map(|(&wj, &bj)| wj * bj as i64)
                .sum();
            // Demand a margin of 1 so the ≥-boundary is classified right.
            let ok = if y == 1 {
                score - w0 >= 1
            } else {
                score - w0 <= -1
            };
            if !ok {
                clean = false;
                for (wj, &bj) in w.iter_mut().zip(v.iter()) {
                    *wj += y as i64 * bj as i64;
                }
                w0 -= y as i64;
                updates += 1;
                if updates >= max_updates {
                    return Ok(None);
                }
                // Overflow guard: bail to the LP long before i64 limits.
                if w.iter().any(|&x| x.abs() > (1 << 40)) || w0.abs() > (1 << 40) {
                    return Ok(None);
                }
            }
        }
        if clean {
            return Ok(Some(LinearClassifier::new(
                qint(w0),
                w.iter().map(|&x| qint(x)).collect(),
            )));
        }
    }
}

/// Normalize a classifier to the `max(|w|, |w_0|) ≤ 1` box for a
/// comparable margin report.
fn c_normalized(c: &LinearClassifier) -> LinearClassifier {
    let mut m = c.threshold.abs();
    for w in &c.weights {
        let a = w.abs();
        if a > m {
            m = a;
        }
    }
    if m.is_zero() {
        return c.clone();
    }
    LinearClassifier::new(
        &c.threshold / &m,
        c.weights.iter().map(|w| w / &m).collect(),
    )
}

fn margin_of(c: &LinearClassifier, vectors: &[Vec<i32>], labels: &[i32]) -> Rat {
    let mut best: Option<Rat> = None;
    for (v, &y) in vectors.iter().zip(labels.iter()) {
        let m = &(&c.score(v) - &c.threshold) * &qint(y as i64);
        if best.as_ref().is_none_or(|b| m < *b) {
            best = Some(m);
        }
    }
    best.unwrap_or_else(|| qint(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(vectors: &[Vec<i32>], labels: &[i32], expect: bool) {
        match separate(vectors, labels) {
            Some(c) => {
                assert!(expect, "unexpected separation by {c}");
                assert!(c.separates(
                    vectors
                        .iter()
                        .map(|v| v.as_slice())
                        .zip(labels.iter().copied())
                ));
            }
            None => assert!(!expect, "expected separable"),
        }
    }

    #[test]
    fn and_function_is_separable() {
        let vectors = vec![vec![1, 1], vec![1, -1], vec![-1, 1], vec![-1, -1]];
        check(&vectors, &[1, -1, -1, -1], true);
        check(&vectors, &[1, 1, 1, -1], true); // OR
        check(&vectors, &[-1, 1, 1, -1], false); // XOR
        check(&vectors, &[1, -1, -1, 1], false); // XNOR
    }

    #[test]
    fn contradictory_duplicate_is_inseparable() {
        let vectors = vec![vec![1, -1], vec![1, -1]];
        check(&vectors, &[1, -1], false);
        check(&vectors, &[1, 1], true);
    }

    #[test]
    fn conflict_scan_matches_separability_on_duplicates() {
        assert!(has_label_conflict(
            &[vec![1, -1], vec![1, 1], vec![1, -1]],
            &[1, 1, -1]
        ));
        assert!(!has_label_conflict(
            &[vec![1, -1], vec![1, 1], vec![1, -1]],
            &[1, 1, 1]
        ));
        // Zero-arity rows are all identical: conflict iff labels differ.
        assert!(has_label_conflict(&[vec![], vec![]], &[1, -1]));
        assert!(!has_label_conflict(&[vec![], vec![]], &[-1, -1]));
    }

    #[test]
    fn single_class_always_separable() {
        let vectors = vec![vec![1, 1], vec![-1, -1], vec![1, -1]];
        check(&vectors, &[1, 1, 1], true);
        check(&vectors, &[-1, -1, -1], true);
    }

    #[test]
    fn empty_and_zero_arity() {
        assert!(separate(&[], &[]).is_some());
        // Zero-dimensional vectors: separable iff labels are uniform.
        check(&[vec![], vec![]], &[1, 1], true);
        check(&[vec![], vec![]], &[1, -1], false);
    }

    #[test]
    fn boundary_convention_respected() {
        // A classifier must put score == threshold on the positive side;
        // construct a case where the only separator is tight-ish and
        // verify via classify().
        let vectors = vec![vec![1], vec![-1]];
        let c = separate(&vectors, &[1, -1]).unwrap();
        assert_eq!(c.classify(&[1]), 1);
        assert_eq!(c.classify(&[-1]), -1);
    }

    #[test]
    fn forces_lp_path_on_hard_margin() {
        // Random-ish hard instance in 6 dims, labels from a sparse true
        // separator with tiny margin; perceptron may or may not converge
        // within its cap — the answer must be "separable" either way.
        let dims = 6;
        let mut vectors = Vec::new();
        let mut labels = Vec::new();
        let mut x = 1u64;
        for _ in 0..40 {
            let mut v = Vec::with_capacity(dims);
            for _ in 0..dims {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                v.push(if (x >> 33) & 1 == 1 { 1 } else { -1 });
            }
            // True separator: w = (3, -1, 1, 1, -1, 1), w0 = 0 tie -> +.
            let score: i32 = 3 * v[0] - v[1] + v[2] + v[3] - v[4] + v[5];
            labels.push(if score >= 0 { 1 } else { -1 });
            vectors.push(v);
        }
        check(&vectors, &labels, true);
    }

    #[test]
    fn margin_positive_iff_separable() {
        let vectors = vec![vec![1, 1], vec![-1, -1]];
        let (_, m) = separate_with_margin(&vectors, &[1, -1]).unwrap();
        assert!(m.is_positive());
        assert!(separate_with_margin(&[vec![1, -1], vec![1, -1]], &[1, -1]).is_none());
    }
}
