//! Exact linear separability — the classifier side of the framework.
//!
//! Every separability algorithm in Barceló et al. (PODS 2019) bottoms out
//! in the question "is this training collection of ±1 vectors linearly
//! separable, and if so, produce `Λ_w̄`?" (§2). Proposition 4.1 solves it
//! through linear programming; §7 additionally needs the *approximate*
//! version — minimize misclassifications — which is NP-complete
//! (Höffgen–Simon–Van Horn [17]).
//!
//! Modules:
//!
//! * [`simplex`] — the fast two-phase primal simplex over hybrid
//!   [`numeric::Rat`] rationals with Bland's anti-cycling rule, in-place
//!   unnormalized pivoting, and per-row integer rescaling. The paper
//!   cites Karmarkar/Khachiyan for polynomial-time LP; simplex is the
//!   faithful exact-arithmetic substitute (see DESIGN.md §4).
//! * [`simplex_big`] — the original all-[`numeric::BigRational`] solver,
//!   kept as a reference oracle for agreement tests and benchmarks.
//! * [`separate`] — strict separation via a maximum-margin feasibility LP,
//!   with a duplicate-conflict scan and an integer perceptron fast path
//!   ahead of it.
//! * [`classifier`] — the [`LinearClassifier`] type `Λ_w̄`.
//! * [`minerror`] — exact minimum-error linear classification by
//!   branch-and-bound over vector-type assignments, plus the greedy
//!   majority upper bound; powers the `CQ[m]`-ApxSep algorithms (§7.2).
//! * [`stats`] — process-global LP engine counters ([`LpStats`]): LPs
//!   solved, simplex pivots, perceptron hits, conflict prunes, and
//!   big-number promotions.

pub mod classifier;
pub mod minerror;
pub mod revised;
pub mod separate;
pub mod simplex;
pub mod simplex_big;
pub mod stats;

pub use classifier::LinearClassifier;
pub use minerror::{
    min_error_classifier, min_error_classifier_counted, min_error_classifier_counted_int,
    MinErrorResult,
};
pub use revised::{
    solve_lp_sparse, solve_lp_sparse_with_pricing, Pricing, SparseBasis, SparseOutcome,
    SparseReport, Warm,
};
pub use separate::{
    has_label_conflict, separate, separate_counted, separate_counted_int,
    separate_warm_counted_int, separate_with_margin, separate_with_margin_counted,
    separate_with_margin_counted_int, LpBackend, SepBasis, SepOutcome, VarTag,
};
pub use simplex::{solve_lp, solve_lp_counted, solve_lp_counted_int, LpOutcome};
pub use simplex_big::{solve_lp_big, LpOutcomeBig};
pub use stats::{LpCounters, LpStats};
