//! Exact linear separability — the classifier side of the framework.
//!
//! Every separability algorithm in Barceló et al. (PODS 2019) bottoms out
//! in the question "is this training collection of ±1 vectors linearly
//! separable, and if so, produce `Λ_w̄`?" (§2). Proposition 4.1 solves it
//! through linear programming; §7 additionally needs the *approximate*
//! version — minimize misclassifications — which is NP-complete
//! (Höffgen–Simon–Van Horn [17]).
//!
//! Modules:
//!
//! * [`simplex`] — a two-phase primal simplex over exact rationals
//!   ([`numeric::BigRational`]) with Bland's anti-cycling rule. The paper
//!   cites Karmarkar/Khachiyan for polynomial-time LP; simplex is the
//!   faithful exact-arithmetic substitute (see DESIGN.md §4).
//! * [`separate`] — strict separation via a maximum-margin feasibility LP,
//!   with an integer perceptron fast path for the (common) easy cases.
//! * [`classifier`] — the [`LinearClassifier`] type `Λ_w̄`.
//! * [`minerror`] — exact minimum-error linear classification by
//!   branch-and-bound over vector-type assignments, plus the greedy
//!   majority upper bound; powers the `CQ[m]`-ApxSep algorithms (§7.2).

pub mod classifier;
pub mod minerror;
pub mod separate;
pub mod simplex;

pub use classifier::LinearClassifier;
pub use minerror::{min_error_classifier, MinErrorResult};
pub use separate::{separate, separate_with_margin};
pub use simplex::{solve_lp, LpOutcome};
