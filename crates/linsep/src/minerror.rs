//! Exact minimum-error linear classification (approximate separability).
//!
//! §7 of the paper allows an ε fraction of misclassified examples;
//! deciding whether a linear classifier with at most `ε·n` errors exists
//! is NP-complete ([17]). The FPT algorithms of Propositions 7.2/7.3 work
//! because the feature dimension is bounded by a function of the schema:
//! with `d` features there are at most `2^d` distinct vectors ("types"),
//! every classifier acts on types, and one can search the type-label
//! assignments.
//!
//! This module implements that search exactly: group examples by vector,
//! branch-and-bound over `{±1}` assignments to types (cost of assigning a
//! type to a side = examples of the other side in it), pruning with (a)
//! the sum of per-type minimum costs and (b) LP separability of the
//! partial assignment. The greedy majority assignment provides the
//! initial upper bound — when it happens to be separable it is optimal.

use crate::classifier::LinearClassifier;
use crate::separate::{separate_counted, separate_counted_int};
use crate::stats::{global_counters, LpCounters};
use interrupt::{Interrupt, Stop};
use std::collections::HashMap;

/// Result of [`min_error_classifier`].
#[derive(Clone, Debug)]
pub struct MinErrorResult {
    /// A classifier achieving the minimum number of errors.
    pub classifier: LinearClassifier,
    /// The minimum number of misclassified examples.
    pub errors: usize,
    /// The relabeling realized by the classifier, aligned with the input
    /// examples.
    pub labels: Vec<i32>,
}

/// Compute an error-minimizing linear classifier for labeled ±1 vectors.
///
/// Exact; worst-case exponential in the number of *distinct* vectors
/// (inherently so — the problem is NP-complete), which is what makes the
/// paper's FPT claims work when the dimension is schema-bounded.
pub fn min_error_classifier(vectors: &[Vec<i32>], labels: &[i32]) -> MinErrorResult {
    min_error_classifier_counted(global_counters(), vectors, labels)
}

/// As [`min_error_classifier`], recording every internal LP decision into
/// a caller-supplied counter set instead of the process-global one.
pub fn min_error_classifier_counted(
    counters: &LpCounters,
    vectors: &[Vec<i32>],
    labels: &[i32],
) -> MinErrorResult {
    min_error_inner(counters, vectors, labels, None)
        .expect("uninterruptible min-error search cannot stop")
}

/// Interruptible [`min_error_classifier_counted`]: the branch-and-bound
/// observes `intr` at every search node and inside every pruning LP. The
/// partial incumbent is discarded on [`Stop`] (a truncated search cannot
/// certify minimality).
pub fn min_error_classifier_counted_int(
    counters: &LpCounters,
    vectors: &[Vec<i32>],
    labels: &[i32],
    intr: &Interrupt,
) -> Result<MinErrorResult, Stop> {
    min_error_inner(counters, vectors, labels, Some(intr))
}

fn min_error_inner(
    counters: &LpCounters,
    vectors: &[Vec<i32>],
    labels: &[i32],
    intr: Option<&Interrupt>,
) -> Result<MinErrorResult, Stop> {
    assert_eq!(vectors.len(), labels.len());
    if let Some(h) = intr {
        h.check()?;
    }
    if vectors.is_empty() {
        return Ok(MinErrorResult {
            classifier: LinearClassifier::new(numeric::qint(0), Vec::new()),
            errors: 0,
            labels: Vec::new(),
        });
    }

    // Group into types.
    let mut type_of: HashMap<&[i32], usize> = HashMap::new();
    let mut types: Vec<&[i32]> = Vec::new();
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for (v, &y) in vectors.iter().zip(labels.iter()) {
        let t = *type_of.entry(v.as_slice()).or_insert_with(|| {
            types.push(v.as_slice());
            pos.push(0usize);
            neg.push(0usize);
            types.len() - 1
        });
        if y == 1 {
            pos[t] += 1;
        } else {
            neg[t] += 1;
        }
    }
    let ntypes = types.len();

    // Cost of assigning type t to +1 is neg[t]; to -1 is pos[t].
    // Branch on types in descending |pos - neg| so strong majorities are
    // fixed early and the bound tightens fast.
    let mut order: Vec<usize> = (0..ntypes).collect();
    order.sort_by_key(|&t| std::cmp::Reverse(pos[t].abs_diff(neg[t])));

    // Initial upper bound: the greedy majority assignment if separable,
    // else the trivial all-(majority-class) classifier.
    let total_pos: usize = pos.iter().sum();
    let total_neg: usize = neg.iter().sum();
    let mut best_cost = total_pos.min(total_neg);
    let mut best_assign: Vec<i32> = if total_pos >= total_neg {
        vec![1; ntypes]
    } else {
        vec![-1; ntypes]
    };
    {
        let majority: Vec<i32> = (0..ntypes)
            .map(|t| if pos[t] >= neg[t] { 1 } else { -1 })
            .collect();
        let cost: usize = (0..ntypes)
            .map(|t| if majority[t] == 1 { neg[t] } else { pos[t] })
            .sum();
        if cost < best_cost && assignment_separable(counters, &types, &majority, intr)? {
            best_cost = cost;
            best_assign = majority;
        }
    }

    // Remaining-cost lower bounds per suffix of `order`.
    let mut suffix_min = vec![0usize; ntypes + 1];
    for i in (0..ntypes).rev() {
        let t = order[i];
        suffix_min[i] = suffix_min[i + 1] + pos[t].min(neg[t]);
    }

    let mut assign = vec![0i32; ntypes];
    branch(
        counters,
        &types,
        &pos,
        &neg,
        &order,
        &suffix_min,
        0,
        0,
        &mut assign,
        &mut best_cost,
        &mut best_assign,
        intr,
    )?;

    // Realize the best assignment with an actual classifier.
    let classifier = separate_counted(
        counters,
        &types.iter().map(|t| t.to_vec()).collect::<Vec<_>>(),
        &best_assign,
    )
    .expect("best assignment was verified separable");
    let labels_out: Vec<i32> = vectors
        .iter()
        .map(|v| best_assign[type_of[v.as_slice()]])
        .collect();
    let errors = labels_out
        .iter()
        .zip(labels.iter())
        .filter(|(a, b)| a != b)
        .count();
    debug_assert_eq!(errors, best_cost);
    Ok(MinErrorResult {
        classifier,
        errors,
        labels: labels_out,
    })
}

#[allow(clippy::too_many_arguments)]
fn branch(
    counters: &LpCounters,
    types: &[&[i32]],
    pos: &[usize],
    neg: &[usize],
    order: &[usize],
    suffix_min: &[usize],
    i: usize,
    cost: usize,
    assign: &mut Vec<i32>,
    best_cost: &mut usize,
    best_assign: &mut Vec<i32>,
    intr: Option<&Interrupt>,
) -> Result<(), Stop> {
    if let Some(h) = intr {
        h.check()?;
    }
    if cost + suffix_min[i] >= *best_cost {
        return Ok(());
    }
    if i == order.len() {
        // cost < best, and the prefix checks kept us separable.
        *best_cost = cost;
        *best_assign = assign.clone();
        return Ok(());
    }
    let t = order[i];
    // Try the cheaper side first.
    let sides: [i32; 2] = if neg[t] <= pos[t] { [1, -1] } else { [-1, 1] };
    for side in sides {
        let step = if side == 1 { neg[t] } else { pos[t] };
        assign[t] = side;
        if cost + step + suffix_min[i + 1] < *best_cost
            && prefix_separable(counters, types, order, i, assign, intr)?
        {
            branch(
                counters,
                types,
                pos,
                neg,
                order,
                suffix_min,
                i + 1,
                cost + step,
                assign,
                best_cost,
                best_assign,
                intr,
            )?;
        }
    }
    assign[t] = 0;
    Ok(())
}

fn prefix_separable(
    counters: &LpCounters,
    types: &[&[i32]],
    order: &[usize],
    upto: usize,
    assign: &[i32],
    intr: Option<&Interrupt>,
) -> Result<bool, Stop> {
    let mut vs = Vec::with_capacity(upto + 1);
    let mut ys = Vec::with_capacity(upto + 1);
    for &t in &order[..=upto] {
        vs.push(types[t].to_vec());
        ys.push(assign[t]);
    }
    Ok(match intr {
        None => separate_counted(counters, &vs, &ys).is_some(),
        Some(h) => separate_counted_int(counters, &vs, &ys, h)?.is_some(),
    })
}

fn assignment_separable(
    counters: &LpCounters,
    types: &[&[i32]],
    assign: &[i32],
    intr: Option<&Interrupt>,
) -> Result<bool, Stop> {
    let vs: Vec<Vec<i32>> = types.iter().map(|t| t.to_vec()).collect();
    Ok(match intr {
        None => separate_counted(counters, &vs, assign).is_some(),
        Some(h) => separate_counted_int(counters, &vs, assign, h)?.is_some(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::separate::separate;

    #[test]
    fn separable_input_has_zero_errors() {
        let vectors = vec![vec![1, 1], vec![1, -1], vec![-1, 1], vec![-1, -1]];
        let labels = vec![1, -1, -1, -1];
        let r = min_error_classifier(&vectors, &labels);
        assert_eq!(r.errors, 0);
        assert_eq!(r.labels, labels);
    }

    #[test]
    fn xor_needs_one_error() {
        let vectors = vec![vec![1, 1], vec![1, -1], vec![-1, 1], vec![-1, -1]];
        let labels = vec![-1, 1, 1, -1];
        let r = min_error_classifier(&vectors, &labels);
        assert_eq!(r.errors, 1);
        // The realized labeling must itself be separable and differ in
        // exactly one place.
        assert!(r.classifier.separates(
            vectors
                .iter()
                .map(|v| v.as_slice())
                .zip(r.labels.iter().copied())
        ));
    }

    #[test]
    fn contradictory_type_pays_its_minority() {
        // Same vector seen 5 times positive, 2 times negative: any
        // classifier errs on at least 2.
        let mut vectors = vec![vec![1]; 7];
        let mut labels = vec![1, 1, 1, 1, 1, -1, -1];
        vectors.push(vec![-1]);
        labels.push(-1);
        let r = min_error_classifier(&vectors, &labels);
        assert_eq!(r.errors, 2);
    }

    #[test]
    fn weighted_xor_chooses_cheap_corner() {
        // XOR with multiplicities: corner (1,1) negative x1, (1,-1)
        // positive x5, (-1,1) positive x5, (-1,-1) negative x1.
        // Flipping both negative corners (cost 2) beats flipping a
        // positive one (cost 5)... flipping one negative corner (cost 1)
        // already yields a separable labeling (OR-like), so optimum is 1.
        let mut vectors = Vec::new();
        let mut labels = Vec::new();
        vectors.push(vec![1, 1]);
        labels.push(-1);
        for _ in 0..5 {
            vectors.push(vec![1, -1]);
            labels.push(1);
            vectors.push(vec![-1, 1]);
            labels.push(1);
        }
        vectors.push(vec![-1, -1]);
        labels.push(-1);
        let r = min_error_classifier(&vectors, &labels);
        assert_eq!(r.errors, 1);
    }

    #[test]
    fn empty_input() {
        let r = min_error_classifier(&[], &[]);
        assert_eq!(r.errors, 0);
    }

    #[test]
    fn brute_force_agreement_small_random() {
        // Compare against brute force over all type assignments.
        let mut x = 7u64;
        let mut rnd = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as usize
        };
        for trial in 0..10 {
            let dims = 2 + trial % 2;
            let n = 8;
            let mut vectors = Vec::new();
            let mut labels = Vec::new();
            for _ in 0..n {
                let v: Vec<i32> = (0..dims)
                    .map(|_| if rnd() % 2 == 0 { 1 } else { -1 })
                    .collect();
                vectors.push(v);
                labels.push(if rnd() % 2 == 0 { 1 } else { -1 });
            }
            let r = min_error_classifier(&vectors, &labels);
            let brute = brute_min_errors(&vectors, &labels);
            assert_eq!(r.errors, brute, "trial {trial}: {vectors:?} {labels:?}");
        }
    }

    fn brute_min_errors(vectors: &[Vec<i32>], labels: &[i32]) -> usize {
        let mut types: Vec<Vec<i32>> = Vec::new();
        for v in vectors {
            if !types.contains(v) {
                types.push(v.clone());
            }
        }
        let k = types.len();
        let mut best = usize::MAX;
        for mask in 0u32..(1 << k) {
            let assign: Vec<i32> = (0..k)
                .map(|i| if mask & (1 << i) != 0 { 1 } else { -1 })
                .collect();
            if separate(&types, &assign).is_none() {
                continue;
            }
            let cost = vectors
                .iter()
                .zip(labels.iter())
                .filter(|(v, &y)| {
                    let t = types.iter().position(|u| u == *v).unwrap();
                    assign[t] != y
                })
                .count();
            best = best.min(cost);
        }
        best
    }
}
