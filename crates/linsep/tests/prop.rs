//! Property tests for the linear-separation stack: LP certificates,
//! separation correctness against brute force, and min-error optimality.

use linsep::{min_error_classifier, separate, separate_with_margin, solve_lp, LpOutcome};
use numeric::{qint, Rat};
use proptest::prelude::*;

/// Strategy: a labeled collection of ±1 vectors.
fn examples(dim: usize, count: usize) -> impl Strategy<Value = (Vec<Vec<i32>>, Vec<i32>)> {
    let vec_strat = proptest::collection::vec(
        proptest::collection::vec(prop_oneof![Just(1i32), Just(-1i32)], dim),
        1..=count,
    );
    (
        vec_strat,
        proptest::collection::vec(prop_oneof![Just(1i32), Just(-1i32)], count),
    )
        .prop_map(|(vs, ls)| {
            let n = vs.len();
            let ls: Vec<i32> = ls.into_iter().take(n).collect();
            (vs, ls)
        })
}

/// Brute-force separability over a small rational weight grid — complete
/// for 2-dimensional ±1 inputs (a separator exists iff one exists with
/// weights in {-2..2} and a half-integer threshold).
fn brute_separable_2d(vectors: &[Vec<i32>], labels: &[i32]) -> bool {
    let grid = [-2i64, -1, 0, 1, 2];
    let thresholds = [-5i64, -3, -1, 0, 1, 3, 5];
    for &w1 in &grid {
        for &w2 in &grid {
            for &t2 in &thresholds {
                // threshold = t2 / 2
                let ok = vectors.iter().zip(labels.iter()).all(|(v, &y)| {
                    let score2 = 2 * (w1 * v[0] as i64 + w2 * v[1] as i64);
                    if y == 1 {
                        score2 >= t2
                    } else {
                        score2 < t2
                    }
                });
                if ok {
                    return true;
                }
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn separate_certificate_is_sound((vectors, labels) in examples(3, 8)) {
        if let Some(c) = separate(&vectors, &labels) {
            prop_assert!(c.separates(
                vectors.iter().map(|v| v.as_slice()).zip(labels.iter().copied())
            ));
        }
    }

    #[test]
    fn separate_matches_brute_force_in_2d((vectors, labels) in examples(2, 6)) {
        let ours = separate(&vectors, &labels).is_some();
        let brute = brute_separable_2d(&vectors, &labels);
        prop_assert_eq!(ours, brute, "{:?} {:?}", vectors, labels);
    }

    #[test]
    fn margin_sign_matches_separability((vectors, labels) in examples(3, 8)) {
        match separate_with_margin(&vectors, &labels) {
            Some((c, margin)) => {
                prop_assert!(margin.is_positive() || vectors.is_empty());
                prop_assert!(c.separates(
                    vectors.iter().map(|v| v.as_slice()).zip(labels.iter().copied())
                ));
            }
            None => {
                // Double-check: identical vectors with opposite labels
                // must exist OR the LP really found nothing; re-verify by
                // duplicating through the sound certificate direction.
                prop_assert!(separate(&vectors, &labels).is_none());
            }
        }
    }

    #[test]
    fn min_error_is_bounded_and_realized((vectors, labels) in examples(2, 7)) {
        let r = min_error_classifier(&vectors, &labels);
        // Realized: the classifier's labeling differs from λ in exactly
        // `errors` places and is itself separable by that classifier.
        let diff = r
            .labels
            .iter()
            .zip(labels.iter())
            .filter(|(a, b)| a != b)
            .count();
        prop_assert_eq!(diff, r.errors);
        prop_assert!(r.classifier.separates(
            vectors.iter().map(|v| v.as_slice()).zip(r.labels.iter().copied())
        ));
        // Bounded by the trivial majority classifier.
        let pos = labels.iter().filter(|&&l| l == 1).count();
        prop_assert!(r.errors <= pos.min(labels.len() - pos));
        // Zero errors iff separable.
        prop_assert_eq!(r.errors == 0, separate(&vectors, &labels).is_some());
    }

    #[test]
    fn lp_optimal_is_feasible_and_tight(
        rows in proptest::collection::vec(
            (proptest::collection::vec(-4i64..5, 2), 0i64..9),
            1..5
        )
    ) {
        // max x + y subject to random constraints (plus a box to keep it
        // bounded).
        let mut a: Vec<Vec<Rat>> = rows
            .iter()
            .map(|(r, _)| r.iter().map(|&v| qint(v)).collect())
            .collect();
        let mut b: Vec<Rat> = rows.iter().map(|(_, rhs)| qint(*rhs)).collect();
        a.push(vec![qint(1), qint(0)]);
        b.push(qint(10));
        a.push(vec![qint(0), qint(1)]);
        b.push(qint(10));
        let c = vec![qint(1), qint(1)];
        match solve_lp(&a, &b, &c) {
            LpOutcome::Optimal { x, value } => {
                // Feasibility of the returned point.
                for (row, rhs) in a.iter().zip(b.iter()) {
                    let lhs = &(&row[0] * &x[0]) + &(&row[1] * &x[1]);
                    prop_assert!(lhs <= *rhs, "infeasible optimum");
                }
                prop_assert!(x[0] >= Rat::zero() && x[1] >= Rat::zero());
                prop_assert_eq!(&x[0] + &x[1], value);
            }
            LpOutcome::Infeasible => {
                // x = y = 0 is feasible unless some rhs < 0 with
                // nonnegative row... check that genuinely no b < 0 row is
                // violated by the origin.
                let origin_ok = b.iter().all(|rhs| *rhs >= Rat::zero());
                prop_assert!(!origin_ok, "origin was feasible but LP said infeasible");
            }
            LpOutcome::Unbounded => {
                prop_assert!(false, "boxed LP cannot be unbounded");
            }
        }
    }

    #[test]
    fn lp_respects_scaling(scale in 1i64..20) {
        // max x s.t. scale·x ≤ scale  →  x = 1 regardless of scale.
        let a = vec![vec![qint(scale)]];
        let b = vec![qint(scale)];
        let c = vec![qint(1)];
        match solve_lp(&a, &b, &c) {
            LpOutcome::Optimal { x, value } => {
                prop_assert_eq!(x[0].clone(), qint(1));
                prop_assert_eq!(value, qint(1));
            }
            other => prop_assert!(false, "{other:?}"),
        }
    }
}
