//! Edge cases of the exact min-error search (§7's ε-approximate
//! separability core): conflicting labels, the ε = 0 and ε = 1 extremes,
//! and brute-force agreement on duplicated-vector instances — the
//! regime the generalization harness feeds it (noisy planted labels
//! collapse many entities onto few feature types).

use linsep::{min_error_classifier, separate};

/// Every classifier is constant on a type, so a type holding both
/// labels pays its minority — and with *one* type, that is the whole
/// optimum, whatever the mix.
#[test]
fn all_conflicting_single_type_pays_exactly_the_minority() {
    for (p, n) in [(1, 1), (5, 2), (2, 5), (7, 7), (10, 0), (0, 4)] {
        let vectors = vec![vec![1, -1]; p + n];
        let mut labels = vec![1; p];
        labels.extend(std::iter::repeat_n(-1, n));
        let r = min_error_classifier(&vectors, &labels);
        assert_eq!(r.errors, p.min(n), "p={p} n={n}");
        // The realized relabeling is constant and consistent with the
        // classifier that certifies it.
        assert!(r.labels.windows(2).all(|w| w[0] == w[1]), "p={p} n={n}");
        assert!(r.classifier.separates(
            vectors
                .iter()
                .map(|v| v.as_slice())
                .zip(r.labels.iter().copied())
        ));
    }
}

/// ε = 0 extreme: zero errors is achievable exactly when the instance is
/// linearly separable — `min_error_classifier` must agree with the LP
/// decision procedure on both sides.
#[test]
fn zero_errors_iff_separable() {
    let instances: Vec<(Vec<Vec<i32>>, Vec<i32>)> = vec![
        // Separable: AND on two features.
        (
            vec![vec![1, 1], vec![1, -1], vec![-1, 1], vec![-1, -1]],
            vec![1, -1, -1, -1],
        ),
        // Not separable: XOR.
        (
            vec![vec![1, 1], vec![1, -1], vec![-1, 1], vec![-1, -1]],
            vec![-1, 1, 1, -1],
        ),
        // Separable: single example.
        (vec![vec![1]], vec![-1]),
        // Not separable: same vector, both labels.
        (vec![vec![1, 1], vec![1, 1]], vec![1, -1]),
        // Separable: empty instance.
        (vec![], vec![]),
    ];
    for (vectors, labels) in instances {
        let r = min_error_classifier(&vectors, &labels);
        assert_eq!(
            r.errors == 0,
            separate(&vectors, &labels).is_some(),
            "{vectors:?} {labels:?}"
        );
        if r.errors == 0 {
            assert_eq!(r.labels, labels);
        }
    }
}

/// ε = 1 extreme: the majority-constant classifier errs on at most
/// min(#pos, #neg), so the optimum never exceeds that — every instance
/// is trivially ε-approximately separable at ε = 1.
#[test]
fn errors_never_exceed_the_minority_class() {
    let mut x = 41u64;
    let mut rnd = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 33) as usize
    };
    for trial in 0..20 {
        let dims = 1 + trial % 3;
        let n = 4 + trial % 5;
        let mut vectors = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            vectors.push(
                (0..dims)
                    .map(|_| if rnd() % 2 == 0 { 1 } else { -1 })
                    .collect::<Vec<i32>>(),
            );
            labels.push(if rnd() % 2 == 0 { 1 } else { -1 });
        }
        let pos = labels.iter().filter(|&&y| y == 1).count();
        let neg = labels.len() - pos;
        let r = min_error_classifier(&vectors, &labels);
        assert!(
            r.errors <= pos.min(neg),
            "trial {trial}: {} > min({pos},{neg})",
            r.errors
        );
        // The reported error count matches the realized relabeling.
        let disagreements = r
            .labels
            .iter()
            .zip(labels.iter())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(r.errors, disagreements, "trial {trial}");
    }
}

/// Brute-force agreement on instances built from few *duplicated*
/// vectors with conflicting multiplicities — the branch-and-bound's
/// type-grouping and cost accounting must match the exhaustive optimum.
#[test]
fn brute_force_agreement_on_duplicated_types() {
    let mut x = 99u64;
    let mut rnd = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 33) as usize
    };
    for trial in 0..12 {
        let dims = 2 + trial % 2;
        // Few base types, each repeated with noisy labels.
        let base: Vec<Vec<i32>> = (0..3 + trial % 3)
            .map(|_| {
                (0..dims)
                    .map(|_| if rnd() % 2 == 0 { 1 } else { -1 })
                    .collect()
            })
            .collect();
        let mut vectors = Vec::new();
        let mut labels = Vec::new();
        for v in &base {
            for _ in 0..1 + rnd() % 3 {
                vectors.push(v.clone());
                // Mostly one label, occasionally flipped: planted noise.
                labels.push(if rnd() % 4 == 0 { -1 } else { 1 });
            }
        }
        let r = min_error_classifier(&vectors, &labels);
        let brute = brute_min_errors(&vectors, &labels);
        assert_eq!(r.errors, brute, "trial {trial}: {vectors:?} {labels:?}");
        assert!(r.classifier.separates(
            vectors
                .iter()
                .map(|v| v.as_slice())
                .zip(r.labels.iter().copied())
        ));
    }
}

/// Exhaustive minimum over all separable type assignments.
fn brute_min_errors(vectors: &[Vec<i32>], labels: &[i32]) -> usize {
    let mut types: Vec<Vec<i32>> = Vec::new();
    for v in vectors {
        if !types.contains(v) {
            types.push(v.clone());
        }
    }
    let k = types.len();
    assert!(k <= 20, "brute force needs few types");
    let mut best = usize::MAX;
    for mask in 0u32..(1 << k) {
        let assign: Vec<i32> = (0..k)
            .map(|i| if mask & (1 << i) != 0 { 1 } else { -1 })
            .collect();
        if separate(&types, &assign).is_none() {
            continue;
        }
        let cost = vectors
            .iter()
            .zip(labels.iter())
            .filter(|(v, &y)| {
                let t = types.iter().position(|u| u == *v).unwrap();
                assign[t] != y
            })
            .count();
        best = best.min(cost);
    }
    best
}
