//! Regression tests for LP-engine edge cases: degenerate shapes that the
//! enumeration algorithms actually generate (empty instances, single
//! rows, duplicate conflicts) and that historically would each have
//! tripped a different bug class (empty tableaus, zero-arity vectors,
//! pointless LP work on refutable instances).

use linsep::{
    has_label_conflict, separate, separate_counted, separate_with_margin, solve_lp_counted,
    LpCounters, LpOutcome,
};
use numeric::qint;

#[test]
fn empty_vector_set_is_trivially_separable() {
    let (c, margin) = separate_with_margin(&[], &[]).expect("empty set separates");
    assert_eq!(c.arity(), 0);
    assert!(margin.is_positive());
    assert_eq!(c.classify(&[]), 1, "empty score 0 ≥ threshold 0");
}

#[test]
fn single_row_is_separable_either_way() {
    for label in [1, -1] {
        let c = separate(&[vec![1, -1, 1]], &[label]).expect("one example always separates");
        assert_eq!(c.classify(&[1, -1, 1]), label);
    }
}

#[test]
fn duplicate_rows_with_opposite_labels_refute_without_pivoting() {
    // The conflict scan must catch this before the perceptron or the LP.
    // An isolated counter set (nothing else in the process writes to it)
    // makes the accounting exact: one prune, and no perceptron round,
    // LP, or pivot attributable to the call at all.
    let vectors = vec![vec![1, 1, -1], vec![-1, 1, 1], vec![1, 1, -1]];
    let labels = vec![1, 1, -1];
    assert!(has_label_conflict(&vectors, &labels));
    let counters = LpCounters::new();
    assert!(separate_counted(&counters, &vectors, &labels).is_none());
    let delta = counters.snapshot();
    assert_eq!(delta.conflict_prunes, 1, "delta={delta:?}");
    assert_eq!(delta.perceptron_hits, 0, "delta={delta:?}");
    assert_eq!(delta.lps_solved, 0, "delta={delta:?}");
    assert_eq!(delta.simplex_pivots, 0, "delta={delta:?}");
}

#[test]
fn feasibility_lp_with_trivial_optimum_pivots_zero_times() {
    // In-band pivot accounting: an LP whose all-slack basis is already
    // optimal must report zero pivots.
    let a = vec![vec![qint(1)]];
    let b = vec![qint(5)];
    let c = vec![qint(-1)];
    let (out, pivots) = solve_lp_counted(&a, &b, &c);
    assert!(matches!(out, LpOutcome::Optimal { .. }));
    assert_eq!(pivots, 0);
}

#[test]
fn zero_arity_vectors_and_uniform_labels() {
    // Zero-dimensional feature space: separable iff the labels agree.
    assert!(separate(&[vec![], vec![], vec![]], &[1, 1, 1]).is_some());
    assert!(separate(&[vec![], vec![], vec![]], &[-1, -1, -1]).is_some());
    assert!(separate(&[vec![], vec![]], &[1, -1]).is_none());
}

#[test]
fn margin_is_exact_on_a_tight_instance() {
    // Two antipodal points: under the |w| ≤ 1 box the best margin for
    // ±(1,1) is 2 (w = (1,1), w0 = 0). The perceptron path normalizes
    // before reporting, the LP path optimizes directly; either way the
    // margin must be a positive exact rational, and the classifier tight.
    let (c, margin) = separate_with_margin(&[vec![1, 1], vec![-1, -1]], &[1, -1]).unwrap();
    assert!(margin.is_positive());
    assert!(margin <= qint(2), "box-normalized margin is at most 2");
    assert_eq!(c.classify(&[1, 1]), 1);
    assert_eq!(c.classify(&[-1, -1]), -1);
}

#[test]
fn lp_handles_all_negative_rhs() {
    // Every constraint needs an artificial: x ≥ 3, y ≥ 2, max -(x+y).
    let a = vec![vec![qint(-1), qint(0)], vec![qint(0), qint(-1)]];
    let b = vec![qint(-3), qint(-2)];
    let c = vec![qint(-1), qint(-1)];
    let (out, pivots) = solve_lp_counted(&a, &b, &c);
    match out {
        LpOutcome::Optimal { x, value } => {
            assert_eq!(x, vec![qint(3), qint(2)]);
            assert_eq!(value, qint(-5));
        }
        other => panic!("{other:?}"),
    }
    assert!(pivots >= 2, "phase 1 must drive out both artificials");
}

#[test]
fn promoted_solution_demotes_when_it_fits() {
    // Canonical-form invariant at the API boundary: values that fit i64
    // come back in the small representation even if intermediates
    // promoted.
    let k = qint(1 << 62);
    let (out, _) = solve_lp_counted(&[vec![k.clone()]], &[&k * &qint(2)], &[qint(1)]);
    match out {
        LpOutcome::Optimal { x, value } => {
            assert_eq!(x[0], qint(2));
            assert!(x[0].is_small());
            assert_eq!(value, qint(2));
        }
        other => panic!("{other:?}"),
    }
}
