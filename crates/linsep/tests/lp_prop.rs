//! Agreement property tests: the hybrid-`Rat` simplex (`solve_lp`) must
//! produce *identical* outcomes to the seed all-`BigRational` solver
//! (`solve_lp_big`) on randomized LPs.
//!
//! This is stronger than "both are optimal": both engines use Bland's
//! rule with the same tie-breaking, and positive row rescaling changes
//! neither reduced costs nor ratio tests, so the pivot sequences — and
//! hence the exact optimal vertex, not just the value — must coincide.

use interrupt::Interrupt;
use linsep::{
    separate_warm_counted_int, solve_lp, solve_lp_big, solve_lp_sparse_with_pricing, LpBackend,
    LpCounters, LpOutcome, LpOutcomeBig, Pricing, SepBasis, SparseOutcome,
};
use numeric::Rat;
use proptest::prelude::*;

/// Strategy: one small-rational coefficient, biased toward integers and
/// including negatives (negative `b` entries exercise phase 1).
fn coeff() -> impl Strategy<Value = (i64, i64)> {
    (
        prop_oneof![-6i64..7, -6i64..7, -6i64..7, -60i64..61],
        1i64..5,
    )
}

/// Strategy: a random LP `max cᵀx s.t. Ax ≤ b, x ≥ 0` with up to 3
/// variables and 5 rows, mixing feasible, infeasible, and unbounded
/// shapes.
#[allow(clippy::type_complexity)]
fn lp_instance() -> impl Strategy<Value = (Vec<Vec<(i64, i64)>>, Vec<(i64, i64)>, Vec<(i64, i64)>)>
{
    (1usize..=3, 0usize..=5).prop_flat_map(|(n, m)| {
        (
            proptest::collection::vec(proptest::collection::vec(coeff(), n), m),
            proptest::collection::vec(coeff(), m),
            proptest::collection::vec(coeff(), n),
        )
    })
}

fn rat(p: (i64, i64)) -> Rat {
    Rat::new(p.0, p.1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hybrid_and_big_simplex_agree((a, b, c) in lp_instance()) {
        let a_rat: Vec<Vec<Rat>> = a
            .iter()
            .map(|row| row.iter().map(|&p| rat(p)).collect())
            .collect();
        let b_rat: Vec<Rat> = b.iter().map(|&p| rat(p)).collect();
        let c_rat: Vec<Rat> = c.iter().map(|&p| rat(p)).collect();
        let a_big: Vec<Vec<_>> = a_rat
            .iter()
            .map(|row| row.iter().map(|v| v.to_big()).collect())
            .collect();
        let b_big: Vec<_> = b_rat.iter().map(|v| v.to_big()).collect();
        let c_big: Vec<_> = c_rat.iter().map(|v| v.to_big()).collect();

        let fast = solve_lp(&a_rat, &b_rat, &c_rat);
        let slow = solve_lp_big(&a_big, &b_big, &c_big);
        match (fast, slow) {
            (LpOutcome::Infeasible, LpOutcomeBig::Infeasible) => {}
            (LpOutcome::Unbounded, LpOutcomeBig::Unbounded) => {}
            (
                LpOutcome::Optimal { x, value },
                LpOutcomeBig::Optimal { x: xb, value: vb },
            ) => {
                prop_assert_eq!(value.to_big(), vb);
                prop_assert_eq!(x.len(), xb.len());
                for (xi, xbi) in x.iter().zip(xb.iter()) {
                    // Same pivot sequence ⇒ same vertex, coordinatewise.
                    prop_assert_eq!(xi.to_big(), xbi.clone());
                }
            }
            (fast, slow) => {
                prop_assert!(false, "verdicts diverge: hybrid={fast:?} big={slow:?}");
            }
        }
    }
}

/// Strategy: a random ±1 training matrix with ±1 labels — the separation
/// instance family. Small dimensions make degenerate shapes (duplicate
/// rows, ties in the ratio test) and inseparable instances (label
/// conflicts, XOR-like patterns) common rather than rare.
fn sep_instance() -> impl Strategy<Value = (Vec<Vec<i32>>, Vec<i32>)> {
    (1usize..=6, 1usize..=4).prop_flat_map(|(rows, n)| {
        (
            proptest::collection::vec(
                proptest::collection::vec(prop_oneof![Just(1i32), Just(-1i32)], n),
                rows,
            ),
            proptest::collection::vec(prop_oneof![Just(1i32), Just(-1i32)], rows),
        )
    })
}

/// Mirror of the margin-LP assembly in `separate.rs` — same variable
/// order (`u_1..u_n`, `u_0`, `t'`) and row order (examples, boxes,
/// margin box) — so the sparse solver is pinned against the oracle on
/// exactly the LPs the separation path emits.
fn margin_lp(vectors: &[Vec<i32>], labels: &[i32]) -> (Vec<Vec<Rat>>, Vec<Rat>, Vec<Rat>) {
    let n = vectors[0].len();
    let q = |v: i64| Rat::new(v, 1);
    let nvars = n + 2;
    let mut a: Vec<Vec<Rat>> = Vec::new();
    let mut b: Vec<Rat> = Vec::new();
    for (v, &y) in vectors.iter().zip(labels.iter()) {
        let s = y as i64;
        let mut row = vec![Rat::zero(); nvars];
        let mut sum_b = 0i64;
        for (j, &bij) in v.iter().enumerate() {
            row[j] = q(-s * bij as i64);
            sum_b += bij as i64;
        }
        row[n] = q(s);
        row[n + 1] = q(1);
        a.push(row);
        b.push(q(n as i64 + 2 - s * (1 - sum_b)));
    }
    for j in 0..=n {
        let mut row = vec![Rat::zero(); nvars];
        row[j] = q(1);
        a.push(row);
        b.push(q(2));
    }
    let mut row = vec![Rat::zero(); nvars];
    row[n + 1] = q(1);
    a.push(row);
    b.push(q(n as i64 + 3));
    let mut c = vec![Rat::zero(); nvars];
    c[n + 1] = q(1);
    (a, b, c)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The sparse revised simplex agrees with the all-`BigRational`
    /// oracle on every margin LP: same verdict (always Optimal — the LP
    /// is box-bounded and feasible) and the same optimal value under
    /// partial pricing; under Bland pricing the pivot sequence matches
    /// the dense tableau's, so the exact optimal vertex must coincide
    /// coordinatewise too.
    #[test]
    fn sparse_and_big_simplex_agree_on_margin_lps((vectors, labels) in sep_instance()) {
        let (a, b, c) = margin_lp(&vectors, &labels);
        let a_big: Vec<Vec<_>> = a
            .iter()
            .map(|row| row.iter().map(|v| v.to_big()).collect())
            .collect();
        let b_big: Vec<_> = b.iter().map(|v| v.to_big()).collect();
        let c_big: Vec<_> = c.iter().map(|v| v.to_big()).collect();
        let oracle = match solve_lp_big(&a_big, &b_big, &c_big) {
            LpOutcomeBig::Optimal { x, value } => (x, value),
            other => {
                prop_assert!(false, "oracle says {:?}", other);
                unreachable!()
            }
        };

        for pricing in [Pricing::Partial, Pricing::Bland] {
            let (res, report) = solve_lp_sparse_with_pricing(&a, &b, &c, None, pricing, None)
                .expect("margin LPs have b ≥ 1; the sparse solver must accept them");
            prop_assert!(!report.warm_used, "no warm offer was made");
            match res.expect("no interrupt handle was installed") {
                SparseOutcome::Optimal { x, value, .. } => {
                    prop_assert_eq!(value.to_big(), oracle.1.clone());
                    if pricing == Pricing::Bland {
                        // Bland mode replays the dense pivot sequence,
                        // which the existing property pins to the big
                        // solver — so the vertex itself must match.
                        prop_assert_eq!(x.len(), oracle.0.len());
                        for (xi, xbi) in x.iter().zip(oracle.0.iter()) {
                            prop_assert_eq!(xi.to_big(), xbi.clone());
                        }
                    }
                }
                SparseOutcome::Unbounded => {
                    prop_assert!(false, "margin LP cannot be unbounded");
                }
            }
        }
    }

    /// `S → S ∪ {j}` basis reuse never changes a feasibility verdict:
    /// growing a column subset one column at a time, each step solved
    /// warm from the previous step's basis, must classify exactly like
    /// independent cold dense solves — and like the sibling-warmed
    /// variant that reuses a same-size neighbor's basis.
    #[test]
    fn warm_chains_preserve_separability_verdicts((vectors, labels) in sep_instance()) {
        let intr = Interrupt::none();
        let ncols = vectors[0].len();
        let project = |upto: usize| -> Vec<Vec<i32>> {
            vectors.iter().map(|v| v[..upto].to_vec()).collect()
        };

        // Parent chain: basis of columns 0..k warms columns 0..k+1.
        let warm_counters = LpCounters::new();
        let mut parent: Option<SepBasis> = None;
        let mut warm_verdicts = Vec::with_capacity(ncols);
        for k in 1..=ncols {
            let out = separate_warm_counted_int(
                &warm_counters,
                &project(k),
                &labels,
                parent.as_ref(),
                LpBackend::SparseWarm,
                &intr,
            )
            .expect("no deadline");
            warm_verdicts.push(out.result.is_some());
            parent = out.basis;
        }

        // Cold dense reference, one independent solve per prefix.
        let cold_counters = LpCounters::new();
        for (k, &warm_verdict) in (1..=ncols).zip(warm_verdicts.iter()) {
            let cold = separate_warm_counted_int(
                &cold_counters,
                &project(k),
                &labels,
                None,
                LpBackend::DenseCold,
                &intr,
            )
            .expect("no deadline");
            prop_assert_eq!(
                warm_verdict,
                cold.result.is_some(),
                "prefix of {} columns: warm chain and cold dense disagree",
                k
            );
        }

        // Sibling chain at full arity: the basis of (prefix + [last])
        // offered to itself re-solved — a same-shape reuse — and the
        // verdict must be stable under it.
        if let Some(basis) = parent {
            let sibling = separate_warm_counted_int(
                &LpCounters::new(),
                &project(ncols),
                &labels,
                Some(&basis),
                LpBackend::SparseWarm,
                &intr,
            )
            .expect("no deadline");
            prop_assert_eq!(sibling.result.is_some(), *warm_verdicts.last().unwrap());
        }

        // The warm chain skips the perceptron tier whenever a basis is
        // on offer, so it can only decide *more* prefixes by LP than the
        // cold reference — never fewer.
        prop_assert!(
            warm_counters.snapshot().lps_solved >= cold_counters.snapshot().lps_solved
        );
    }
}
