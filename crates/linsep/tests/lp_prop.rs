//! Agreement property tests: the hybrid-`Rat` simplex (`solve_lp`) must
//! produce *identical* outcomes to the seed all-`BigRational` solver
//! (`solve_lp_big`) on randomized LPs.
//!
//! This is stronger than "both are optimal": both engines use Bland's
//! rule with the same tie-breaking, and positive row rescaling changes
//! neither reduced costs nor ratio tests, so the pivot sequences — and
//! hence the exact optimal vertex, not just the value — must coincide.

use linsep::{solve_lp, solve_lp_big, LpOutcome, LpOutcomeBig};
use numeric::Rat;
use proptest::prelude::*;

/// Strategy: one small-rational coefficient, biased toward integers and
/// including negatives (negative `b` entries exercise phase 1).
fn coeff() -> impl Strategy<Value = (i64, i64)> {
    (
        prop_oneof![-6i64..7, -6i64..7, -6i64..7, -60i64..61],
        1i64..5,
    )
}

/// Strategy: a random LP `max cᵀx s.t. Ax ≤ b, x ≥ 0` with up to 3
/// variables and 5 rows, mixing feasible, infeasible, and unbounded
/// shapes.
#[allow(clippy::type_complexity)]
fn lp_instance() -> impl Strategy<Value = (Vec<Vec<(i64, i64)>>, Vec<(i64, i64)>, Vec<(i64, i64)>)>
{
    (1usize..=3, 0usize..=5).prop_flat_map(|(n, m)| {
        (
            proptest::collection::vec(proptest::collection::vec(coeff(), n), m),
            proptest::collection::vec(coeff(), m),
            proptest::collection::vec(coeff(), n),
        )
    })
}

fn rat(p: (i64, i64)) -> Rat {
    Rat::new(p.0, p.1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hybrid_and_big_simplex_agree((a, b, c) in lp_instance()) {
        let a_rat: Vec<Vec<Rat>> = a
            .iter()
            .map(|row| row.iter().map(|&p| rat(p)).collect())
            .collect();
        let b_rat: Vec<Rat> = b.iter().map(|&p| rat(p)).collect();
        let c_rat: Vec<Rat> = c.iter().map(|&p| rat(p)).collect();
        let a_big: Vec<Vec<_>> = a_rat
            .iter()
            .map(|row| row.iter().map(|v| v.to_big()).collect())
            .collect();
        let b_big: Vec<_> = b_rat.iter().map(|v| v.to_big()).collect();
        let c_big: Vec<_> = c_rat.iter().map(|v| v.to_big()).collect();

        let fast = solve_lp(&a_rat, &b_rat, &c_rat);
        let slow = solve_lp_big(&a_big, &b_big, &c_big);
        match (fast, slow) {
            (LpOutcome::Infeasible, LpOutcomeBig::Infeasible) => {}
            (LpOutcome::Unbounded, LpOutcomeBig::Unbounded) => {}
            (
                LpOutcome::Optimal { x, value },
                LpOutcomeBig::Optimal { x: xb, value: vb },
            ) => {
                prop_assert_eq!(value.to_big(), vb);
                prop_assert_eq!(x.len(), xb.len());
                for (xi, xbi) in x.iter().zip(xb.iter()) {
                    // Same pivot sequence ⇒ same vertex, coordinatewise.
                    prop_assert_eq!(xi.to_big(), xbi.clone());
                }
            }
            (fast, slow) => {
                prop_assert!(false, "verdicts diverge: hybrid={fast:?} big={slow:?}");
            }
        }
    }
}
