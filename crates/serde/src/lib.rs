//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` marker traits and derive
//! macros so the workspace's derive annotations compile without network
//! access. The derives genuinely implement the marker traits for
//! non-generic types (see `serde_derive`), so persistence structs can
//! carry `T: Serialize` bounds; the actual encodings stay hand-written
//! (the text formats in `relational::spec` and `cqsep::persist`, the
//! binary formats built on [`bytes`]).
//!
//! [`bytes`] is the one shared binary wire style: magic-tagged,
//! little-endian, bounds-checked, all-or-nothing. Both the engine's
//! cache tables and the compiled classifier model encode through it.

pub mod bytes;

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait; implemented by the derive for non-generic types.
pub trait Serialize {}

/// Marker trait; implemented by the derive for non-generic types.
pub trait Deserialize<'de>: Sized {}
