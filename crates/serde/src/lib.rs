//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` *names* (trait declarations and
//! no-op derive macros) so the workspace's derive annotations compile
//! without network access. No serialization actually happens in-tree —
//! the text formats in `relational::spec` and `cqsep::persist` are the
//! real media; the derives exist for downstream interop only.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait; the no-op derive never implements it.
pub trait Serialize {}

/// Marker trait; the no-op derive never implements it.
pub trait Deserialize<'de>: Sized {}
