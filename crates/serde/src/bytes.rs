//! Shared little-endian binary codec for the workspace's persisted
//! artifacts.
//!
//! Every on-disk binary format in the workspace (the engine's verdict
//! tables, the compiled classifier model) follows the same conventions:
//! an 8-byte magic tag, little-endian fixed-width integers,
//! length-prefixed UTF-8 strings, strict `0`/`1` verdict bytes, and
//! all-or-nothing decoding — a wrong magic, truncated field, invalid
//! byte, or trailing garbage fails the whole decode (`None`) rather
//! than importing a prefix of unknown integrity. Writers go through
//! [`write_atomic`] (sibling temp file + rename) so a crash mid-save
//! cannot clobber a previous good file.

use std::fs;
use std::io;
use std::path::Path;

/// Append-only encoder matching [`ByteReader`]'s wire format.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Start a buffer with the format's 8-byte magic tag.
    pub fn with_magic(magic: &[u8; 8]) -> ByteWriter {
        ByteWriter {
            buf: magic.to_vec(),
        }
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A boolean as a strict verdict byte (`0`/`1`).
    pub fn verdict(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// A `u32` length prefix followed by the UTF-8 bytes.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// A `u32` count followed by that many [`ByteWriter::str`]s (delta
    /// op argument lists).
    pub fn str_list(&mut self, items: &[String]) {
        self.u32(items.len() as u32);
        for s in items {
            self.str(s);
        }
    }

    /// An optional verdict as a strict byte: `2` = absent, else the
    /// usual `0`/`1` (delta entity labels).
    pub fn opt_verdict(&mut self, v: Option<bool>) {
        self.buf.push(match v {
            None => 2,
            Some(b) => b as u8,
        });
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// A bounds-checked little-endian cursor. Every accessor returns `None`
/// on underrun, so corrupted length fields fail cleanly instead of
/// panicking or over-allocating (vectors grow one element per few bytes
/// actually present in the buffer).
#[derive(Debug)]
pub struct ByteReader<'a> {
    rest: &'a [u8],
}

impl<'a> ByteReader<'a> {
    /// Open a buffer whose first 8 bytes must equal `magic`.
    pub fn with_magic(bytes: &'a [u8], magic: &[u8; 8]) -> Option<ByteReader<'a>> {
        let rest = bytes.strip_prefix(magic.as_slice())?;
        Some(ByteReader { rest })
    }

    pub fn take<const N: usize>(&mut self) -> Option<[u8; N]> {
        let (head, tail) = self.rest.split_at_checked(N)?;
        self.rest = tail;
        head.try_into().ok()
    }

    pub fn u8(&mut self) -> Option<u8> {
        self.take::<1>().map(|[b]| b)
    }

    pub fn u32(&mut self) -> Option<u32> {
        self.take().map(u32::from_le_bytes)
    }

    pub fn u64(&mut self) -> Option<u64> {
        self.take().map(u64::from_le_bytes)
    }

    pub fn u128(&mut self) -> Option<u128> {
        self.take().map(u128::from_le_bytes)
    }

    /// A strict boolean byte: anything other than `0`/`1` is corruption.
    pub fn verdict(&mut self) -> Option<bool> {
        match self.take::<1>()? {
            [0] => Some(false),
            [1] => Some(true),
            _ => None,
        }
    }

    /// A `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        let (head, tail) = self.rest.split_at_checked(n)?;
        self.rest = tail;
        String::from_utf8(head.to_vec()).ok()
    }

    /// A `u32`-count-prefixed list of strings; fails as a unit.
    pub fn str_list(&mut self) -> Option<Vec<String>> {
        let n = self.u32()? as usize;
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(self.str()?);
        }
        Some(out)
    }

    /// A strict optional-verdict byte: `0`/`1`/`2` (absent); anything
    /// else is corruption.
    pub fn opt_verdict(&mut self) -> Option<Option<bool>> {
        match self.take::<1>()? {
            [0] => Some(Some(false)),
            [1] => Some(Some(true)),
            [2] => Some(None),
            _ => None,
        }
    }

    /// All bytes consumed? Trailing garbage means a count field and the
    /// payload disagree — treated as corruption by the decoders.
    pub fn finished(&self) -> bool {
        self.rest.is_empty()
    }
}

/// Write `bytes` to `path` via a sibling temp file and an atomic rename.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = Path::new(&tmp);
    fs::write(tmp, bytes)?;
    fs::rename(tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: [u8; 8] = *b"TESTMAG1";

    #[test]
    fn writer_reader_round_trip() {
        let mut w = ByteWriter::with_magic(&MAGIC);
        w.u8(7);
        w.u32(42);
        w.u64(1 << 40);
        w.u128(1 << 100);
        w.verdict(true);
        w.str("2/3");
        let buf = w.finish();
        let mut r = ByteReader::with_magic(&buf, &MAGIC).unwrap();
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32(), Some(42));
        assert_eq!(r.u64(), Some(1 << 40));
        assert_eq!(r.u128(), Some(1 << 100));
        assert_eq!(r.verdict(), Some(true));
        assert_eq!(r.str().as_deref(), Some("2/3"));
        assert!(r.finished());
    }

    #[test]
    fn bad_magic_and_underruns_fail_cleanly() {
        assert!(ByteReader::with_magic(b"NOTMAGIC", &MAGIC).is_none());
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&3u64.to_le_bytes());
        let mut r = ByteReader::with_magic(&buf, &MAGIC).unwrap();
        assert_eq!(r.u64(), Some(3));
        assert_eq!(r.u32(), None, "underrun must fail, not panic");
    }

    #[test]
    fn verdict_bytes_are_strict() {
        let mut buf = MAGIC.to_vec();
        buf.push(2);
        let mut r = ByteReader::with_magic(&buf, &MAGIC).unwrap();
        assert_eq!(r.verdict(), None);
    }

    #[test]
    fn string_length_is_bounds_checked() {
        let mut w = ByteWriter::with_magic(&MAGIC);
        w.u32(1_000_000); // length prefix far past the buffer end
        let buf = w.finish();
        let mut r = ByteReader::with_magic(&buf, &MAGIC).unwrap();
        assert_eq!(r.str(), None);
    }

    #[test]
    fn str_list_and_opt_verdict_round_trip() {
        let mut w = ByteWriter::with_magic(&MAGIC);
        w.str_list(&["a".to_string(), "bc".to_string()]);
        w.str_list(&[]);
        w.opt_verdict(None);
        w.opt_verdict(Some(true));
        w.opt_verdict(Some(false));
        let buf = w.finish();
        let mut r = ByteReader::with_magic(&buf, &MAGIC).unwrap();
        assert_eq!(r.str_list(), Some(vec!["a".to_string(), "bc".to_string()]));
        assert_eq!(r.str_list(), Some(Vec::new()));
        assert_eq!(r.opt_verdict(), Some(None));
        assert_eq!(r.opt_verdict(), Some(Some(true)));
        assert_eq!(r.opt_verdict(), Some(Some(false)));
        assert!(r.finished());

        // Strictness: 3 is not a valid optional-verdict byte.
        let mut bad = MAGIC.to_vec();
        bad.push(3);
        let mut r = ByteReader::with_magic(&bad, &MAGIC).unwrap();
        assert_eq!(r.opt_verdict(), None);
    }

    #[test]
    fn string_must_be_utf8() {
        let mut w = ByteWriter::with_magic(&MAGIC);
        w.u32(1);
        w.u8(0xFF);
        let buf = w.finish();
        let mut r = ByteReader::with_magic(&buf, &MAGIC).unwrap();
        assert_eq!(r.str(), None);
    }
}
