//! Property tests for the FO layer: evaluator laws (De Morgan, quantifier
//! duality), describing-formula agreement with the isomorphism solver,
//! and the single-feature generation of Proposition 8.1.

use folog::{describing_formula, fo_selects, fo_single_feature, FoFormula, FoVar};
use proptest::prelude::*;
use relational::iso::isomorphic;
use relational::{Database, Label, Labeling, Schema, TrainingDb, Val};

fn graph(n: usize, edges: &[(usize, usize)]) -> Database {
    let mut s = Schema::entity_schema();
    s.add_relation("E", 2);
    let mut db = Database::new(s);
    let vals: Vec<Val> = (0..n).map(|i| db.value(&format!("v{i}"))).collect();
    let e = db.schema().rel_by_name("E").unwrap();
    for &(a, b) in edges {
        db.add_fact(e, vec![vals[a % n], vals[b % n]]);
    }
    for &v in &vals {
        db.add_entity(v);
    }
    db
}

fn small_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..4).prop_flat_map(|n| (Just(n), proptest::collection::vec((0..n, 0..n), 0..(2 * n))))
}

/// A random quantifier-shallow formula with one free variable FoVar(0).
fn random_formula() -> impl Strategy<Value = FoFormula> {
    let e = {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s.rel_by_name("E").unwrap()
    };
    let atom =
        (0u32..3, 0u32..3).prop_map(move |(a, b)| FoFormula::Atom(e, vec![FoVar(a), FoVar(b)]));
    let eq = (0u32..3, 0u32..3).prop_map(|(a, b)| FoFormula::Eq(FoVar(a), FoVar(b)));
    let leaf = prop_oneof![atom, eq];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            proptest::collection::vec(inner.clone(), 0..3).prop_map(FoFormula::And),
            proptest::collection::vec(inner.clone(), 0..3).prop_map(FoFormula::Or),
            (1u32..3, inner.clone()).prop_map(|(v, f)| FoFormula::exists(FoVar(v), f)),
            (1u32..3, inner).prop_map(|(v, f)| FoFormula::forall(FoVar(v), f)),
        ]
    })
    // Close over any stray free variables other than x0 so evaluation
    // never hits an unbound variable.
    .prop_map(|f| {
        let mut g = f;
        for v in [FoVar(1), FoVar(2)] {
            g = FoFormula::exists(v, g);
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Double negation and De Morgan at the evaluation level.
    #[test]
    fn boolean_laws((n, edges) in small_graph(), f in random_formula(), g in random_formula()) {
        let d = graph(n, &edges);
        for e in d.dom() {
            let x = FoVar(0);
            let vf = fo_selects(&d, &f, x, e);
            prop_assert_eq!(fo_selects(&d, &f.clone().not().not(), x, e), vf);
            let vg = fo_selects(&d, &g, x, e);
            let and = FoFormula::And(vec![f.clone(), g.clone()]);
            let nor = FoFormula::Or(vec![f.clone().not(), g.clone().not()]).not();
            prop_assert_eq!(fo_selects(&d, &and, x, e), vf && vg);
            prop_assert_eq!(fo_selects(&d, &nor, x, e), vf && vg, "De Morgan");
        }
    }

    /// ∃ and ∀ are dual through negation.
    #[test]
    fn quantifier_duality((n, edges) in small_graph(), f in random_formula()) {
        let d = graph(n, &edges);
        let v = FoVar(1);
        let ex = FoFormula::exists(v, f.clone());
        let dual = FoFormula::forall(v, f.clone().not()).not();
        for e in d.dom() {
            prop_assert_eq!(
                fo_selects(&d, &ex, FoVar(0), e),
                fo_selects(&d, &dual, FoVar(0), e)
            );
        }
    }

    /// Describing formulas characterize pointed isomorphism — checked
    /// against the independent iso solver on random pairs.
    #[test]
    fn describing_formula_is_pointed_iso(
        (n1, e1) in small_graph(),
        (n2, e2) in small_graph(),
        i in 0usize..3,
        j in 0usize..3,
    ) {
        let d1 = graph(n1, &e1);
        let d2 = graph(n2, &e2);
        let a = Val((i % n1) as u32);
        let b = Val((j % n2) as u32);
        let delta = describing_formula(&d1, a);
        prop_assert_eq!(
            fo_selects(&d2, &delta, FoVar(0), b),
            isomorphic(&d1, &d2, &[(a, b)])
        );
    }

    /// Proposition 8.1 end-to-end on random labeled graphs: the single
    /// feature exists iff no pos/neg orbit collision, and when it exists
    /// it reproduces the labels.
    #[test]
    fn single_feature_generation((n, edges) in small_graph(), mask in 0u32..16) {
        let d = graph(n, &edges);
        let mut labeling = Labeling::new();
        for (idx, e) in d.entities().into_iter().enumerate() {
            labeling.set(
                e,
                if mask & (1 << idx) != 0 { Label::Positive } else { Label::Negative },
            );
        }
        let t = TrainingDb::new(d, labeling);
        match fo_single_feature(&t) {
            Some(f) => {
                for e in t.entities() {
                    prop_assert_eq!(
                        fo_selects(&t.db, &f, FoVar(0), e),
                        t.labeling.get(e) == Label::Positive
                    );
                }
            }
            None => {
                // There must be an automorphic pos/neg pair.
                let collision = t.opposing_pairs().into_iter().any(|(p, q)| {
                    relational::iso::same_orbit(&t.db, p, q)
                });
                prop_assert!(collision);
            }
        }
    }
}
