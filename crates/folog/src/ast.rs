//! FO formula syntax: relational atoms, equality, Boolean connectives,
//! and quantifiers. Variables are plain indices; constants do not occur
//! (matching the paper's constant-free query languages).

use relational::RelId;
use std::fmt;

/// A first-order variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FoVar(pub u32);

impl FoVar {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A first-order formula over a relational schema, with equality.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FoFormula {
    /// `R(x̄)`.
    Atom(RelId, Vec<FoVar>),
    /// `x = y`.
    Eq(FoVar, FoVar),
    Not(Box<FoFormula>),
    And(Vec<FoFormula>),
    Or(Vec<FoFormula>),
    Exists(FoVar, Box<FoFormula>),
    Forall(FoVar, Box<FoFormula>),
}

impl FoFormula {
    /// `⊤` as the empty conjunction.
    pub fn top() -> FoFormula {
        FoFormula::And(Vec::new())
    }

    /// `⊥` as the empty disjunction.
    pub fn bottom() -> FoFormula {
        FoFormula::Or(Vec::new())
    }

    // Builder-style DSL constructor, deliberately named like the
    // connective (`f.not()`), not an `ops::Not` impl.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> FoFormula {
        FoFormula::Not(Box::new(self))
    }

    pub fn exists(v: FoVar, body: FoFormula) -> FoFormula {
        FoFormula::Exists(v, Box::new(body))
    }

    pub fn forall(v: FoVar, body: FoFormula) -> FoFormula {
        FoFormula::Forall(v, Box::new(body))
    }

    /// Free variables (those not captured by a quantifier above them).
    pub fn free_vars(&self) -> Vec<FoVar> {
        let mut out = Vec::new();
        self.collect_free(&mut Vec::new(), &mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_free(&self, bound: &mut Vec<FoVar>, out: &mut Vec<FoVar>) {
        match self {
            FoFormula::Atom(_, args) => {
                for v in args {
                    if !bound.contains(v) {
                        out.push(*v);
                    }
                }
            }
            FoFormula::Eq(a, b) => {
                for v in [a, b] {
                    if !bound.contains(v) {
                        out.push(*v);
                    }
                }
            }
            FoFormula::Not(f) => f.collect_free(bound, out),
            FoFormula::And(fs) | FoFormula::Or(fs) => {
                for f in fs {
                    f.collect_free(bound, out);
                }
            }
            FoFormula::Exists(v, f) | FoFormula::Forall(v, f) => {
                bound.push(*v);
                f.collect_free(bound, out);
                bound.pop();
            }
        }
    }

    /// Number of quantifier nodes (a rough evaluation-cost predictor).
    pub fn quantifier_count(&self) -> usize {
        match self {
            FoFormula::Atom(..) | FoFormula::Eq(..) => 0,
            FoFormula::Not(f) => f.quantifier_count(),
            FoFormula::And(fs) | FoFormula::Or(fs) => fs.iter().map(|f| f.quantifier_count()).sum(),
            FoFormula::Exists(_, f) | FoFormula::Forall(_, f) => 1 + f.quantifier_count(),
        }
    }

    /// Render against a schema (for relation names).
    pub fn display<'a>(&'a self, schema: &'a relational::Schema) -> impl fmt::Display + 'a {
        DisplayFo { f: self, schema }
    }
}

struct DisplayFo<'a> {
    f: &'a FoFormula,
    schema: &'a relational::Schema,
}

impl fmt::Display for DisplayFo<'_> {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(
            f: &FoFormula,
            schema: &relational::Schema,
            out: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            match f {
                FoFormula::Atom(rel, args) => {
                    write!(out, "{}(", schema.name(*rel))?;
                    for (i, v) in args.iter().enumerate() {
                        if i > 0 {
                            write!(out, ",")?;
                        }
                        write!(out, "x{}", v.0)?;
                    }
                    write!(out, ")")
                }
                FoFormula::Eq(a, b) => write!(out, "x{} = x{}", a.0, b.0),
                FoFormula::Not(g) => {
                    write!(out, "¬(")?;
                    go(g, schema, out)?;
                    write!(out, ")")
                }
                FoFormula::And(fs) if fs.is_empty() => write!(out, "⊤"),
                FoFormula::Or(fs) if fs.is_empty() => write!(out, "⊥"),
                FoFormula::And(fs) | FoFormula::Or(fs) => {
                    let sep = if matches!(f, FoFormula::And(_)) {
                        " ∧ "
                    } else {
                        " ∨ "
                    };
                    write!(out, "(")?;
                    for (i, g) in fs.iter().enumerate() {
                        if i > 0 {
                            write!(out, "{sep}")?;
                        }
                        go(g, schema, out)?;
                    }
                    write!(out, ")")
                }
                FoFormula::Exists(v, g) => {
                    write!(out, "∃x{} ", v.0)?;
                    go(g, schema, out)
                }
                FoFormula::Forall(v, g) => {
                    write!(out, "∀x{} ", v.0)?;
                    go(g, schema, out)
                }
            }
        }
        go(self.f, self.schema, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::Schema;

    fn schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s
    }

    #[test]
    fn free_vars_respect_binders() {
        let s = schema();
        let e = s.rel_by_name("E").unwrap();
        // ∃x1 (E(x0, x1) ∧ x1 = x2)
        let f = FoFormula::exists(
            FoVar(1),
            FoFormula::And(vec![
                FoFormula::Atom(e, vec![FoVar(0), FoVar(1)]),
                FoFormula::Eq(FoVar(1), FoVar(2)),
            ]),
        );
        assert_eq!(f.free_vars(), vec![FoVar(0), FoVar(2)]);
        assert_eq!(f.quantifier_count(), 1);
    }

    #[test]
    fn display_is_readable() {
        let s = schema();
        let e = s.rel_by_name("E").unwrap();
        let f = FoFormula::forall(FoVar(1), FoFormula::Atom(e, vec![FoVar(0), FoVar(1)]).not());
        assert_eq!(format!("{}", f.display(&s)), "∀x1 ¬(E(x0,x1))");
        assert_eq!(format!("{}", FoFormula::top().display(&s)), "⊤");
        assert_eq!(format!("{}", FoFormula::bottom().display(&s)), "⊥");
    }
}
