//! First-order logic over relational databases — the feature language of
//! §8 of Barceló et al. (PODS 2019).
//!
//! The paper's §8 studies separability when feature queries range over
//! FO and its fragments. Deciding FO-separability needs only the
//! automorphism-orbit machinery (in `relational::iso`), but Proposition
//! 8.1 — the *dimension collapse* — says more: a single FO feature always
//! suffices. This crate makes that constructive:
//!
//! * [`ast`] — FO formulas with equality (∧ ∨ ¬ ∃ ∀), plus a `Display`
//!   rendering;
//! * [`eval`] — a backtracking model checker (`D ⊨ φ[e]`), exact and
//!   exponential only in quantifier depth (FO model checking is
//!   PSPACE-complete; the formulas used here are evaluated on the small
//!   structures the algorithms produce);
//! * [`describe`] — the *describing formula* `δ_{D,e}(x)`, true at `f` in
//!   `D'` iff `(D', f) ≅ (D, e)` as pointed structures — the classic
//!   fact that finite structures are FO-definable up to isomorphism;
//! * [`generate`] — the single-feature FO statistic of Proposition 8.1:
//!   the disjunction of the positive entities' describing formulas.

pub mod ast;
pub mod describe;
pub mod eval;
pub mod generate;

pub use ast::{FoFormula, FoVar};
pub use describe::describing_formula;
pub use eval::{fo_selects, satisfies};
pub use generate::fo_single_feature;
