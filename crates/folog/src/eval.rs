//! FO model checking: `D ⊨ φ[ā]` by recursive evaluation.
//!
//! Exact; cost is `O(|dom|^q)` for `q` nested quantifiers (FO model
//! checking is PSPACE-complete in general). The separability algorithms
//! only evaluate formulas on small structures, and the test suite
//! cross-validates against the game/orbit machinery.

use crate::ast::{FoFormula, FoVar};
use relational::{Database, Val};
use std::collections::HashMap;

/// Does `d ⊨ f` under the given (partial) assignment of free variables?
///
/// # Panics
/// Panics if a free variable of `f` is unassigned when reached.
pub fn satisfies(d: &Database, f: &FoFormula, assignment: &HashMap<FoVar, Val>) -> bool {
    let mut env = assignment.clone();
    eval(d, f, &mut env)
}

fn eval(d: &Database, f: &FoFormula, env: &mut HashMap<FoVar, Val>) -> bool {
    match f {
        FoFormula::Atom(rel, args) => {
            let vals: Vec<Val> = args
                .iter()
                .map(|v| {
                    *env.get(v)
                        .unwrap_or_else(|| panic!("unbound variable x{}", v.0))
                })
                .collect();
            d.has_fact(*rel, &vals)
        }
        FoFormula::Eq(a, b) => {
            let va = *env
                .get(a)
                .unwrap_or_else(|| panic!("unbound variable x{}", a.0));
            let vb = *env
                .get(b)
                .unwrap_or_else(|| panic!("unbound variable x{}", b.0));
            va == vb
        }
        FoFormula::Not(g) => !eval(d, g, env),
        FoFormula::And(fs) => fs.iter().all(|g| eval(d, g, env)),
        FoFormula::Or(fs) => fs.iter().any(|g| eval(d, g, env)),
        FoFormula::Exists(v, g) => {
            let saved = env.get(v).copied();
            let mut found = false;
            for c in d.dom() {
                env.insert(*v, c);
                if eval(d, g, env) {
                    found = true;
                    break;
                }
            }
            restore(env, *v, saved);
            found
        }
        FoFormula::Forall(v, g) => {
            let saved = env.get(v).copied();
            let mut all = true;
            for c in d.dom() {
                env.insert(*v, c);
                if !eval(d, g, env) {
                    all = false;
                    break;
                }
            }
            restore(env, *v, saved);
            all
        }
    }
}

fn restore(env: &mut HashMap<FoVar, Val>, v: FoVar, saved: Option<Val>) {
    match saved {
        Some(x) => {
            env.insert(v, x);
        }
        None => {
            env.remove(&v);
        }
    }
}

/// Evaluate a unary FO feature: does `f` (with single free variable `x`)
/// select element `e` of `d`?
pub fn fo_selects(d: &Database, f: &FoFormula, x: FoVar, e: Val) -> bool {
    let mut env = HashMap::new();
    env.insert(x, e);
    satisfies(d, f, &env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{DbBuilder, Schema};

    fn schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s
    }

    fn db() -> Database {
        DbBuilder::new(schema())
            .fact("E", &["a", "b"])
            .fact("E", &["b", "c"])
            .entity("a")
            .entity("b")
            .entity("c")
            .build()
    }

    fn e_rel() -> relational::RelId {
        schema().rel_by_name("E").unwrap()
    }

    #[test]
    fn existential_out_edge() {
        let d = db();
        // φ(x0) = ∃x1 E(x0, x1).
        let f = FoFormula::exists(FoVar(1), FoFormula::Atom(e_rel(), vec![FoVar(0), FoVar(1)]));
        let sel: Vec<&str> = d
            .dom()
            .filter(|&v| fo_selects(&d, &f, FoVar(0), v))
            .map(|v| d.val_name(v))
            .collect();
        assert_eq!(sel, vec!["a", "b"]);
    }

    #[test]
    fn negation_flips() {
        let d = db();
        let f =
            FoFormula::exists(FoVar(1), FoFormula::Atom(e_rel(), vec![FoVar(0), FoVar(1)])).not();
        let c = d.val_by_name("c").unwrap();
        let a = d.val_by_name("a").unwrap();
        assert!(fo_selects(&d, &f, FoVar(0), c));
        assert!(!fo_selects(&d, &f, FoVar(0), a));
    }

    #[test]
    fn universal_sinks() {
        let d = db();
        // φ(x0) = ∀x1 ¬E(x0, x1): x0 is a sink.
        let f = FoFormula::forall(
            FoVar(1),
            FoFormula::Atom(e_rel(), vec![FoVar(0), FoVar(1)]).not(),
        );
        let sel: Vec<&str> = d
            .dom()
            .filter(|&v| fo_selects(&d, &f, FoVar(0), v))
            .map(|v| d.val_name(v))
            .collect();
        assert_eq!(sel, vec!["c"]);
    }

    #[test]
    fn equality_and_counting() {
        let d = db();
        // "x0 has at least two distinct out-neighbors": false everywhere
        // in the path.
        let f = FoFormula::exists(
            FoVar(1),
            FoFormula::exists(
                FoVar(2),
                FoFormula::And(vec![
                    FoFormula::Atom(e_rel(), vec![FoVar(0), FoVar(1)]),
                    FoFormula::Atom(e_rel(), vec![FoVar(0), FoVar(2)]),
                    FoFormula::Eq(FoVar(1), FoVar(2)).not(),
                ]),
            ),
        );
        assert!(d.dom().all(|v| !fo_selects(&d, &f, FoVar(0), v)));
        // Add a second out-edge from a; now a is selected.
        let d2 = DbBuilder::from_db(db()).fact("E", &["a", "c"]).build();
        let a = d2.val_by_name("a").unwrap();
        assert!(fo_selects(&d2, &f, FoVar(0), a));
    }

    #[test]
    fn top_bottom_and_shadowing() {
        let d = db();
        let a = d.val_by_name("a").unwrap();
        assert!(fo_selects(&d, &FoFormula::top(), FoVar(0), a));
        assert!(!fo_selects(&d, &FoFormula::bottom(), FoVar(0), a));
        // Shadowing: ∃x0 ¬(x0 = x0) is false and must not clobber the
        // outer binding of x0.
        let f = FoFormula::And(vec![
            FoFormula::exists(FoVar(0), FoFormula::Eq(FoVar(0), FoVar(0)).not()),
            FoFormula::Eq(FoVar(0), FoVar(0)),
        ]);
        assert!(!fo_selects(&d, &f, FoVar(0), a));
        let g = FoFormula::And(vec![
            FoFormula::exists(FoVar(0), FoFormula::Eq(FoVar(0), FoVar(0))),
            FoFormula::Eq(FoVar(0), FoVar(0)),
        ]);
        assert!(fo_selects(&d, &g, FoVar(0), a));
    }
}
