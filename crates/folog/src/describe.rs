//! Describing formulas: finite pointed structures are FO-definable up to
//! isomorphism.
//!
//! `δ_{D,e}(x)` asserts, of an element `x` in any database `D'` over the
//! same schema, that `(D', x) ≅ (D, e)`:
//!
//! 1. there exist elements `y_1 … y_{n-1}` (one per element of `D` other
//!    than `e`), pairwise distinct and distinct from `x`;
//! 2. the atomic diagram of `D` holds verbatim (facts positively, absent
//!    facts negatively — over the named elements);
//! 3. every element equals one of `x, y_1 … y_{n-1}` (domain exactness).
//!
//! Negative atoms are restricted to tuples over the named elements; with
//! (3) this pins the structure completely. Evaluation cost is
//! `O(|dom|^n)`, so describing formulas are a small-structure tool — the
//! point is constructiveness (Proposition 8.1), not speed; use
//! `relational::iso` for fast orbit tests.

use crate::ast::{FoFormula, FoVar};
use relational::{Database, Val};

/// Build `δ_{D,e}(x)` with free variable `x = FoVar(0)`.
///
/// Only the *active* domain of `D` plus `e` is described (elements in no
/// fact are invisible to constant-free FO anyway, except through domain
/// counting — including them would make the formula reject databases
/// with different numbers of isolated elements, which `relational::iso`
/// counts too; so we include every interned element for exact agreement
/// with pointed isomorphism).
pub fn describing_formula(d: &Database, e: Val) -> FoFormula {
    let x = FoVar(0);
    // Variable for each domain element; e gets x.
    let elems: Vec<Val> = d.dom().collect();
    let var_of = |v: Val| -> FoVar {
        if v == e {
            x
        } else {
            // Dense: elements before e shift by +1 (FoVar(0) is x).
            let idx = v.index();
            let shifted = if idx < e.index() { idx + 1 } else { idx };
            FoVar(shifted as u32)
        }
    };

    let mut conjuncts: Vec<FoFormula> = Vec::new();

    // (1) pairwise distinctness.
    for (i, &a) in elems.iter().enumerate() {
        for &b in elems.iter().skip(i + 1) {
            conjuncts.push(FoFormula::Eq(var_of(a), var_of(b)).not());
        }
    }

    // (2) atomic diagram: positive facts, then negative tuples.
    for f in d.facts() {
        conjuncts.push(FoFormula::Atom(
            f.rel,
            f.args.iter().map(|&a| var_of(a)).collect(),
        ));
    }
    for rel in d.schema().rel_ids() {
        let arity = d.schema().arity(rel);
        // Enumerate all tuples over the named elements; assert absence
        // of non-facts.
        let mut counter = vec![0usize; arity];
        if elems.is_empty() {
            continue;
        }
        loop {
            let tuple: Vec<Val> = counter.iter().map(|&i| elems[i]).collect();
            if !d.has_fact(rel, &tuple) {
                conjuncts
                    .push(FoFormula::Atom(rel, tuple.iter().map(|&a| var_of(a)).collect()).not());
            }
            // Advance.
            let mut pos = 0;
            loop {
                if pos == arity {
                    break;
                }
                counter[pos] += 1;
                if counter[pos] < elems.len() {
                    break;
                }
                counter[pos] = 0;
                pos += 1;
            }
            if pos == arity {
                break;
            }
        }
    }

    // (3) domain exactness: ∀z (z = x ∨ z = y_1 ∨ …).
    let z = FoVar(elems.len() as u32 + 1);
    let eqs: Vec<FoFormula> = elems.iter().map(|&a| FoFormula::Eq(z, var_of(a))).collect();
    conjuncts.push(FoFormula::forall(z, FoFormula::Or(eqs)));

    // Wrap the y-variables existentially.
    let mut body = FoFormula::And(conjuncts);
    for &a in elems.iter().rev() {
        if a != e {
            body = FoFormula::exists(var_of(a), body);
        }
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::fo_selects;
    use relational::iso::isomorphic;
    use relational::{DbBuilder, Schema};

    fn schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s
    }

    fn graph(edges: &[(&str, &str)], entities: &[&str]) -> Database {
        let mut b = DbBuilder::new(schema());
        for &(x, y) in edges {
            b = b.fact("E", &[x, y]);
        }
        for &e in entities {
            b = b.entity(e);
        }
        b.build()
    }

    #[test]
    fn describes_exactly_the_pointed_iso_type() {
        // δ agrees with the iso solver across a family of small pointed
        // structures — two independent implementations of one notion.
        let shapes: Vec<Database> = vec![
            graph(&[("a", "b")], &["a", "b"]),
            graph(&[("a", "b"), ("b", "a")], &["a", "b"]),
            graph(&[("a", "b"), ("b", "c")], &["a", "b", "c"]),
            graph(&[("a", "a")], &["a"]),
        ];
        for d1 in &shapes {
            for e in d1.dom() {
                let delta = describing_formula(d1, e);
                for d2 in &shapes {
                    for f in d2.dom() {
                        let by_formula = fo_selects(d2, &delta, FoVar(0), f);
                        let by_iso = isomorphic(d1, d2, &[(e, f)]);
                        assert_eq!(
                            by_formula,
                            by_iso,
                            "δ disagrees with iso: {d1:?}@{} vs {d2:?}@{}",
                            d1.val_name(e),
                            d2.val_name(f)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn describing_formula_selects_its_own_orbit() {
        // On a 4-cycle, δ_{D,a} selects exactly a's automorphism orbit —
        // which is all four vertices.
        let c4 = graph(&[("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")], &[]);
        let a = c4.val_by_name("a").unwrap();
        let delta = describing_formula(&c4, a);
        for v in c4.dom() {
            assert!(
                fo_selects(&c4, &delta, FoVar(0), v),
                "cycle symmetry: {} must satisfy δ_a",
                c4.val_name(v)
            );
        }
        // On a path, the endpoints are NOT in the middle's orbit.
        let p = graph(&[("s", "m"), ("m", "t")], &[]);
        let m = p.val_by_name("m").unwrap();
        let s = p.val_by_name("s").unwrap();
        let delta = describing_formula(&p, m);
        assert!(fo_selects(&p, &delta, FoVar(0), m));
        assert!(!fo_selects(&p, &delta, FoVar(0), s));
    }

    #[test]
    fn domain_size_is_part_of_the_type() {
        // δ of a one-loop structure rejects elements of a two-loop
        // structure (domain exactness).
        let one = graph(&[("l", "l")], &[]);
        let two = graph(&[("l", "l"), ("m", "m")], &[]);
        let l1 = one.val_by_name("l").unwrap();
        let delta = describing_formula(&one, l1);
        let l2 = two.val_by_name("l").unwrap();
        assert!(!fo_selects(&two, &delta, FoVar(0), l2));
        assert!(fo_selects(&one, &delta, FoVar(0), l1));
    }
}
