//! The constructive content of Proposition 8.1: an FO-separable training
//! database is separated by a statistic with a **single** FO feature.
//!
//! The feature is simply the disjunction of the describing formulas of
//! the positive entities (one per automorphism orbit): it selects exactly
//! the elements whose pointed type matches a positive example, and
//! FO-separability (= no positive/negative orbit collision) makes that
//! selection agree with the labels.

use crate::ast::{FoFormula, FoVar};
use crate::describe::describing_formula;
use relational::iso::same_orbit;
use relational::TrainingDb;

/// Build the single-feature FO statistic for an FO-separable training
/// database; `None` if it is not FO-separable. The formula's free
/// variable is `FoVar(0)`.
pub fn fo_single_feature(train: &TrainingDb) -> Option<FoFormula> {
    let positives = train.positives();
    let negatives = train.negatives();
    for &p in &positives {
        for &n in &negatives {
            if same_orbit(&train.db, p, n) {
                return None;
            }
        }
    }
    // One describing formula per positive orbit.
    let mut reps: Vec<relational::Val> = Vec::new();
    for &p in &positives {
        if !reps.iter().any(|&r| same_orbit(&train.db, r, p)) {
            reps.push(p);
        }
    }
    Some(FoFormula::Or(
        reps.into_iter()
            .map(|e| describing_formula(&train.db, e))
            .collect(),
    ))
}

/// The free variable convention of [`fo_single_feature`].
pub fn feature_var() -> FoVar {
    FoVar(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::fo_selects;
    use relational::{DbBuilder, Label, Schema};

    fn schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s
    }

    #[test]
    fn single_feature_reproduces_labels() {
        let t = DbBuilder::new(schema())
            .fact("E", &["a", "b"])
            .fact("E", &["b", "c"])
            .positive("a")
            .positive("b")
            .negative("c")
            .training();
        let f = fo_single_feature(&t).expect("path positions are FO-distinct");
        for e in t.entities() {
            let selected = fo_selects(&t.db, &f, feature_var(), e);
            assert_eq!(
                selected,
                t.labeling.get(e) == Label::Positive,
                "{}",
                t.db.val_name(e)
            );
        }
    }

    #[test]
    fn inseparable_returns_none() {
        // Automorphic opposite-labeled pair: two disjoint loops.
        let t = DbBuilder::new(schema())
            .fact("E", &["u", "u"])
            .fact("E", &["v", "v"])
            .positive("u")
            .negative("v")
            .training();
        assert!(fo_single_feature(&t).is_none());
    }

    #[test]
    fn orbit_deduplication_shrinks_the_disjunction() {
        // Two automorphic positives need only one disjunct.
        let t = DbBuilder::new(schema())
            .fact("E", &["p1", "q1"])
            .fact("E", &["p2", "q2"])
            .positive("p1")
            .positive("p2")
            .negative("q1")
            .negative("q2")
            .training();
        let f = fo_single_feature(&t).unwrap();
        match &f {
            FoFormula::Or(ds) => assert_eq!(ds.len(), 1, "one orbit, one disjunct"),
            other => panic!("expected a disjunction, got {other:?}"),
        }
        for e in t.entities() {
            assert_eq!(
                fo_selects(&t.db, &f, feature_var(), e),
                t.labeling.get(e) == Label::Positive
            );
        }
    }

    #[test]
    fn feature_transfers_to_isomorphic_eval_data() {
        let t = DbBuilder::new(schema())
            .fact("E", &["a", "b"])
            .positive("a")
            .negative("b")
            .training();
        let f = fo_single_feature(&t).unwrap();
        let eval = DbBuilder::new(schema())
            .fact("E", &["u", "v"])
            .entity("u")
            .entity("v")
            .build();
        let u = eval.val_by_name("u").unwrap();
        let v = eval.val_by_name("v").unwrap();
        assert!(fo_selects(&eval, &f, feature_var(), u));
        assert!(!fo_selects(&eval, &f, feature_var(), v));
    }
}
