//! `GHW(k)`-QBE: bounded-width explanations (Theorem 6.1, EXPTIME case).
//!
//! By Proposition 5.2, a `GHW(k)` query true on the product point `(P, ā)`
//! transfers to `(D, b)` iff `(P, ā) →_k (D, b)`. Since every `GHW(k)`
//! query true on all of `S⁺` is true at `(P, ā)` (compose with the
//! projections), an explanation exists iff `(P, ā) ↛_k (D, b)` for every
//! negative `b`. The decision is the product (exponential in `|S⁺|`) plus
//! polynomially many cover games — the paper's EXPTIME upper bound.
//!
//! Explanations are assembled by conjoining the Spoiler-strategy
//! extractions for each negative; the conjunction of `GHW(k)` queries
//! stays in `GHW(k)`.

use crate::error::QbeError;
use covergame::{cover_implies, extract_distinguishing_query, ExtractError};
use cq::Cq;
use relational::{pointed_power, Database, Val};

/// A `→_k` oracle: `game(d, ā, d2, b̄, k)` answers `(d, ā) →_k (d2, b̄)`.
/// The plain entry points pass the raw fixpoint solver; an engine passes
/// its cached lookup. Must be exact.
pub type GameOracle<'o> = &'o (dyn Fn(&Database, &[Val], &Database, &[Val], usize) -> bool + Sync);

/// Decide whether a `GHW(k)` explanation for `(D, S⁺, S⁻)` exists.
pub fn ghw_qbe_decide(
    d: &Database,
    pos: &[Val],
    neg: &[Val],
    k: usize,
    product_budget: usize,
) -> Result<bool, QbeError> {
    ghw_qbe_decide_via(
        &|g, a, g2, b, kk| cover_implies(g, a, g2, b, kk),
        d,
        pos,
        neg,
        k,
        product_budget,
    )
}

/// [`ghw_qbe_decide`] with the cover-game tests routed through a
/// caller-supplied oracle. (There is no `_via` variant of
/// [`ghw_qbe_explain`]: extraction unfolds Spoiler's strategy from the
/// *analyzed game*, which a verdict oracle cannot supply.)
pub fn ghw_qbe_decide_via(
    game: GameOracle,
    d: &Database,
    pos: &[Val],
    neg: &[Val],
    k: usize,
    product_budget: usize,
) -> Result<bool, QbeError> {
    if pos.is_empty() {
        return Err(QbeError::EmptyPositives);
    }
    let (p, point) = pointed_power(d, pos, product_budget)?;
    Ok(neg.iter().all(|&b| !game(&p, &[point], d, &[b], k)))
}

/// Produce a `GHW(k)` explanation, or `None` when none exists.
///
/// `extract_budget` bounds each per-negative strategy unfolding;
/// explanations can be exponentially large even when the decision is
/// cheap — that asymmetry is the point of §5.2/§6.2.
pub fn ghw_qbe_explain(
    d: &Database,
    pos: &[Val],
    neg: &[Val],
    k: usize,
    product_budget: usize,
    extract_budget: usize,
) -> Result<Option<Cq>, QbeError> {
    if pos.is_empty() {
        return Err(QbeError::EmptyPositives);
    }
    let (p, point) = pointed_power(d, pos, product_budget)?;
    let mut acc: Option<Cq> = None;
    for &b in neg {
        match extract_distinguishing_query(&p, point, d, b, k, extract_budget) {
            Ok((q, _)) => {
                acc = Some(match acc {
                    None => q,
                    Some(prev) => prev.conjoin(&q),
                });
            }
            Err(ExtractError::DuplicatorWins) => return Ok(None),
            Err(ExtractError::Budget { nodes }) => return Err(QbeError::ExtractBudget { nodes }),
        }
    }
    // No negatives: the trivial query over the schema explains.
    Ok(Some(acc.unwrap_or_else(|| trivial_query(d))))
}

/// A query satisfied by every element: `q(x) :- η(x)` on entity schemas,
/// or the identity-style one-atom query otherwise.
fn trivial_query(d: &Database) -> Cq {
    if d.schema().entity_rel().is_some() {
        Cq::entity_only(d.schema().clone())
    } else {
        // Any single relation with facts gives ∃ȳ R(ȳ); if the database
        // is empty, an entity-less trivial query cannot be formed — fall
        // back to an empty-body-free query via a fully-existential atom
        // over the first relation.
        let rel = d
            .schema()
            .rel_ids()
            .next()
            .expect("schema must have at least one relation");
        let arity = d.schema().arity(rel);
        let atoms = vec![cq::Atom::new(
            rel,
            (1..=arity as u32).map(cq::Var).collect(),
        )];
        Cq::new(d.schema().clone(), vec![cq::Var(0)], atoms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::{evaluate_unary, ghw};
    use relational::{DbBuilder, Schema};

    fn schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s
    }

    fn v(d: &Database, n: &str) -> Val {
        d.val_by_name(n).unwrap()
    }

    #[test]
    fn cycle_membership_needs_width_two() {
        // D: a triangle and a long path; distinguish triangle vertices
        // from path vertices.
        let d = DbBuilder::new(schema())
            .fact("E", &["t1", "t2"])
            .fact("E", &["t2", "t3"])
            .fact("E", &["t3", "t1"])
            .fact("E", &["p1", "p2"])
            .fact("E", &["p2", "p3"])
            .fact("E", &["p3", "p4"])
            .entity("t1")
            .entity("t2")
            .entity("p2")
            .build();
        let (t1, t2, p2) = (v(&d, "t1"), v(&d, "t2"), v(&d, "p2"));
        // Width 1: positives on the triangle can walk forever; so can no
        // path element for long, but GHW(1) includes cycles through the
        // free variable — "x lies on a directed 3-cycle" is width 1!
        // (bags {y,z} covered by E(y,z)). So already k=1 explains.
        assert!(ghw_qbe_decide(&d, &[t1, t2], &[p2], 1, 100_000).unwrap());
        let q = ghw_qbe_explain(&d, &[t1, t2], &[p2], 1, 100_000, 100_000)
            .unwrap()
            .expect("explanation exists");
        let sel = evaluate_unary(&q, &d);
        assert!(sel.contains(&t1) && sel.contains(&t2) && !sel.contains(&p2));
        assert!(ghw(&q) <= 1, "extracted explanation must be width ≤ 1");
    }

    #[test]
    fn diamond_folds_so_nothing_separates() {
        // The diamond E(x,y1),E(x,y2),E(y1,w),E(y2,w) folds onto the path
        // E(x,y),E(y,w) — CQs cannot demand distinctness — so the diamond
        // apex is NOT CQ-separable from a plain path start, and the GHW(k)
        // hierarchy (⊆ CQ) must agree at every k.
        let d = DbBuilder::new(schema())
            .fact("E", &["a", "y1"])
            .fact("E", &["a", "y2"])
            .fact("E", &["y1", "w"])
            .fact("E", &["y2", "w"])
            .fact("E", &["b", "z"])
            .fact("E", &["z", "u"])
            .entity("a")
            .entity("b")
            .build();
        let (a, b) = (v(&d, "a"), v(&d, "b"));
        let cq_ans = crate::product_hom::cq_qbe_decide(&d, &[a], &[b], 100_000).unwrap();
        assert!(!cq_ans, "the diamond folds onto b's path");
        for k in 1..=2 {
            assert!(
                !ghw_qbe_decide(&d, &[a], &[b], k, 100_000).unwrap(),
                "GHW({k}) cannot beat CQ"
            );
        }
        // The reverse direction separates: b reaches depth 2 without
        // reconvergence... actually a also has a 2-path; b vs a differ in
        // *in*-degrees of successors only, which folds too. Instead check
        // a genuinely separable pair: w (a sink with in-degree 2) vs b.
        let w = v(&d, "w");
        assert!(crate::product_hom::cq_qbe_decide(&d, &[b], &[w], 100_000).unwrap());
        assert!(ghw_qbe_decide(&d, &[b], &[w], 1, 100_000).unwrap());
    }

    #[test]
    fn ghw_no_cq_yes() {
        // A case where a CQ explanation exists but no GHW(1) one: the
        // diamond with *unlabeled* middle forced... build positives whose
        // only common distinguishing pattern has ghw 2:
        // positives: center of a diamond-with-apex; negative: center of
        // the same shape with the reconvergence split.
        let d = DbBuilder::new(schema())
            // positive gadget: x -> y1 -> w, x -> y2 -> w (reconverges)
            .fact("E", &["p", "m1"])
            .fact("E", &["p", "m2"])
            .fact("E", &["m1", "end"])
            .fact("E", &["m2", "end"])
            // negative gadget: same but diverging ends
            .fact("E", &["n", "k1"])
            .fact("E", &["n", "k2"])
            .fact("E", &["k1", "e1"])
            .fact("E", &["k2", "e2"])
            .entity("p")
            .entity("n")
            .build();
        let (p, n) = (v(&d, "p"), v(&d, "n"));
        // CQ: the diamond q(x) :- E(x,y1),E(x,y2),E(y1,w),E(y2,w)...
        // actually that folds: y1=y2 makes it a path, which n satisfies.
        // The real distinguisher needs distinctness CQs cannot express,
        // so CQ-QBE should say NO here. Interesting case regardless:
        let cq_ans = crate::product_hom::cq_qbe_decide(&d, &[p], &[n], 100_000).unwrap();
        let g1 = ghw_qbe_decide(&d, &[p], &[n], 1, 100_000).unwrap();
        let g2 = ghw_qbe_decide(&d, &[p], &[n], 2, 100_000).unwrap();
        // GHW(k) ⊆ CQ: no CQ explanation -> no GHW(k) explanation.
        if !cq_ans {
            assert!(!g1 && !g2);
        }
        // Consistency of the hierarchy.
        if g1 {
            assert!(g2);
        }
    }

    #[test]
    fn no_negatives_trivial_explanation() {
        let d = DbBuilder::new(schema())
            .fact("E", &["a", "b"])
            .entity("a")
            .build();
        let a = v(&d, "a");
        let q = ghw_qbe_explain(&d, &[a], &[], 1, 1000, 1000)
            .unwrap()
            .unwrap();
        assert!(evaluate_unary(&q, &d).contains(&a));
    }

    #[test]
    fn errors_propagate() {
        let d = DbBuilder::new(schema())
            .fact("E", &["a", "b"])
            .entity("a")
            .build();
        let a = v(&d, "a");
        assert_eq!(
            ghw_qbe_decide(&d, &[], &[a], 1, 1000),
            Err(QbeError::EmptyPositives)
        );
        // Force a blowup: 4 E-facts to the 6th power is 4096 > 10.
        let big = DbBuilder::new(schema())
            .fact("E", &["a", "b"])
            .fact("E", &["b", "c"])
            .fact("E", &["c", "d"])
            .fact("E", &["d", "a"])
            .entity("a")
            .build();
        let ba = v(&big, "a");
        assert!(matches!(
            ghw_qbe_decide(&big, &[ba; 6], &[ba], 1, 10),
            Err(QbeError::ProductTooLarge { .. })
        ));
    }
}
