//! Error type shared by the QBE solvers.

use relational::ProductError;
use std::fmt;

/// Failure modes of the QBE algorithms. All of them reflect genuine
/// complexity walls of the problem (Theorem 6.1), not implementation
/// shortcuts: the caller chooses how much exponential blowup to allow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QbeError {
    /// `S⁺` is empty; the product characterization needs at least one
    /// positive example.
    EmptyPositives,
    /// The direct product `∏_{a∈S⁺}(D,a)` exceeded the fact budget.
    ProductTooLarge { budget: usize },
    /// A `GHW(k)` explanation exists but its extraction exceeded the node
    /// budget (explanations can be exponentially large; cf. Theorem 6.7).
    ExtractBudget { nodes: usize },
}

impl fmt::Display for QbeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QbeError::EmptyPositives => write!(f, "QBE requires a nonempty S+"),
            QbeError::ProductTooLarge { budget } => {
                write!(f, "direct product exceeds the fact budget of {budget}")
            }
            QbeError::ExtractBudget { nodes } => {
                write!(f, "explanation extraction exceeded {nodes} nodes")
            }
        }
    }
}

impl std::error::Error for QbeError {}

impl From<ProductError> for QbeError {
    fn from(e: ProductError) -> QbeError {
        match e {
            ProductError::TooLarge { budget } => QbeError::ProductTooLarge { budget },
            ProductError::Empty => QbeError::EmptyPositives,
        }
    }
}
