//! Query-by-Example (QBE) solvers (§6.1 of Barceló et al., PODS 2019).
//!
//! Given a database `D` and unary relations `S⁺`, `S⁻`, an
//! `L`-*explanation* is a query `q ∈ L` with `S⁺ ⊆ q(D)` and
//! `q(D) ∩ S⁻ = ∅`. Theorem 6.1 (ten Cate–Dalmau, Willard,
//! Barceló–Romero) pins the complexity: coNEXPTIME-complete for CQ,
//! EXPTIME-complete for `GHW(k)`; Proposition 6.11 adds NP-completeness
//! for `CQ[m]`. Lemma 6.5 then transfers all of these to the
//! bounded-dimension separability problems — the reduction lives in the
//! `cqsep` crate.
//!
//! The algorithmic core is the **product homomorphism** characterization:
//! the direct product `P = ∏_{a ∈ S⁺} (D, a)` with point `ā` is the most
//! specific pointed structure all positives embed into, so
//!
//! * a CQ explanation exists iff `(P, ā) ↛ (D, b)` for every `b ∈ S⁻`
//!   (and then the canonical CQ of `(P, ā)` is one);
//! * a `GHW(k)` explanation exists iff `(P, ā) ↛_k (D, b)` for every
//!   `b ∈ S⁻` (Proposition 5.2), with an explanation assembled by
//!   conjoining cover-game extractions.
//!
//! The product is exponential in `|S⁺|` — exactly the coNEXPTIME/EXPTIME
//! wall — so all entry points take explicit budgets and fail loudly.

pub mod cqm;
pub mod error;
pub mod ghw;
pub mod product_hom;

pub use cqm::{cqm_qbe, cqm_qbe_accepts, cqm_qbe_candidates};
pub use error::QbeError;
pub use ghw::{ghw_qbe_decide, ghw_qbe_decide_via, ghw_qbe_explain, GameOracle};
pub use product_hom::{
    cq_qbe_decide, cq_qbe_decide_via, cq_qbe_explain, cq_qbe_explain_via, HomOracle,
};
