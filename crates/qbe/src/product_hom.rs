//! CQ-QBE via the product homomorphism problem (ten Cate–Dalmau [32]).
//!
//! The canonical CQ `q_P(x)` of the pointed product `P = ∏_{a∈S⁺}(D,a)`
//! satisfies every positive example by the projection homomorphisms, and
//! is the logically strongest such CQ. Hence an explanation exists iff
//! `q_P` itself avoids all negatives, i.e. `(P, ā) ↛ (D, b)` for each
//! `b ∈ S⁻`. The homomorphism tests are NP; the product is exponential in
//! `|S⁺|` — together, the paper's coNEXPTIME upper bound.

use crate::error::QbeError;
use cq::Cq;
use relational::{homomorphism_exists, pointed_power, Database, Val};

/// A homomorphism-existence oracle: `hom(from, to, fixed)` answers
/// "does a hom `from → to` extending `fixed` exist?". The plain entry
/// points pass the raw solver; an engine passes its (possibly cached,
/// possibly deliberately uncached) lookup so product-hom tests share its
/// memo table and counters. The oracle must be exact — QBE correctness
/// rides on it.
pub type HomOracle<'o> = &'o (dyn Fn(&Database, &Database, &[(Val, Val)]) -> bool + Sync);

/// Decide whether a CQ explanation for `(D, S⁺, S⁻)` exists.
pub fn cq_qbe_decide(
    d: &Database,
    pos: &[Val],
    neg: &[Val],
    product_budget: usize,
) -> Result<bool, QbeError> {
    cq_qbe_decide_via(
        &|f, t, x| homomorphism_exists(f, t, x),
        d,
        pos,
        neg,
        product_budget,
    )
}

/// [`cq_qbe_decide`] with the homomorphism tests routed through a
/// caller-supplied oracle.
pub fn cq_qbe_decide_via(
    hom: HomOracle,
    d: &Database,
    pos: &[Val],
    neg: &[Val],
    product_budget: usize,
) -> Result<bool, QbeError> {
    if pos.is_empty() {
        return Err(QbeError::EmptyPositives);
    }
    let (p, point) = pointed_power(d, pos, product_budget)?;
    Ok(neg.iter().all(|&b| !hom(&p, d, &[(point, b)])))
}

/// Produce a CQ explanation, or `None` if none exists. The returned query
/// is the canonical CQ of the product — correct but large; callers that
/// only need the decision should use [`cq_qbe_decide`].
pub fn cq_qbe_explain(
    d: &Database,
    pos: &[Val],
    neg: &[Val],
    product_budget: usize,
) -> Result<Option<Cq>, QbeError> {
    cq_qbe_explain_via(
        &|f, t, x| homomorphism_exists(f, t, x),
        d,
        pos,
        neg,
        product_budget,
    )
}

/// [`cq_qbe_explain`] with the homomorphism tests routed through a
/// caller-supplied oracle.
pub fn cq_qbe_explain_via(
    hom: HomOracle,
    d: &Database,
    pos: &[Val],
    neg: &[Val],
    product_budget: usize,
) -> Result<Option<Cq>, QbeError> {
    if pos.is_empty() {
        return Err(QbeError::EmptyPositives);
    }
    let (p, point) = pointed_power(d, pos, product_budget)?;
    for &b in neg {
        if hom(&p, d, &[(point, b)]) {
            return Ok(None);
        }
    }
    Ok(Some(Cq::from_pointed_db(&p, point)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::evaluate_unary;
    use relational::{DbBuilder, Schema};

    fn schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s.add_relation("R", 1);
        s
    }

    fn db() -> Database {
        // a, b have R; c does not. a -> b -> c edge chain.
        DbBuilder::new(schema())
            .fact("R", &["a"])
            .fact("R", &["b"])
            .fact("E", &["a", "b"])
            .fact("E", &["b", "c"])
            .entity("a")
            .entity("b")
            .entity("c")
            .build()
    }

    fn v(d: &Database, n: &str) -> Val {
        d.val_by_name(n).unwrap()
    }

    #[test]
    fn r_property_explains() {
        let d = db();
        let (a, b, c) = (v(&d, "a"), v(&d, "b"), v(&d, "c"));
        assert!(cq_qbe_decide(&d, &[a, b], &[c], 100_000).unwrap());
        let q = cq_qbe_explain(&d, &[a, b], &[c], 100_000)
            .unwrap()
            .expect("explanation exists");
        let sel = evaluate_unary(&q, &d);
        assert!(sel.contains(&a) && sel.contains(&b) && !sel.contains(&c));
    }

    #[test]
    fn impossible_split_detected() {
        let d = db();
        let (a, b, c) = (v(&d, "a"), v(&d, "b"), v(&d, "c"));
        // Separate {a, c} from {b}: a CQ true at a and c must be true at
        // b too? a has (R, out-edge to an R element...), c has nothing
        // special; their common properties are c's properties basically
        // (having only eta... c has an in-edge!). Common: eta(x) plus...
        // a has in-degree 0; c has in-edge but no R. The product (a,c):
        // shared properties = eta only-ish. b satisfies eta. So no
        // explanation.
        assert!(!cq_qbe_decide(&d, &[a, c], &[b], 100_000).unwrap());
        assert_eq!(cq_qbe_explain(&d, &[a, c], &[b], 100_000).unwrap(), None);
    }

    #[test]
    fn single_positive_uses_identity_product() {
        let d = db();
        let (a, b, c) = (v(&d, "a"), v(&d, "b"), v(&d, "c"));
        // a is the only element with an outgoing edge to an R-element.
        assert!(cq_qbe_decide(&d, &[a], &[b, c], 100_000).unwrap());
        let q = cq_qbe_explain(&d, &[a], &[b, c], 100_000).unwrap().unwrap();
        let sel = evaluate_unary(&q, &d);
        assert_eq!(sel, vec![a]);
    }

    #[test]
    fn empty_negatives_always_explained() {
        let d = db();
        let a = v(&d, "a");
        assert!(cq_qbe_decide(&d, &[a], &[], 100_000).unwrap());
    }

    #[test]
    fn empty_positives_is_an_error() {
        let d = db();
        let c = v(&d, "c");
        assert_eq!(
            cq_qbe_decide(&d, &[], &[c], 100_000),
            Err(QbeError::EmptyPositives)
        );
    }

    #[test]
    fn budget_propagates() {
        let d = db();
        let a = v(&d, "a");
        let err = cq_qbe_decide(&d, &[a, a, a, a, a, a], &[], 10).unwrap_err();
        assert_eq!(err, QbeError::ProductTooLarge { budget: 10 });
    }

    #[test]
    fn explanation_is_strongest_common_query() {
        // The product query must be implied by any other query true on
        // all positives: check on a sample query.
        let d = db();
        let (a, b) = (v(&d, "a"), v(&d, "b"));
        let q = cq_qbe_explain(&d, &[a, b], &[], 100_000).unwrap().unwrap();
        // Both a and b satisfy R(x); the product query must entail R(x).
        let rx = cq::parse::parse_cq(d.schema(), "q(x) :- R(x)").unwrap();
        assert!(cq::contained_in(&q, &rx));
    }
}
