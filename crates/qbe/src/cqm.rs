//! `CQ[m]`-QBE: explanations with a bounded number of atoms
//! (Proposition 6.11: NP-complete, even for `m = 1`).
//!
//! The solver enumerates `CQ[m]` (or `CQ[m,p]`) up to equivalence over the
//! relations populated in `D` and tests each candidate. The enumeration is
//! exponential in the schema (relation count × arity), matching the NP
//! lower bound's source; evaluation per candidate is polynomial for fixed
//! `m`.

use cq::{enumerate_feature_queries, evaluate_unary, Cq, EnumConfig};
use relational::{Database, Val};

/// Find a `CQ[m]`-explanation for `(D, S⁺, S⁻)` under `config`, or `None`.
///
/// Note: QBE does not assume an entity schema; candidates carry the η(x)
/// guard only if the schema distinguishes η, in which case `S⁺` must be
/// entities for an explanation to exist (the paper's separability use
/// case always is). Pass a plain schema to avoid the guard.
pub fn cqm_qbe(d: &Database, pos: &[Val], neg: &[Val], config: &EnumConfig) -> Option<Cq> {
    let candidates = cqm_qbe_candidates(d, config);
    candidates
        .into_iter()
        .find(|q| cqm_qbe_accepts(q, d, pos, neg))
}

/// The candidate enumeration behind [`cqm_qbe`], in the order it scans
/// them: `CQ[m]` queries over the relations populated in `D` (or the
/// configured relation set). Exposed so parallel drivers can fan the
/// per-candidate tests out while preserving the first-match order.
pub fn cqm_qbe_candidates(d: &Database, config: &EnumConfig) -> Vec<Cq> {
    let rels = match &config.relations {
        Some(_) => config.clone(),
        None => {
            let eta = d.schema().entity_rel();
            let populated: Vec<_> = d
                .populated_rels()
                .into_iter()
                .filter(|r| Some(*r) != eta)
                .collect();
            config.clone().over_relations(populated)
        }
    };
    enumerate_feature_queries(d.schema(), &rels)
}

/// Does candidate `q` explain `(D, S⁺, S⁻)` — true on every positive,
/// false on every negative? The per-candidate test of [`cqm_qbe`].
pub fn cqm_qbe_accepts(q: &Cq, d: &Database, pos: &[Val], neg: &[Val]) -> bool {
    let sel = evaluate_unary(q, d);
    pos.iter().all(|p| sel.contains(p)) && neg.iter().all(|n| !sel.contains(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{DbBuilder, Schema};

    fn schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s.add_relation("R", 1);
        s
    }

    fn v(d: &Database, n: &str) -> Val {
        d.val_by_name(n).unwrap()
    }

    #[test]
    fn single_atom_explanation() {
        let d = DbBuilder::new(schema())
            .fact("R", &["a"])
            .fact("E", &["b", "c"])
            .entity("a")
            .entity("b")
            .build();
        let (a, b) = (v(&d, "a"), v(&d, "b"));
        let q = cqm_qbe(&d, &[a], &[b], &EnumConfig::cqm(1)).expect("R(x) explains");
        assert!(q.atom_count_for_cqm() <= 1);
        let sel = evaluate_unary(&q, &d);
        assert!(sel.contains(&a) && !sel.contains(&b));
    }

    #[test]
    fn needs_two_atoms() {
        // a: R holds AND has an out-edge; b: only R; c: only out-edge.
        // Separating {a} from {b, c} needs both atoms.
        let d = DbBuilder::new(schema())
            .fact("R", &["a"])
            .fact("E", &["a", "x"])
            .fact("R", &["b"])
            .fact("E", &["c", "y"])
            .entity("a")
            .entity("b")
            .entity("c")
            .build();
        let (a, b, c) = (v(&d, "a"), v(&d, "b"), v(&d, "c"));
        assert!(cqm_qbe(&d, &[a], &[b, c], &EnumConfig::cqm(1)).is_none());
        let q = cqm_qbe(&d, &[a], &[b, c], &EnumConfig::cqm(2)).expect("2 atoms suffice");
        assert!(q.atom_count_for_cqm() <= 2);
    }

    #[test]
    fn no_explanation_when_negative_dominates() {
        // b has strictly more properties than a: anything true at a is
        // true at b.
        let d = DbBuilder::new(schema())
            .fact("R", &["a"])
            .fact("R", &["b"])
            .fact("E", &["b", "z"])
            .entity("a")
            .entity("b")
            .build();
        let (a, b) = (v(&d, "a"), v(&d, "b"));
        for m in 1..=3 {
            assert!(cqm_qbe(&d, &[a], &[b], &EnumConfig::cqm(m)).is_none());
        }
        // The other direction explains easily.
        assert!(cqm_qbe(&d, &[b], &[a], &EnumConfig::cqm(1)).is_some());
    }

    #[test]
    fn occurrence_bound_can_block() {
        // Distinguish "has a self-loop" — needs E(x,x), where x occurs
        // twice. With occurrences capped at 1 the candidates are only
        // E(x,y), E(y,x), E(y,z) — all true at both a and b once b sits
        // on a 2-cycle — so CQ[1,1] must fail while CQ[1,2] succeeds.
        let d = DbBuilder::new(schema())
            .fact("E", &["a", "a"])
            .fact("E", &["b", "z"])
            .fact("E", &["z", "b"])
            .entity("a")
            .entity("b")
            .build();
        let (a, b) = (v(&d, "a"), v(&d, "b"));
        assert!(cqm_qbe(&d, &[a], &[b], &EnumConfig::cqmp(1, 1)).is_none());
        assert!(cqm_qbe(&d, &[a], &[b], &EnumConfig::cqmp(1, 2)).is_some());
    }

    #[test]
    fn agrees_with_cq_qbe_when_m_large() {
        // On tiny instances, CQ[3] ≈ CQ for explanation existence.
        let d = DbBuilder::new(schema())
            .fact("E", &["a", "b"])
            .fact("E", &["b", "c"])
            .fact("R", &["c"])
            .entity("a")
            .entity("b")
            .entity("c")
            .build();
        let (a, b, c) = (v(&d, "a"), v(&d, "b"), v(&d, "c"));
        for (p, n) in [(a, b), (b, a), (a, c), (c, a), (b, c), (c, b)] {
            let full = crate::product_hom::cq_qbe_decide(&d, &[p], &[n], 100_000).unwrap();
            let bounded = cqm_qbe(&d, &[p], &[n], &EnumConfig::cqm(3)).is_some();
            // CQ[3] explanations are CQ explanations.
            if bounded {
                assert!(full);
            }
            // On this 3-fact instance any distinguishing CQ needs ≤ 3
            // atoms, so the converse holds too.
            assert_eq!(full, bounded, "pos={p:?} neg={n:?}");
        }
    }
}
