//! Property tests for the QBE solvers: produced explanations must
//! validate, and the lattice of QBE answers must respect monotonicity in
//! the example sets and in the query-class hierarchy.

use cq::{evaluate_unary, EnumConfig};
use proptest::prelude::*;
use qbe::{cq_qbe_decide, cq_qbe_explain, cqm_qbe, ghw_qbe_decide, ghw_qbe_explain};
use relational::{Database, Schema, Val};

fn graph(n: usize, edges: &[(usize, usize)]) -> Database {
    let mut s = Schema::entity_schema();
    s.add_relation("E", 2);
    let mut db = Database::new(s);
    let vals: Vec<Val> = (0..n).map(|i| db.value(&format!("v{i}"))).collect();
    let e = db.schema().rel_by_name("E").unwrap();
    for &(a, b) in edges {
        db.add_fact(e, vec![vals[a % n], vals[b % n]]);
    }
    for &v in &vals {
        db.add_entity(v);
    }
    db
}

fn instance() -> impl Strategy<Value = (Database, Vec<Val>, Vec<Val>)> {
    (2usize..5)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n), 1..(2 * n)),
                1usize..(1 << n) - 1, // nonempty proper subset mask
            )
        })
        .prop_map(|(n, edges, mask)| {
            let d = graph(n, &edges);
            let pos: Vec<Val> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| Val(i as u32))
                .collect();
            let neg: Vec<Val> = (0..n)
                .filter(|i| mask & (1 << i) == 0)
                .map(|i| Val(i as u32))
                .collect();
            (d, pos, neg)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Any produced CQ explanation must actually explain.
    #[test]
    fn cq_explanations_validate((d, pos, neg) in instance()) {
        match cq_qbe_explain(&d, &pos, &neg, 500_000) {
            Ok(Some(q)) => {
                let sel = evaluate_unary(&q.clone().with_entity_guard(), &d);
                for p in &pos {
                    prop_assert!(sel.contains(p), "positive missing: {q}");
                }
                for n in &neg {
                    prop_assert!(!sel.contains(n), "negative selected: {q}");
                }
                prop_assert!(cq_qbe_decide(&d, &pos, &neg, 500_000).unwrap());
            }
            Ok(None) => {
                prop_assert!(!cq_qbe_decide(&d, &pos, &neg, 500_000).unwrap());
            }
            Err(_) => {} // budget; nothing to check
        }
    }

    /// GHW(k) explanations validate, land in the width class, and imply
    /// CQ explainability. (k = 2 games on large products are genuinely
    /// expensive — the EXPTIME wall — so width-2 checks are restricted to
    /// single-positive products.)
    #[test]
    fn ghw_explanations_validate((d, pos, neg) in instance(), k in 1usize..3) {
        prop_assume!(k == 1 || pos.len() == 1);
        match ghw_qbe_explain(&d, &pos, &neg, k, 50_000, 100_000) {
            Ok(Some(q)) => {
                let sel = evaluate_unary(&q.clone().with_entity_guard(), &d);
                for p in &pos {
                    prop_assert!(sel.contains(p), "positive missing: {q}");
                }
                for n in &neg {
                    prop_assert!(!sel.contains(n), "negative selected: {q}");
                }
                if q.atoms().len() <= 10 {
                    prop_assert!(cq::ghw(&q) <= k, "width violation at k={k}: {q}");
                }
                // GHW(k) ⊆ CQ.
                prop_assert!(cq_qbe_decide(&d, &pos, &neg, 500_000).unwrap());
            }
            Ok(None) => {
                prop_assert!(!ghw_qbe_decide(&d, &pos, &neg, k, 50_000).unwrap());
            }
            Err(_) => {}
        }
    }

    /// Shrinking S⁺ or S⁻ can only make explanation easier.
    #[test]
    fn qbe_monotone_in_examples((d, pos, neg) in instance()) {
        if let Ok(true) = cq_qbe_decide(&d, &pos, &neg, 500_000) {
            // Drop one positive (if ≥ 2 remain nonempty).
            if pos.len() >= 2 {
                prop_assert!(cq_qbe_decide(&d, &pos[1..], &neg, 500_000).unwrap());
            }
            // Drop one negative.
            if !neg.is_empty() {
                prop_assert!(cq_qbe_decide(&d, &pos, &neg[1..], 500_000).unwrap());
            }
        }
    }

    /// Class hierarchy: CQ[m] explanation ⇒ GHW(m) explanation ⇒ CQ
    /// explanation.
    #[test]
    fn qbe_class_hierarchy((d, pos, neg) in instance(), m in 1usize..3) {
        prop_assume!(m == 1 || pos.len() == 1);
        if cqm_qbe(&d, &pos, &neg, &EnumConfig::cqm(m).syntactic()).is_some() {
            prop_assert!(ghw_qbe_decide(&d, &pos, &neg, m, 50_000).unwrap());
            prop_assert!(cq_qbe_decide(&d, &pos, &neg, 500_000).unwrap());
        }
    }

    /// GHW(k) explanation existence is monotone in k. Width-2 games on
    /// multi-positive products are the EXPTIME wall; restrict to
    /// single-positive instances where the product is the factor itself.
    #[test]
    fn ghw_qbe_monotone_in_k((d, pos, neg) in instance()) {
        prop_assume!(pos.len() == 1);
        let k1 = ghw_qbe_decide(&d, &pos, &neg, 1, 50_000).unwrap();
        let k2 = ghw_qbe_decide(&d, &pos, &neg, 2, 50_000).unwrap();
        if k1 {
            prop_assert!(k2, "GHW(1) explanation is a GHW(2) explanation");
        }
    }
}
