//! The `cqsep-cli` command logic, separated from `main` so the test suite
//! can drive it without spawning processes.
//!
//! Databases are read in the text format of `relational::spec`
//! (`rel`/`fact`/`entity` lines); models in the format of
//! `cqsep::persist`. Commands:
//!
//! ```text
//! cqsep-cli check <train.db> [--class <spec>]...     separability report
//! cqsep-cli train <train.db> --class <spec> [-o F]   generate a model
//! cqsep-cli classify <train.db> <eval.db> [--class <spec>]
//! cqsep-cli classify-batch <train.db> <eval.db> [--class <spec>]
//! cqsep-cli classify-model <model.txt> <eval.db>
//! cqsep-cli relabel <train.db> [--k <k>]             Algorithm 2
//! cqsep-cli evaluate <train.db> <test.db> [--method <mspec>]... [--fit-timeout <secs>]
//! cqsep-cli append <file.db> <delta.txt> [-o out.db]
//! cqsep-cli recheck <train.db> [<delta.txt>] [--class <spec>]...
//! cqsep-cli info <file.db>
//! ```
//!
//! `append` applies an edit script (`relational::Delta` text format:
//! `add-value`/`add-fact`/`del-fact`/`add-entity`/`flip-label` lines) to
//! a database through the engine's delta layer and prints the descendant
//! spec (or writes it with `-o`), with the delta receipt — parent and
//! child fingerprints, op counts — as a leading `#` comment. `recheck`
//! loads a training database as a resident, optionally appends a delta,
//! and reruns the separability report warm; combined with `--cache-dir`
//! both commands persist the fingerprint lineage alongside the verdict
//! tables, so a later run can subsume across the edit.
//!
//! `<spec>` is one of `cq`, `ghw<k>` (e.g. `ghw1`), `cqm<m>` (e.g.
//! `cqm2`). Defaults: `check` runs all of `cq`, `ghw1`, `cqm1`, `cqm2`;
//! `train`/`classify`/`classify-batch` default to `cqm2` (`classify-batch`
//! always evaluates through the compiled trie artifact and appends the
//! `ClassifierStats` counters as `#`-comment lines). `<mspec>` is a generalization
//! fit method — `cqm<m>`, `ghw<k>`, `sep<ℓ>` (features from the `CQ[2]`
//! bank), or `minerr<m>`; `evaluate` defaults to the
//! [`service::DEFAULT_EVALUATE_METHODS`] sweep and `--fit-timeout`
//! bounds each individual fit (the whole command is still bounded by
//! `--timeout`).
//!
//! The solver-facing subcommands (`check`, `train`, `classify`,
//! `classify-batch`, `relabel`, `evaluate`) are thin clients of the [`service`] task layer: each
//! builds a [`service::Task`] from the files it read and hands it to
//! [`service::run_task_in`] under a [`Ctx`] — the same executor the
//! `cqsep-serve` worker pool drives.
//!
//! Global engine flags (any position):
//!
//! * `--stats` — append the unified [`Engine`] counter report for exactly
//!   this call;
//! * `--cache-dir <path>` — load persisted hom/game verdict tables from
//!   `<path>` before running (warm start) and save them back after;
//! * `--tenant <id>` — scope `--cache-dir` to `<path>/<id>`, the same
//!   per-tenant snapshot layout `cqsep-serve --cache-dir` maintains, so
//!   the CLI can warm-start from (and feed) one tenant of a service;
//! * `--threads <n>` — cap solver parallelism at `n` worker threads;
//! * `--no-cache` — run every hom/game query uncached;
//! * `--timeout <secs>` — give the whole command a deadline. On expiry
//!   the command prints a one-line `interrupted:` report plus the
//!   partial engine stats instead of an answer.

use engine::{Ctx, Engine, Interrupted};
use relational::spec::DatabaseSpec;
use relational::Delta;
use service::{
    load_database, load_training, render_labels, run_task_in, run_task_res_in, Residents, Task,
    TaskOutput,
};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Duration;

pub use cqsep::generalize::FitMethod;
pub use service::ClassSpec;

/// Global engine flags stripped from a command line by
/// [`split_engine_flags`]: everything that configures *how* the solvers
/// run rather than *what* they solve.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineOpts {
    /// Append the unified [`Engine`] counter report for exactly this call.
    pub stats: bool,
    /// Load persisted verdict tables from here before running; save the
    /// (grown) tables back after.
    pub cache_dir: Option<String>,
    /// Scope `--cache-dir` to one tenant's snapshot (`<dir>/<tenant>`),
    /// the same layout `cqsep-serve --cache-dir` maintains.
    pub tenant: Option<String>,
    /// Cap solver parallelism at this many worker threads.
    pub threads: Option<usize>,
    /// Run every hom/game query uncached.
    pub no_cache: bool,
    /// Deadline for the whole command ([`Ctx::with_deadline`]).
    pub timeout: Option<Duration>,
}

impl EngineOpts {
    /// Does any flag require a freshly configured (non-global) engine?
    fn wants_custom_engine(&self) -> bool {
        self.threads.is_some() || self.no_cache
    }
}

/// Strip the global engine flags (`--stats`, `--cache-dir <path>`,
/// `--threads <n>`, `--no-cache`, `--timeout <secs>`) from any position
/// of a command line, returning them with the remaining positional
/// arguments intact.
pub fn split_engine_flags(args: &[String]) -> Result<(EngineOpts, Vec<String>), String> {
    let mut opts = EngineOpts::default();
    let mut rest = Vec::with_capacity(args.len());
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--stats" => opts.stats = true,
            "--no-cache" => opts.no_cache = true,
            "--cache-dir" => {
                let v = args.get(i + 1).ok_or("--cache-dir needs a path")?;
                opts.cache_dir = Some(v.clone());
                i += 1;
            }
            "--tenant" => {
                let v = args.get(i + 1).ok_or("--tenant needs an id")?;
                service::validate_tenant_id(v)?;
                opts.tenant = Some(v.clone());
                i += 1;
            }
            "--threads" => {
                let v = args.get(i + 1).ok_or("--threads needs a count")?;
                let n: usize = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("bad --threads value {v:?}"))?;
                opts.threads = Some(n);
                i += 1;
            }
            "--timeout" => {
                let v = args.get(i + 1).ok_or("--timeout needs a seconds value")?;
                let secs: f64 = v
                    .parse()
                    .ok()
                    .filter(|s: &f64| *s >= 0.0 && s.is_finite())
                    .ok_or_else(|| format!("bad --timeout value {v:?}"))?;
                opts.timeout = Some(Duration::from_secs_f64(secs));
                i += 1;
            }
            _ => rest.push(args[i].clone()),
        }
        i += 1;
    }
    Ok((opts, rest))
}

/// Run a command line (without the program name). Returns the text to
/// print, or an error message.
///
/// Engine flags (any position) configure the [`Engine`] the command runs
/// against: `--stats` appends the unified counter report (hom searches,
/// cover games, LP decisions, cache traffic, restored entries) covering
/// exactly this call; `--cache-dir` makes warm starts possible across
/// process runs; `--threads`/`--no-cache` bound parallelism and disable
/// memoization; `--timeout` bounds wall-clock time — on expiry the
/// output is a one-line `interrupted: deadline exceeded after …s`
/// report followed by the partial engine counters.
pub fn run(args: &[String]) -> Result<String, String> {
    let (opts, rest) = split_engine_flags(args)?;
    // Flags that change solver behavior get a fresh engine; the plain
    // path (and a bare `--stats` or `--cache-dir`) runs on the global
    // one so repeated in-process calls keep sharing its memo tables.
    let custom;
    let engine: &Engine = if opts.wants_custom_engine() {
        let mut e = Engine::new();
        if let Some(n) = opts.threads {
            e = e.with_threads(n);
        }
        if opts.no_cache {
            e = e.without_cache();
        }
        custom = e;
        &custom
    } else {
        Engine::global()
    };
    let before = engine.stats();
    let cache_dir = match (&opts.cache_dir, &opts.tenant) {
        (Some(dir), Some(tenant)) => Some(Path::new(dir).join(tenant)),
        (Some(dir), None) => Some(Path::new(dir).to_path_buf()),
        (None, Some(_)) => {
            return Err("--tenant scopes a cache: it needs --cache-dir <path>".to_string())
        }
        (None, None) => None,
    };
    if let Some(dir) = &cache_dir {
        engine
            .load(dir)
            .map_err(|e| format!("cannot load cache from {}: {e}", dir.display()))?;
    }
    let ctx = match opts.timeout {
        Some(budget) => engine.ctx_with_deadline(budget),
        None => engine.ctx(),
    };
    let started = std::time::Instant::now();
    let mut out = match run_in(&ctx, &rest) {
        Ok(result) => result?,
        Err(interrupted) => {
            // The deadline fired mid-solve: report what happened and how
            // much engine work the truncated command performed.
            return Ok(interrupted_report(&interrupted, started.elapsed()));
        }
    };
    if let Some(dir) = &cache_dir {
        engine
            .save(dir)
            .map_err(|e| format!("cannot save cache to {}: {e}", dir.display()))?;
    }
    if opts.stats {
        let delta = engine.stats().since(&before);
        if !out.ends_with('\n') && !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&delta.report());
        out.push('\n');
    }
    Ok(out)
}

/// The `--timeout` expiry report: one summary line, then the partial
/// engine counters the truncated command accumulated.
fn interrupted_report(interrupted: &Interrupted, elapsed: Duration) -> String {
    format!(
        "interrupted: {} after {:.1}s\n{}\n",
        interrupted.reason,
        elapsed.as_secs_f64(),
        interrupted.partial_stats.report()
    )
}

/// Dispatch a flag-free command line against a caller-supplied [`Engine`]
/// (unbounded context).
pub fn run_with(engine: &Engine, args: &[String]) -> Result<String, String> {
    run_in(&engine.ctx(), args).expect("unbounded ctx cannot interrupt")
}

/// Dispatch a flag-free command line under a task context. The outer
/// `Err` is interruption (deadline passed or handle cancelled); the
/// inner `Err` is a usage or domain error.
pub fn run_in(ctx: &Ctx, args: &[String]) -> Result<Result<String, String>, Interrupted> {
    let read = |path: &str| -> Result<String, String> {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    };
    // The service task layer does the solving for the four solver-facing
    // subcommands; this dispatcher only reads files, builds the Task,
    // and decides what to do with the model text.
    let task_output =
        |task: Task| -> Result<Result<TaskOutput, String>, Interrupted> { run_task_in(ctx, &task) };
    match args.first().map(String::as_str) {
        Some("check") => {
            let path = match args.get(1) {
                Some(p) => p,
                None => return Ok(Err(USAGE.to_string())),
            };
            let classes = match parse_classes(&args[2..]) {
                Ok(c) => c,
                Err(e) => return Ok(Err(e)),
            };
            let train = match read(path) {
                Ok(t) => t,
                Err(e) => return Ok(Err(e)),
            };
            Ok(task_output(Task::Check { train, classes })?.map(|out| out.output))
        }
        Some("train") => {
            let path = match args.get(1) {
                Some(p) => p,
                None => return Ok(Err(USAGE.to_string())),
            };
            let classes = match parse_classes(&args[2..]) {
                Ok(c) => c,
                Err(e) => return Ok(Err(e)),
            };
            let class = classes.first().copied().unwrap_or(ClassSpec::Cqm(2));
            let out_path = flag_value(&args[2..], "-o");
            let train = match read(path) {
                Ok(t) => t,
                Err(e) => return Ok(Err(e)),
            };
            let out = match task_output(Task::Train { train, class })? {
                Ok(out) => out,
                Err(e) => return Ok(Err(e)),
            };
            let model_text = out.model.expect("train tasks always produce a model");
            Ok(Ok(match out_path {
                Some(p) => match std::fs::write(&p, &model_text) {
                    Ok(()) => format!("{}model written to {p}\n", out.output),
                    Err(e) => return Ok(Err(format!("cannot write {p}: {e}"))),
                },
                None => format!("{}{model_text}", out.output),
            }))
        }
        Some("classify") => {
            let (train_path, eval_path) = match (args.get(1), args.get(2)) {
                (Some(t), Some(e)) => (t, e),
                _ => return Ok(Err(USAGE.to_string())),
            };
            let classes = match parse_classes(&args[3..]) {
                Ok(c) => c,
                Err(e) => return Ok(Err(e)),
            };
            let class = classes.first().copied().unwrap_or(ClassSpec::Cqm(2));
            let (train, eval) = match (read(train_path), read(eval_path)) {
                (Ok(t), Ok(e)) => (t, e),
                (Err(e), _) | (_, Err(e)) => return Ok(Err(e)),
            };
            Ok(task_output(Task::Classify { train, eval, class })?.map(|out| out.output))
        }
        Some("classify-batch") => {
            let (train_path, eval_path) = match (args.get(1), args.get(2)) {
                (Some(t), Some(e)) => (t, e),
                _ => return Ok(Err(USAGE.to_string())),
            };
            let classes = match parse_classes(&args[3..]) {
                Ok(c) => c,
                Err(e) => return Ok(Err(e)),
            };
            let class = classes.first().copied().unwrap_or(ClassSpec::Cqm(2));
            let (train, eval) = match (read(train_path), read(eval_path)) {
                (Ok(t), Ok(e)) => (t, e),
                (Err(e), _) | (_, Err(e)) => return Ok(Err(e)),
            };
            Ok(task_output(Task::ClassifyBatch { train, eval, class })?.map(|out| out.output))
        }
        Some("relabel") => {
            let path = match args.get(1) {
                Some(p) => p,
                None => return Ok(Err(USAGE.to_string())),
            };
            let k: usize = match flag_value(&args[2..], "--k")
                .map(|v| v.parse().map_err(|_| "bad --k".to_string()))
                .transpose()
            {
                Ok(k) => k.unwrap_or(1),
                Err(e) => return Ok(Err(e)),
            };
            let train = match read(path) {
                Ok(t) => t,
                Err(e) => return Ok(Err(e)),
            };
            Ok(task_output(Task::Relabel {
                train,
                k,
                name: None,
            })?
            .map(|out| out.output))
        }
        Some("append") => {
            let (db_path, delta_path) = match (args.get(1), args.get(2)) {
                (Some(d), Some(t)) => (d, t),
                _ => return Ok(Err(USAGE.to_string())),
            };
            let out_path = flag_value(&args[3..], "-o");
            let (db_text, delta_text) = match (read(db_path), read(delta_path)) {
                (Ok(d), Ok(t)) => (d, t),
                (Err(e), _) | (_, Err(e)) => return Ok(Err(e)),
            };
            let delta = match Delta::parse(&delta_text) {
                Ok(d) => d,
                Err(e) => return Ok(Err(e.to_string())),
            };
            let spec = match DatabaseSpec::parse(&db_text) {
                Ok(s) => s,
                Err(e) => return Ok(Err(e.to_string())),
            };
            // A labeled spec goes through the training path so label ops
            // (add-entity with +/-, flip-label) are legal; either way the
            // edit runs through the engine's lineage registry, so with
            // `--cache-dir` the fingerprint edge survives to later runs.
            let labeled = spec.entities.iter().any(|(_, l)| l.is_some());
            let (receipt, descendant) = if labeled {
                let mut train = match load_training(&db_text) {
                    Ok(t) => t,
                    Err(e) => return Ok(Err(e)),
                };
                match ctx.apply_training_delta(&mut train, &delta)? {
                    Ok(r) => {
                        let spec = DatabaseSpec::from_database(&train.db, Some(&train.labeling));
                        (r, spec.to_text())
                    }
                    Err(e) => return Ok(Err(e.to_string())),
                }
            } else {
                let mut db = match load_database(&db_text) {
                    Ok(d) => d,
                    Err(e) => return Ok(Err(e)),
                };
                match ctx.apply_delta(&mut db, &delta)? {
                    Ok(r) => (r, DatabaseSpec::from_database(&db, None).to_text()),
                    Err(e) => return Ok(Err(e.to_string())),
                }
            };
            Ok(Ok(match out_path {
                Some(p) => match std::fs::write(&p, &descendant) {
                    Ok(()) => format!("{}\ndescendant written to {p}\n", receipt.summary()),
                    Err(e) => return Ok(Err(format!("cannot write {p}: {e}"))),
                },
                // No -o: emit a valid spec on stdout, receipt as comment.
                None => format!("# {}\n{descendant}", receipt.summary()),
            }))
        }
        Some("recheck") => {
            let path = match args.get(1) {
                Some(p) => p,
                None => return Ok(Err(USAGE.to_string())),
            };
            let delta_path = args.get(2).filter(|a| !a.starts_with("--"));
            let classes = match parse_classes(&args[2..]) {
                Ok(c) => c,
                Err(e) => return Ok(Err(e)),
            };
            let train = match read(path) {
                Ok(t) => t,
                Err(e) => return Ok(Err(e)),
            };
            // Thin client of the service residents path: make the file a
            // resident, optionally append the delta, then recheck — the
            // same append/recheck flow `cqsep-serve` runs, so verdicts
            // proved before the edit are reusable after it.
            let residents = Residents::new();
            let name = "db".to_string();
            let birth = Task::Append {
                name: name.clone(),
                base: Some(train),
                delta: String::new(),
            };
            if let Err(e) = run_task_res_in(ctx, &residents, &birth)? {
                return Ok(Err(e));
            }
            let mut out = String::new();
            if let Some(dp) = delta_path {
                let delta = match read(dp) {
                    Ok(d) => d,
                    Err(e) => return Ok(Err(e)),
                };
                let append = Task::Append {
                    name: name.clone(),
                    base: None,
                    delta,
                };
                match run_task_res_in(ctx, &residents, &append)? {
                    Ok(o) => out.push_str(&o.output),
                    Err(e) => return Ok(Err(e)),
                }
            }
            match run_task_res_in(ctx, &residents, &Task::Recheck { name, classes })? {
                Ok(o) => {
                    out.push_str(&o.output);
                    Ok(Ok(out))
                }
                Err(e) => Ok(Err(e)),
            }
        }
        Some("evaluate") => {
            let (train_path, test_path) = match (args.get(1), args.get(2)) {
                (Some(t), Some(e)) => (t, e),
                _ => return Ok(Err(USAGE.to_string())),
            };
            let methods = match parse_methods(&args[3..]) {
                Ok(m) => m,
                Err(e) => return Ok(Err(e)),
            };
            let fit_timeout = match flag_value(&args[3..], "--fit-timeout")
                .map(|v| {
                    v.parse::<f64>()
                        .ok()
                        .filter(|s| *s >= 0.0 && s.is_finite())
                        .map(Duration::from_secs_f64)
                        .ok_or_else(|| format!("bad --fit-timeout value {v:?}"))
                })
                .transpose()
            {
                Ok(t) => t,
                Err(e) => return Ok(Err(e)),
            };
            let (train, test) = match (read(train_path), read(test_path)) {
                (Ok(t), Ok(e)) => (t, e),
                (Err(e), _) | (_, Err(e)) => return Ok(Err(e)),
            };
            Ok(task_output(Task::Evaluate {
                train,
                test,
                methods,
                fit_timeout,
            })?
            .map(|out| out.output))
        }
        Some("classify-model") => Ok((|| {
            let model_path = args.get(1).ok_or(USAGE)?;
            let eval_path = args.get(2).ok_or(USAGE)?;
            let eval = load_database(&read(eval_path)?)?;
            let model = cqsep::persist::parse_model(eval.schema(), &read(model_path)?)
                .map_err(|e| e.to_string())?;
            let labels = model.classify(&eval);
            Ok(render_labels(&eval, |e| labels.get(e)))
        })()),
        Some("info") => Ok((|| {
            let path = args.get(1).ok_or(USAGE)?;
            let spec = DatabaseSpec::parse(&read(path)?).map_err(|e| e.to_string())?;
            let db = spec.to_database().map_err(|e| e.to_string())?;
            let mut out = String::new();
            let _ = writeln!(out, "schema:   {}", db.schema());
            let _ = writeln!(out, "elements: {}", db.dom_size());
            let _ = writeln!(out, "facts:    {}", db.fact_count());
            let _ = writeln!(out, "entities: {}", db.entities().len());
            let labeled = spec.entities.iter().filter(|(_, l)| l.is_some()).count();
            let _ = writeln!(out, "labeled:  {labeled}");
            Ok(out)
        })()),
        _ => Ok(Err(USAGE.to_string())),
    }
}

const USAGE: &str = "usage:
  cqsep-cli check <train.db> [--class cq|ghw<k>|cqm<m>]...
  cqsep-cli train <train.db> [--class <spec>] [-o model.txt]
  cqsep-cli classify <train.db> <eval.db> [--class <spec>]
  cqsep-cli classify-batch <train.db> <eval.db> [--class <spec>]
  cqsep-cli classify-model <model.txt> <eval.db>
  cqsep-cli relabel <train.db> [--k <k>]
  cqsep-cli evaluate <train.db> <test.db> [--method cqm<m>|ghw<k>|sep<l>|minerr<m>]... [--fit-timeout <secs>]
  cqsep-cli append <file.db> <delta.txt> [-o out.db]
  cqsep-cli recheck <train.db> [<delta.txt>] [--class <spec>]...
  cqsep-cli info <file.db>
engine flags (any command, any position):
  --stats              append the unified engine counter report
  --cache-dir <path>   warm-start from (and save back to) a verdict cache
  --tenant <id>        scope --cache-dir to <path>/<id> (the cqsep-serve
                       multi-tenant snapshot layout)
  --threads <n>        cap solver parallelism at n worker threads
  --no-cache           run every hom/game query unmemoized
  --timeout <secs>     deadline for the whole command (report on expiry)";

/// Collect every `--class <spec>` occurrence (empty when none given —
/// the task layer or the caller applies the default).
fn parse_classes(args: &[String]) -> Result<Vec<ClassSpec>, String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--class" {
            let v = args.get(i + 1).ok_or("--class needs a value")?;
            out.push(ClassSpec::parse(v)?);
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(out)
}

/// Collect every `--method <mspec>` occurrence (empty when none given —
/// the task layer applies the default sweep).
fn parse_methods(args: &[String]) -> Result<Vec<FitMethod>, String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--method" {
            let v = args.get(i + 1).ok_or("--method needs a value")?;
            out.push(FitMethod::parse(v)?);
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(out)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRAIN: &str = "\
rel E/2
fact E(a,b)
fact E(b,c)
entity a +
entity b +
entity c -
";

    const EVAL: &str = "\
rel E/2
fact E(u,v)
entity u
entity v
";

    fn with_files<F: FnOnce(&str, &str) -> R, R>(f: F) -> R {
        let dir = std::env::temp_dir().join(format!("cqsep_cli_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let train = dir.join("train.db");
        let eval = dir.join("eval.db");
        std::fs::write(&train, TRAIN).unwrap();
        std::fs::write(&eval, EVAL).unwrap();
        f(train.to_str().unwrap(), eval.to_str().unwrap())
    }

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn class_spec_parsing() {
        assert_eq!(ClassSpec::parse("cq"), Ok(ClassSpec::Cq));
        assert_eq!(ClassSpec::parse("ghw2"), Ok(ClassSpec::Ghw(2)));
        assert_eq!(ClassSpec::parse("cqm3"), Ok(ClassSpec::Cqm(3)));
        assert!(ClassSpec::parse("ghw0").is_err());
        assert!(ClassSpec::parse("nope").is_err());
        assert!(ClassSpec::parse("cqmx").is_err());
    }

    /// Every malformed class spelling produces the one unified message
    /// (historically `ghw0`, `cqm0`, and unknown prefixes diverged).
    #[test]
    fn class_spec_errors_use_the_unified_message() {
        for bad in ["ghw0", "cqm0", "ghw", "cqmx", "nope"] {
            assert_eq!(
                ClassSpec::parse(bad).unwrap_err(),
                format!("bad class {bad:?} (expected cq, ghw<k≥1>, cqm<m≥1>)")
            );
        }
    }

    #[test]
    fn check_reports_all_classes() {
        with_files(|train, _| {
            let out = run(&s(&["check", train])).unwrap();
            assert!(out.contains("CQ-separable: true"), "{out}");
            assert!(out.contains("GHW(1)-separable: true"), "{out}");
            assert!(out.contains("CQ[1]-separable: true"), "{out}");
        });
    }

    #[test]
    fn check_prints_witness_when_inseparable() {
        let dir = std::env::temp_dir().join(format!("cqsep_cli_w_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("bad.db");
        std::fs::write(
            &p,
            "rel E/2\nfact E(a,b)\nfact E(b,a)\nentity a +\nentity b -\n",
        )
        .unwrap();
        let out = run(&s(&["check", p.to_str().unwrap()])).unwrap();
        assert!(out.contains("CQ-separable: false"), "{out}");
        assert!(out.contains("witness"), "{out}");
    }

    #[test]
    fn train_then_classify_model_roundtrip() {
        with_files(|train, eval| {
            let dir = std::env::temp_dir().join(format!("cqsep_cli_m_{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let model = dir.join("model.txt");
            let out = run(&s(&[
                "train",
                train,
                "--class",
                "cqm1",
                "-o",
                model.to_str().unwrap(),
            ]))
            .unwrap();
            assert!(out.contains("model written"), "{out}");
            let out = run(&s(&["classify-model", model.to_str().unwrap(), eval])).unwrap();
            assert!(out.contains("u +"), "{out}");
            assert!(out.contains("v -"), "{out}");
        });
    }

    #[test]
    fn classify_via_algorithm_1() {
        with_files(|train, eval| {
            let out = run(&s(&["classify", train, eval, "--class", "ghw1"])).unwrap();
            assert!(out.contains("u "), "{out}");
            assert!(out.contains("v "), "{out}");
        });
    }

    #[test]
    fn classify_batch_reports_labels_and_stats() {
        with_files(|train, eval| {
            let out = run(&s(&["classify-batch", train, eval, "--class", "cqm1"])).unwrap();
            assert!(out.contains("u +"), "{out}");
            assert!(out.contains("v -"), "{out}");
            assert!(out.contains("# compiled: "), "{out}");
            assert!(out.contains("# batch: "), "{out}");
            // Same positional-argument contract as classify.
            assert!(run(&s(&["classify-batch", train])).is_err());
        });
    }

    #[test]
    fn relabel_reports_disagreements() {
        let dir = std::env::temp_dir().join(format!("cqsep_cli_r_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("noisy.db");
        std::fs::write(
            &p,
            "rel E/2\nfact E(a,b)\nfact E(b,a)\nentity a +\nentity b -\n",
        )
        .unwrap();
        let out = run(&s(&["relabel", p.to_str().unwrap()])).unwrap();
        assert!(out.contains("1 disagreement"), "{out}");
        assert!(out.contains('*'), "{out}");
    }

    #[test]
    fn evaluate_reports_heldout_accuracy_table() {
        with_files(|train, _| {
            let dir = std::env::temp_dir().join(format!("cqsep_cli_e_{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let test = dir.join("test.db");
            std::fs::write(
                &test,
                "rel E/2\nfact E(t,u)\nfact E(u,v)\nentity t +\nentity u +\nentity v -\n",
            )
            .unwrap();
            let test = test.to_str().unwrap();
            // Default sweep: every default method appears with a header.
            let out = run(&s(&["evaluate", train, test])).unwrap();
            assert!(out.contains("method"), "{out}");
            for needle in ["CQ[1]", "CQ[2]", "GHW(1)", "CQ[2]-Sep[1]", "MinErr[2]"] {
                assert!(out.contains(needle), "missing {needle}: {out}");
            }
            // Explicit methods narrow the table; the out-edge split is
            // aced exactly.
            let out = run(&s(&[
                "evaluate",
                train,
                test,
                "--method",
                "cqm1",
                "--method",
                "sep1",
                "--fit-timeout",
                "30",
            ]))
            .unwrap();
            assert!(out.contains("CQ[1]"), "{out}");
            assert!(out.contains("CQ[2]-Sep[1]"), "{out}");
            assert!(!out.contains("GHW"), "{out}");
            assert!(out.contains("1.000"), "{out}");
            assert!(out.contains("exact"), "{out}");
            // Usage and method-spelling errors.
            assert!(run(&s(&["evaluate", train])).is_err());
            assert!(run(&s(&["evaluate", train, test, "--method", "cqm0"])).is_err());
            assert!(run(&s(&["evaluate", train, test, "--fit-timeout", "soon"])).is_err());
        });
    }

    #[test]
    fn append_applies_a_delta_and_emits_the_descendant_spec() {
        with_files(|train, eval| {
            let dir = std::env::temp_dir().join(format!("cqsep_cli_a_{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let delta = dir.join("grow.delta");
            std::fs::write(&delta, "add-fact E(c,d)\nadd-entity d -\n").unwrap();
            let delta = delta.to_str().unwrap();
            // Labeled database, stdout descendant: a valid spec with the
            // receipt as a leading comment.
            let out = run(&s(&["append", train, delta])).unwrap();
            assert!(out.starts_with("# applied insert-only delta"), "{out}");
            assert!(out.contains("fact E(c,d)"), "{out}");
            assert!(out.contains("entity d -"), "{out}");
            DatabaseSpec::parse(&out).expect("stdout descendant must reparse");
            // -o writes the descendant and reports where.
            let grown = dir.join("grown.db");
            let out = run(&s(&["append", train, delta, "-o", grown.to_str().unwrap()])).unwrap();
            assert!(out.contains("applied insert-only delta"), "{out}");
            assert!(out.contains("descendant written to"), "{out}");
            let text = std::fs::read_to_string(&grown).unwrap();
            assert!(text.contains("entity d -"), "{text}");
            // Unlabeled databases take the plain-database path; label ops
            // are rejected there.
            let plain = dir.join("plain.delta");
            std::fs::write(&plain, "add-fact E(v,u)\n").unwrap();
            let out = run(&s(&["append", eval, plain.to_str().unwrap()])).unwrap();
            assert!(out.contains("fact E(v,u)"), "{out}");
            let bad = dir.join("bad.delta");
            std::fs::write(&bad, "flip-label u\n").unwrap();
            let err = run(&s(&["append", eval, bad.to_str().unwrap()])).unwrap_err();
            assert!(err.contains("labeled"), "{err}");
            // Usage errors.
            assert!(run(&s(&["append", train])).is_err());
            assert!(run(&s(&["append", train, "/no/such.delta"])).is_err());
        });
    }

    #[test]
    fn recheck_reports_after_an_optional_delta() {
        with_files(|train, _| {
            let dir = std::env::temp_dir().join(format!("cqsep_cli_rc_{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            // Without a delta: the plain separability report.
            let out = run(&s(&["recheck", train, "--class", "cq"])).unwrap();
            assert!(out.contains("CQ-separable: true"), "{out}");
            // With a delta: the receipt lines, then the report over the
            // grown database.
            let delta = dir.join("grow.delta");
            std::fs::write(&delta, "add-fact E(c,d)\nadd-entity d -\n").unwrap();
            let out = run(&s(&["recheck", train, delta.to_str().unwrap()])).unwrap();
            assert!(out.contains("applied insert-only delta"), "{out}");
            assert!(out.contains("4 entities"), "{out}");
            assert!(out.contains("CQ-separable"), "{out}");
            assert!(run(&s(&["recheck"])).is_err());
        });
    }

    #[test]
    fn info_summarizes() {
        with_files(|train, _| {
            let out = run(&s(&["info", train])).unwrap();
            assert!(out.contains("entities: 3"), "{out}");
            assert!(out.contains("labeled:  3"), "{out}");
        });
    }

    #[test]
    fn stats_flag_appends_engine_counters() {
        with_files(|train, _| {
            let out = run(&s(&["check", train, "--stats"])).unwrap();
            assert!(out.contains("CQ-separable: true"), "{out}");
            assert!(out.contains("hom engine stats"), "{out}");
            assert!(out.contains("nodes expanded"), "{out}");
            assert!(out.contains("cache hit"), "{out}");
            assert!(out.contains("cover-game engine stats"), "{out}");
            assert!(out.contains("games solved"), "{out}");
            // The default check runs GHW(1), so games actually happen.
            assert!(out.contains("fixpoint sweeps"), "{out}");
            assert!(out.contains("lp engine stats"), "{out}");
            assert!(out.contains("simplex pivots"), "{out}");
            assert!(out.contains("bignum promotions"), "{out}");
            // Flag position must not matter.
            let out2 = run(&s(&["--stats", "check", train])).unwrap();
            assert!(out2.contains("hom engine stats"), "{out2}");
            assert!(out2.contains("cover-game engine stats"), "{out2}");
            assert!(out2.contains("lp engine stats"), "{out2}");
        });
    }

    #[test]
    fn bad_usage_is_an_error() {
        assert!(run(&s(&[])).is_err());
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&s(&["check"])).is_err());
        assert!(run(&s(&["check", "/no/such/file"])).is_err());
        assert!(run(&s(&["check", "--threads"])).is_err());
        assert!(run(&s(&["check", "--threads", "0"])).is_err());
        assert!(run(&s(&["check", "--threads", "lots"])).is_err());
        assert!(run(&s(&["check", "--cache-dir"])).is_err());
        assert!(run(&s(&["check", "--timeout"])).is_err());
        assert!(run(&s(&["check", "--timeout", "-1"])).is_err());
        assert!(run(&s(&["check", "--timeout", "soon"])).is_err());
    }

    #[test]
    fn engine_flags_are_stripped_from_any_position() {
        let (opts, rest) = split_engine_flags(&s(&[
            "--threads",
            "2",
            "check",
            "--no-cache",
            "x.db",
            "--timeout",
            "1.5",
            "--cache-dir",
            "/tmp/c",
            "--stats",
        ]))
        .unwrap();
        assert!(opts.stats);
        assert!(opts.no_cache);
        assert_eq!(opts.threads, Some(2));
        assert_eq!(opts.timeout, Some(Duration::from_secs_f64(1.5)));
        assert_eq!(opts.cache_dir.as_deref(), Some("/tmp/c"));
        assert_eq!(rest, s(&["check", "x.db"]));
    }

    /// Satellite requirement: a zero budget expires before any solving
    /// starts, and the command reports the interruption (one summary
    /// line plus the partial engine counters) instead of an answer.
    /// Flag position must not matter.
    #[test]
    fn timeout_expiry_prints_interrupted_report() {
        with_files(|train, _| {
            for args in [
                s(&["check", train, "--timeout", "0"]),
                s(&["--timeout", "0", "classify", train, train]),
                s(&["train", train, "--timeout", "0"]),
                s(&["relabel", train, "--timeout", "0"]),
            ] {
                let out = run(&args).unwrap();
                assert!(
                    out.starts_with("interrupted: deadline exceeded after "),
                    "args {args:?}: {out}"
                );
                assert!(out.contains("hom engine stats"), "{out}");
                assert!(out.contains("lp engine stats"), "{out}");
            }
        });
    }

    #[test]
    fn generous_timeout_does_not_perturb_answers() {
        with_files(|train, _| {
            let out = run(&s(&["check", train, "--timeout", "3600"])).unwrap();
            assert!(out.contains("CQ-separable: true"), "{out}");
            assert!(out.contains("GHW(1)-separable: true"), "{out}");
        });
    }

    #[test]
    fn no_cache_and_threads_still_answer_correctly() {
        with_files(|train, _| {
            let out = run(&s(&["check", train, "--no-cache", "--threads", "1"])).unwrap();
            assert!(out.contains("CQ-separable: true"), "{out}");
            assert!(out.contains("GHW(1)-separable: true"), "{out}");
        });
    }

    #[test]
    fn cache_dir_warm_start_restores_entries() {
        with_files(|train, _| {
            let dir = std::env::temp_dir().join(format!("cqsep_cli_c_{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let cache = dir.to_str().unwrap();
            // --threads forces a fresh engine per run, so the second run
            // can only know the verdicts by reading them back from disk.
            let cold = run(&s(&[
                "check",
                train,
                "--threads",
                "2",
                "--cache-dir",
                cache,
                "--stats",
            ]))
            .unwrap();
            assert!(cold.contains("restored cache entries: 0"), "{cold}");
            assert!(dir.join("hom.cache").exists());
            assert!(dir.join("game.cache").exists());
            let warm = run(&s(&[
                "check",
                train,
                "--threads",
                "2",
                "--cache-dir",
                cache,
                "--stats",
            ]))
            .unwrap();
            assert!(!warm.contains("restored cache entries: 0"), "{warm}");
            assert!(warm.contains("restored cache entries:"), "{warm}");
            // Same verdicts either way.
            assert!(warm.contains("CQ-separable: true"), "{warm}");
            assert!(warm.contains("GHW(1)-separable: true"), "{warm}");
        });
    }

    #[test]
    fn tenant_flag_scopes_the_cache_dir() {
        with_files(|train, _| {
            let dir = std::env::temp_dir().join(format!("cqsep_cli_t_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            let cache = dir.to_str().unwrap().to_string();
            let out = run(&s(&[
                "check",
                train,
                "--threads",
                "2",
                "--cache-dir",
                &cache,
                "--tenant",
                "acme",
            ]))
            .unwrap();
            assert!(out.contains("CQ-separable: true"), "{out}");
            // The snapshot landed under the tenant's directory, exactly
            // where cqsep-serve would warm-start it from.
            assert!(dir.join("acme").join("hom.cache").exists());
            assert!(!dir.join("hom.cache").exists());
            // Bad ids and an unscoped --tenant are rejected up front.
            let err = run(&s(&[
                "check",
                train,
                "--cache-dir",
                &cache,
                "--tenant",
                "../up",
            ]))
            .unwrap_err();
            assert!(err.contains("bad tenant id"), "{err}");
            let err = run(&s(&["check", train, "--tenant", "acme"])).unwrap_err();
            assert!(err.contains("needs --cache-dir"), "{err}");
        });
    }
}
