//! The `cqsep-cli` command logic, separated from `main` so the test suite
//! can drive it without spawning processes.
//!
//! Databases are read in the text format of `relational::spec`
//! (`rel`/`fact`/`entity` lines); models in the format of
//! `cqsep::persist`. Commands:
//!
//! ```text
//! cqsep-cli check <train.db> [--class <spec>]...     separability report
//! cqsep-cli train <train.db> --class <spec> [-o F]   generate a model
//! cqsep-cli classify <train.db> <eval.db> [--class <spec>]
//! cqsep-cli classify-model <model.txt> <eval.db>
//! cqsep-cli relabel <train.db> [--k <k>]             Algorithm 2
//! cqsep-cli info <file.db>
//! ```
//!
//! `<spec>` is one of `cq`, `ghw<k>` (e.g. `ghw1`), `cqm<m>` (e.g.
//! `cqm2`). Defaults: `check` runs all of `cq`, `ghw1`, `cqm1`, `cqm2`;
//! `train`/`classify` default to `cqm2`.
//!
//! Global engine flags (any position):
//!
//! * `--stats` — append the unified [`Engine`] counter report for exactly
//!   this call;
//! * `--cache-dir <path>` — load persisted hom/game verdict tables from
//!   `<path>` before running (warm start) and save them back after;
//! * `--threads <n>` — cap solver parallelism at `n` worker threads;
//! * `--no-cache` — run every hom/game query uncached.

use cq::EnumConfig;
use cqsep::{apx, cls_ghw, gen_ghw, persist, sep_cq, sep_cqm, sep_ghw};
use engine::Engine;
use relational::spec::DatabaseSpec;
use relational::{Database, Label, TrainingDb};
use std::fmt::Write as _;
use std::path::Path;

/// A parsed feature-class specification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClassSpec {
    Cq,
    Ghw(usize),
    Cqm(usize),
}

impl ClassSpec {
    pub fn parse(s: &str) -> Result<ClassSpec, String> {
        if s == "cq" {
            return Ok(ClassSpec::Cq);
        }
        if let Some(k) = s.strip_prefix("ghw") {
            return k
                .parse::<usize>()
                .ok()
                .filter(|&k| k >= 1)
                .map(ClassSpec::Ghw)
                .ok_or_else(|| format!("bad class {s:?} (use ghw1, ghw2, …)"));
        }
        if let Some(m) = s.strip_prefix("cqm") {
            return m
                .parse::<usize>()
                .ok()
                .filter(|&m| m >= 1)
                .map(ClassSpec::Cqm)
                .ok_or_else(|| format!("bad class {s:?} (use cqm1, cqm2, …)"));
        }
        Err(format!(
            "unknown class {s:?} (expected cq, ghw<k>, or cqm<m>)"
        ))
    }
}

impl std::fmt::Display for ClassSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClassSpec::Cq => write!(f, "CQ"),
            ClassSpec::Ghw(k) => write!(f, "GHW({k})"),
            ClassSpec::Cqm(m) => write!(f, "CQ[{m}]"),
        }
    }
}

/// Global engine flags stripped from a command line by
/// [`split_engine_flags`]: everything that configures *how* the solvers
/// run rather than *what* they solve.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineOpts {
    /// Append the unified [`Engine`] counter report for exactly this call.
    pub stats: bool,
    /// Load persisted verdict tables from here before running; save the
    /// (grown) tables back after.
    pub cache_dir: Option<String>,
    /// Cap solver parallelism at this many worker threads.
    pub threads: Option<usize>,
    /// Run every hom/game query uncached.
    pub no_cache: bool,
}

impl EngineOpts {
    /// Does any flag require a freshly configured (non-global) engine?
    fn wants_custom_engine(&self) -> bool {
        self.threads.is_some() || self.no_cache
    }
}

/// Strip the global engine flags (`--stats`, `--cache-dir <path>`,
/// `--threads <n>`, `--no-cache`) from any position of a command line,
/// returning them with the remaining positional arguments intact.
pub fn split_engine_flags(args: &[String]) -> Result<(EngineOpts, Vec<String>), String> {
    let mut opts = EngineOpts::default();
    let mut rest = Vec::with_capacity(args.len());
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--stats" => opts.stats = true,
            "--no-cache" => opts.no_cache = true,
            "--cache-dir" => {
                let v = args.get(i + 1).ok_or("--cache-dir needs a path")?;
                opts.cache_dir = Some(v.clone());
                i += 1;
            }
            "--threads" => {
                let v = args.get(i + 1).ok_or("--threads needs a count")?;
                let n: usize = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("bad --threads value {v:?}"))?;
                opts.threads = Some(n);
                i += 1;
            }
            _ => rest.push(args[i].clone()),
        }
        i += 1;
    }
    Ok((opts, rest))
}

/// Run a command line (without the program name). Returns the text to
/// print, or an error message.
///
/// Engine flags (any position) configure the [`Engine`] the command runs
/// against: `--stats` appends the unified counter report (hom searches,
/// cover games, LP decisions, cache traffic, restored entries) covering
/// exactly this call; `--cache-dir` makes warm starts possible across
/// process runs; `--threads`/`--no-cache` bound parallelism and disable
/// memoization.
pub fn run(args: &[String]) -> Result<String, String> {
    let (opts, rest) = split_engine_flags(args)?;
    // Flags that change solver behavior get a fresh engine; the plain
    // path (and a bare `--stats` or `--cache-dir`) runs on the global
    // one so repeated in-process calls keep sharing its memo tables.
    let custom;
    let engine: &Engine = if opts.wants_custom_engine() {
        let mut e = Engine::new();
        if let Some(n) = opts.threads {
            e = e.with_threads(n);
        }
        if opts.no_cache {
            e = e.without_cache();
        }
        custom = e;
        &custom
    } else {
        Engine::global()
    };
    let before = engine.stats();
    if let Some(dir) = &opts.cache_dir {
        engine
            .load(Path::new(dir))
            .map_err(|e| format!("cannot load cache from {dir}: {e}"))?;
    }
    let mut out = run_with(engine, &rest)?;
    if let Some(dir) = &opts.cache_dir {
        engine
            .save(Path::new(dir))
            .map_err(|e| format!("cannot save cache to {dir}: {e}"))?;
    }
    if opts.stats {
        let delta = engine.stats().since(&before);
        if !out.ends_with('\n') && !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&delta.report());
        out.push('\n');
    }
    Ok(out)
}

/// Dispatch a flag-free command line against a caller-supplied [`Engine`].
pub fn run_with(engine: &Engine, args: &[String]) -> Result<String, String> {
    let read = |path: &str| -> Result<String, String> {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    };
    match args.first().map(String::as_str) {
        Some("check") => {
            let path = args.get(1).ok_or(USAGE)?;
            let classes = parse_classes(
                &args[2..],
                vec![
                    ClassSpec::Cq,
                    ClassSpec::Ghw(1),
                    ClassSpec::Cqm(1),
                    ClassSpec::Cqm(2),
                ],
            )?;
            let train = load_training(&read(path)?)?;
            Ok(check(engine, &train, &classes))
        }
        Some("train") => {
            let path = args.get(1).ok_or(USAGE)?;
            let classes = parse_classes(&args[2..], vec![ClassSpec::Cqm(2)])?;
            let out_path = flag_value(&args[2..], "-o");
            let train = load_training(&read(path)?)?;
            let (report, model_text) = train_cmd(engine, &train, classes[0])?;
            if let Some(p) = out_path {
                std::fs::write(&p, &model_text).map_err(|e| format!("cannot write {p}: {e}"))?;
                Ok(format!("{report}model written to {p}\n"))
            } else {
                Ok(format!("{report}{model_text}"))
            }
        }
        Some("classify") => {
            let train_path = args.get(1).ok_or(USAGE)?;
            let eval_path = args.get(2).ok_or(USAGE)?;
            let classes = parse_classes(&args[3..], vec![ClassSpec::Cqm(2)])?;
            let train = load_training(&read(train_path)?)?;
            let eval = load_database(&read(eval_path)?)?;
            classify_cmd(engine, &train, &eval, classes[0])
        }
        Some("classify-model") => {
            let model_path = args.get(1).ok_or(USAGE)?;
            let eval_path = args.get(2).ok_or(USAGE)?;
            let eval = load_database(&read(eval_path)?)?;
            let model = persist::parse_model(eval.schema(), &read(model_path)?)
                .map_err(|e| e.to_string())?;
            let labels = model.classify(&eval);
            Ok(render_labels(&eval, |e| labels.get(e)))
        }
        Some("relabel") => {
            let path = args.get(1).ok_or(USAGE)?;
            let k: usize = flag_value(&args[2..], "--k")
                .map(|v| v.parse().map_err(|_| "bad --k".to_string()))
                .transpose()?
                .unwrap_or(1);
            let train = load_training(&read(path)?)?;
            Ok(relabel_cmd(engine, &train, k))
        }
        Some("info") => {
            let path = args.get(1).ok_or(USAGE)?;
            let spec = DatabaseSpec::parse(&read(path)?).map_err(|e| e.to_string())?;
            let db = spec.to_database().map_err(|e| e.to_string())?;
            let mut out = String::new();
            let _ = writeln!(out, "schema:   {}", db.schema());
            let _ = writeln!(out, "elements: {}", db.dom_size());
            let _ = writeln!(out, "facts:    {}", db.fact_count());
            let _ = writeln!(out, "entities: {}", db.entities().len());
            let labeled = spec.entities.iter().filter(|(_, l)| l.is_some()).count();
            let _ = writeln!(out, "labeled:  {labeled}");
            Ok(out)
        }
        _ => Err(USAGE.to_string()),
    }
}

const USAGE: &str = "usage:
  cqsep-cli check <train.db> [--class cq|ghw<k>|cqm<m>]...
  cqsep-cli train <train.db> [--class <spec>] [-o model.txt]
  cqsep-cli classify <train.db> <eval.db> [--class <spec>]
  cqsep-cli classify-model <model.txt> <eval.db>
  cqsep-cli relabel <train.db> [--k <k>]
  cqsep-cli info <file.db>
engine flags (any command, any position):
  --stats              append the unified engine counter report
  --cache-dir <path>   warm-start from (and save back to) a verdict cache
  --threads <n>        cap solver parallelism at n worker threads
  --no-cache           run every hom/game query unmemoized";

fn parse_classes(args: &[String], default: Vec<ClassSpec>) -> Result<Vec<ClassSpec>, String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--class" {
            let v = args.get(i + 1).ok_or("--class needs a value")?;
            out.push(ClassSpec::parse(v)?);
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(if out.is_empty() { default } else { out })
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn load_training(text: &str) -> Result<TrainingDb, String> {
    DatabaseSpec::parse(text)
        .map_err(|e| e.to_string())?
        .to_training()
        .map_err(|e| e.to_string())
}

fn load_database(text: &str) -> Result<Database, String> {
    DatabaseSpec::parse(text)
        .map_err(|e| e.to_string())?
        .to_database()
        .map_err(|e| e.to_string())
}

fn check(engine: &Engine, train: &TrainingDb, classes: &[ClassSpec]) -> String {
    let mut out = String::new();
    let n = train.entities().len();
    let _ = writeln!(
        out,
        "{} entities ({} positive, {} negative), {} facts",
        n,
        train.positives().len(),
        train.negatives().len(),
        train.db.fact_count()
    );
    for &c in classes {
        let answer = match c {
            ClassSpec::Cq => sep_cq::cq_separable_with(engine, train),
            ClassSpec::Ghw(k) => sep_ghw::ghw_separable_with(engine, train, k),
            ClassSpec::Cqm(m) => sep_cqm::cqm_separable_with(engine, train, &EnumConfig::cqm(m)),
        };
        let _ = writeln!(out, "{c:>8}-separable: {answer}");
        if !answer {
            let witness = match c {
                ClassSpec::Cq => sep_cq::cq_inseparability_witness_with(engine, train),
                ClassSpec::Ghw(k) => sep_ghw::ghw_inseparability_witness_with(engine, train, k),
                ClassSpec::Cqm(_) => None,
            };
            if let Some((p, q)) = witness {
                let _ = writeln!(
                    out,
                    "         witness: {} (+) and {} (-) are indistinguishable",
                    train.db.val_name(p),
                    train.db.val_name(q)
                );
            }
        }
    }
    out
}

fn train_cmd(
    engine: &Engine,
    train: &TrainingDb,
    class: ClassSpec,
) -> Result<(String, String), String> {
    let model =
        match class {
            ClassSpec::Cq => sep_cq::cq_generate_with(engine, train)
                .ok_or_else(|| "not CQ-separable".to_string())?,
            ClassSpec::Ghw(k) => gen_ghw::ghw_generate_with(engine, train, k, 1_000_000)
                .map_err(|e| e.to_string())?,
            ClassSpec::Cqm(m) => sep_cqm::cqm_generate_with(engine, train, &EnumConfig::cqm(m))
                .ok_or_else(|| format!("not CQ[{m}]-separable"))?,
        };
    let report = format!(
        "{class}: {} features, {} total atoms\n",
        model.statistic.dimension(),
        model.statistic.total_atoms()
    );
    Ok((report, persist::model_to_text(&model)))
}

fn classify_cmd(
    engine: &Engine,
    train: &TrainingDb,
    eval: &Database,
    class: ClassSpec,
) -> Result<String, String> {
    let labels = match class {
        ClassSpec::Ghw(k) => cls_ghw::ghw_classify_with(engine, train, eval, k)
            .map_err(|_| format!("training data is not GHW({k})-separable"))?,
        ClassSpec::Cq => sep_cq::cq_classify_with(engine, train, eval)
            .ok_or_else(|| "training data is not CQ-separable".to_string())?,
        ClassSpec::Cqm(m) => sep_cqm::cqm_classify_with(engine, train, eval, &EnumConfig::cqm(m))
            .ok_or_else(|| format!("training data is not CQ[{m}]-separable"))?,
    };
    Ok(render_labels(eval, |e| labels.get(e)))
}

fn relabel_cmd(engine: &Engine, train: &TrainingDb, k: usize) -> String {
    let relabeled = apx::ghw_optimal_relabeling_with(engine, train, k);
    let errors = train.labeling.disagreement(&relabeled);
    let mut out = format!(
        "optimal GHW({k})-separable relabeling: {} disagreement(s)\n",
        errors
    );
    for e in train.entities() {
        let old = train.labeling.get(e);
        let new = relabeled.get(e);
        let mark = if old == new { " " } else { "*" };
        let _ = writeln!(
            out,
            "{mark} {} {} -> {}",
            train.db.val_name(e),
            sign(old),
            sign(new)
        );
    }
    out
}

fn render_labels(db: &Database, get: impl Fn(relational::Val) -> Label) -> String {
    let mut out = String::new();
    let mut named: Vec<(String, relational::Val)> = db
        .entities()
        .into_iter()
        .map(|e| (db.val_name(e).to_string(), e))
        .collect();
    named.sort();
    for (name, e) in named {
        let _ = writeln!(out, "{name} {}", sign(get(e)));
    }
    out
}

fn sign(l: Label) -> &'static str {
    match l {
        Label::Positive => "+",
        Label::Negative => "-",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRAIN: &str = "\
rel E/2
fact E(a,b)
fact E(b,c)
entity a +
entity b +
entity c -
";

    const EVAL: &str = "\
rel E/2
fact E(u,v)
entity u
entity v
";

    fn with_files<F: FnOnce(&str, &str) -> R, R>(f: F) -> R {
        let dir = std::env::temp_dir().join(format!("cqsep_cli_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let train = dir.join("train.db");
        let eval = dir.join("eval.db");
        std::fs::write(&train, TRAIN).unwrap();
        std::fs::write(&eval, EVAL).unwrap();
        f(train.to_str().unwrap(), eval.to_str().unwrap())
    }

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn class_spec_parsing() {
        assert_eq!(ClassSpec::parse("cq"), Ok(ClassSpec::Cq));
        assert_eq!(ClassSpec::parse("ghw2"), Ok(ClassSpec::Ghw(2)));
        assert_eq!(ClassSpec::parse("cqm3"), Ok(ClassSpec::Cqm(3)));
        assert!(ClassSpec::parse("ghw0").is_err());
        assert!(ClassSpec::parse("nope").is_err());
        assert!(ClassSpec::parse("cqmx").is_err());
    }

    #[test]
    fn check_reports_all_classes() {
        with_files(|train, _| {
            let out = run(&s(&["check", train])).unwrap();
            assert!(out.contains("CQ-separable: true"), "{out}");
            assert!(out.contains("GHW(1)-separable: true"), "{out}");
            assert!(out.contains("CQ[1]-separable: true"), "{out}");
        });
    }

    #[test]
    fn check_prints_witness_when_inseparable() {
        let dir = std::env::temp_dir().join(format!("cqsep_cli_w_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("bad.db");
        std::fs::write(
            &p,
            "rel E/2\nfact E(a,b)\nfact E(b,a)\nentity a +\nentity b -\n",
        )
        .unwrap();
        let out = run(&s(&["check", p.to_str().unwrap()])).unwrap();
        assert!(out.contains("CQ-separable: false"), "{out}");
        assert!(out.contains("witness"), "{out}");
    }

    #[test]
    fn train_then_classify_model_roundtrip() {
        with_files(|train, eval| {
            let dir = std::env::temp_dir().join(format!("cqsep_cli_m_{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let model = dir.join("model.txt");
            let out = run(&s(&[
                "train",
                train,
                "--class",
                "cqm1",
                "-o",
                model.to_str().unwrap(),
            ]))
            .unwrap();
            assert!(out.contains("model written"), "{out}");
            let out = run(&s(&["classify-model", model.to_str().unwrap(), eval])).unwrap();
            assert!(out.contains("u +"), "{out}");
            assert!(out.contains("v -"), "{out}");
        });
    }

    #[test]
    fn classify_via_algorithm_1() {
        with_files(|train, eval| {
            let out = run(&s(&["classify", train, eval, "--class", "ghw1"])).unwrap();
            assert!(out.contains("u "), "{out}");
            assert!(out.contains("v "), "{out}");
        });
    }

    #[test]
    fn relabel_reports_disagreements() {
        let dir = std::env::temp_dir().join(format!("cqsep_cli_r_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("noisy.db");
        std::fs::write(
            &p,
            "rel E/2\nfact E(a,b)\nfact E(b,a)\nentity a +\nentity b -\n",
        )
        .unwrap();
        let out = run(&s(&["relabel", p.to_str().unwrap()])).unwrap();
        assert!(out.contains("1 disagreement"), "{out}");
        assert!(out.contains('*'), "{out}");
    }

    #[test]
    fn info_summarizes() {
        with_files(|train, _| {
            let out = run(&s(&["info", train])).unwrap();
            assert!(out.contains("entities: 3"), "{out}");
            assert!(out.contains("labeled:  3"), "{out}");
        });
    }

    #[test]
    fn stats_flag_appends_engine_counters() {
        with_files(|train, _| {
            let out = run(&s(&["check", train, "--stats"])).unwrap();
            assert!(out.contains("CQ-separable: true"), "{out}");
            assert!(out.contains("hom engine stats"), "{out}");
            assert!(out.contains("nodes expanded"), "{out}");
            assert!(out.contains("cache hit"), "{out}");
            assert!(out.contains("cover-game engine stats"), "{out}");
            assert!(out.contains("games solved"), "{out}");
            // The default check runs GHW(1), so games actually happen.
            assert!(out.contains("fixpoint sweeps"), "{out}");
            assert!(out.contains("lp engine stats"), "{out}");
            assert!(out.contains("simplex pivots"), "{out}");
            assert!(out.contains("bignum promotions"), "{out}");
            // Flag position must not matter.
            let out2 = run(&s(&["--stats", "check", train])).unwrap();
            assert!(out2.contains("hom engine stats"), "{out2}");
            assert!(out2.contains("cover-game engine stats"), "{out2}");
            assert!(out2.contains("lp engine stats"), "{out2}");
        });
    }

    #[test]
    fn bad_usage_is_an_error() {
        assert!(run(&s(&[])).is_err());
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&s(&["check"])).is_err());
        assert!(run(&s(&["check", "/no/such/file"])).is_err());
        assert!(run(&s(&["check", "--threads"])).is_err());
        assert!(run(&s(&["check", "--threads", "0"])).is_err());
        assert!(run(&s(&["check", "--threads", "lots"])).is_err());
        assert!(run(&s(&["check", "--cache-dir"])).is_err());
    }

    #[test]
    fn engine_flags_are_stripped_from_any_position() {
        let (opts, rest) = split_engine_flags(&s(&[
            "--threads",
            "2",
            "check",
            "--no-cache",
            "x.db",
            "--cache-dir",
            "/tmp/c",
            "--stats",
        ]))
        .unwrap();
        assert!(opts.stats);
        assert!(opts.no_cache);
        assert_eq!(opts.threads, Some(2));
        assert_eq!(opts.cache_dir.as_deref(), Some("/tmp/c"));
        assert_eq!(rest, s(&["check", "x.db"]));
    }

    #[test]
    fn no_cache_and_threads_still_answer_correctly() {
        with_files(|train, _| {
            let out = run(&s(&["check", train, "--no-cache", "--threads", "1"])).unwrap();
            assert!(out.contains("CQ-separable: true"), "{out}");
            assert!(out.contains("GHW(1)-separable: true"), "{out}");
        });
    }

    #[test]
    fn cache_dir_warm_start_restores_entries() {
        with_files(|train, _| {
            let dir = std::env::temp_dir().join(format!("cqsep_cli_c_{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let cache = dir.to_str().unwrap();
            // --threads forces a fresh engine per run, so the second run
            // can only know the verdicts by reading them back from disk.
            let cold = run(&s(&[
                "check",
                train,
                "--threads",
                "2",
                "--cache-dir",
                cache,
                "--stats",
            ]))
            .unwrap();
            assert!(cold.contains("restored cache entries: 0"), "{cold}");
            assert!(dir.join("hom.cache").exists());
            assert!(dir.join("game.cache").exists());
            let warm = run(&s(&[
                "check",
                train,
                "--threads",
                "2",
                "--cache-dir",
                cache,
                "--stats",
            ]))
            .unwrap();
            assert!(!warm.contains("restored cache entries: 0"), "{warm}");
            assert!(warm.contains("restored cache entries:"), "{warm}");
            // Same verdicts either way.
            assert!(warm.contains("CQ-separable: true"), "{warm}");
            assert!(warm.contains("GHW(1)-separable: true"), "{warm}");
        });
    }
}
