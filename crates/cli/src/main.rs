//! `cqsep-cli`: separability checks, feature generation, classification,
//! and optimal relabeling over text-format databases. See `lib.rs` for
//! the command grammar.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cqsep_cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}
