//! Approximate separability in action (§7): start from a cleanly
//! separable dataset, inject label noise, and watch
//!
//! * exact separability break immediately,
//! * Algorithm 2 recover the *optimal* `GHW(k)`-separable relabeling,
//! * the `CQ[m]` minimum-error classifier (NP-hard, solved exactly by
//!   branch-and-bound) track the injected noise level.
//!
//! Run with: `cargo run --example noisy_labels`

use cqsep::{apx, sep_ghw, EnumConfig};
use workloads::{flip_labels, replicated_paths};

fn main() {
    // Clean data: path-start entities labeled by path-length parity, with
    // 4 indistinguishable twins per length. Twins are →_1-equivalent, so
    // a classifier must treat them alike — noise *within* a twin group is
    // genuinely irreparable, which is what makes approximation
    // interesting. (On structure-free random graphs every entity is its
    // own class and any labeling separates!)
    let clean = replicated_paths(4, 4);
    let n = clean.entities().len();
    assert!(sep_ghw::ghw_separable(&clean, 1));
    println!("clean instance: {n} entities, exactly separable\n");

    // The →_1 preorder depends only on the database, not the labels:
    // compute it once for the whole noise sweep.
    let preorder = sep_ghw::ghw_preorder(&clean, 1);

    println!(
        "{:>6} {:>7} {:>12} {:>12} {:>12}",
        "noise", "flips", "ghw-min-err", "cq[1]-err", "exact-sep?"
    );
    for noise in [0.0, 0.1, 0.2, 0.3] {
        let (noisy, flips) = flip_labels(&clean, noise, 7);
        // Optimal GHW(1) relabeling error (Theorem 7.4: provably minimal).
        let relabeled = apx::ghw_optimal_relabeling_from(&preorder, &noisy.labeling);
        let ghw_err = noisy.labeling.disagreement(&relabeled);
        // Optimal CQ[1] classifier error (exact branch-and-bound).
        let (_, cqm_err) = apx::cqm_apx_generate(&noisy, &EnumConfig::cqm(1));
        let exact = ghw_err == 0; // Theorem 5.3 criterion via the optimum
        println!(
            "{:>6.2} {:>7} {:>12} {:>12} {:>12}",
            noise, flips, ghw_err, cqm_err, exact
        );
        // Sanity: undoing the flips is one candidate relabeling, so the
        // optimum can never exceed the flip count; and the richer GHW(1)
        // class can never do worse than CQ[1].
        assert!(ghw_err <= flips);
        assert!(ghw_err <= cqm_err);
    }

    // ε-threshold view (GHW(k)-ApxSep): the smallest ε accepting the
    // noisy instance equals min-errors / n.
    let (noisy, _) = flip_labels(&clean, 0.2, 7);
    let min = apx::ghw_min_errors(&noisy, 1);
    let eps_star = min as f64 / n as f64;
    println!("\nwith 20% label noise: minimal feasible ε = {eps_star:.3}");
    assert!(apx::ghw_apx_separable(&noisy, 1, eps_star + 1e-9));
    if min > 0 {
        assert!(!apx::ghw_apx_separable(&noisy, 1, eps_star - 1e-9));
    }
    println!("ApxSep accepts at ε* and rejects just below it — Corollary 7.5.");
}
