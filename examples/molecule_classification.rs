//! Molecule classification — the propositionalization scenario the
//! paper's introduction cites ([24, 29]): entities are molecules in a
//! relational database of atoms and bonds, and feature queries are joins
//! over that structure.
//!
//! We synthesize a tiny "toxicity" dataset: a molecule is toxic iff it
//! contains a nitrogen atom bonded to an oxygen atom (an N–O motif). The
//! example walks the paper's feature-generation pipeline:
//!
//! 1. small-join features (`CQ[m]`-QBE for m = 1, 2) fail — the motif is
//!    a 4-atom join;
//! 2. the product construction of §6.1 finds the most-specific common
//!    feature of the toxic molecules, and core minimization shrinks it to
//!    (essentially) the N–O motif;
//! 3. the resulting one-feature statistic classifies unseen molecules.
//!
//! Run with: `cargo run --example molecule_classification`

use cq::core::core_of;
use cq::EnumConfig;
use cqsep::{DbBuilder, LinearClassifier, Schema, SeparatorModel, Statistic};
use numeric::qint;

/// Schema: molecules are entities; `has(mol, atom)` links molecules to
/// their atoms; `bond(a, b)` links atoms; `nitrogen/oxygen/carbon(a)`
/// type the atoms.
fn molecule_schema() -> Schema {
    let mut s = Schema::entity_schema();
    s.add_relation("has", 2);
    s.add_relation("bond", 2);
    s.add_relation("nitrogen", 1);
    s.add_relation("oxygen", 1);
    s.add_relation("carbon", 1);
    s
}

struct Molecule {
    name: &'static str,
    atoms: &'static [(&'static str, &'static str)],
    bonds: &'static [(&'static str, &'static str)],
    toxic: bool,
}

const TRAIN: &[Molecule] = &[
    // Toxic: contain an N–O bond.
    Molecule {
        name: "m1",
        atoms: &[("m1n", "nitrogen"), ("m1o", "oxygen"), ("m1c", "carbon")],
        bonds: &[("m1n", "m1o"), ("m1o", "m1c")],
        toxic: true,
    },
    Molecule {
        name: "m2",
        atoms: &[("m2n", "nitrogen"), ("m2o", "oxygen")],
        bonds: &[("m2n", "m2o")],
        toxic: true,
    },
    // Non-toxic: N and O present but not bonded.
    Molecule {
        name: "m3",
        atoms: &[("m3n", "nitrogen"), ("m3c", "carbon"), ("m3o", "oxygen")],
        bonds: &[("m3n", "m3c"), ("m3c", "m3o")],
        toxic: false,
    },
    // Non-toxic: no nitrogen.
    Molecule {
        name: "m4",
        atoms: &[("m4o", "oxygen"), ("m4c", "carbon")],
        bonds: &[("m4c", "m4o")],
        toxic: false,
    },
    // Non-toxic: no oxygen.
    Molecule {
        name: "m5",
        atoms: &[("m5n", "nitrogen"), ("m5c", "carbon")],
        bonds: &[("m5n", "m5c")],
        toxic: false,
    },
];

fn main() {
    let mut b = DbBuilder::new(molecule_schema());
    for m in TRAIN {
        for (atom, element) in m.atoms {
            b = b.fact("has", &[m.name, atom]).fact(element, &[atom]);
        }
        for (x, y) in m.bonds {
            b = b.fact("bond", &[x, y]).fact("bond", &[y, x]); // symmetric
        }
        b = if m.toxic {
            b.positive(m.name)
        } else {
            b.negative(m.name)
        };
    }
    let train = b.training();
    println!(
        "training: {} molecules, {} facts",
        train.entities().len(),
        train.db.fact_count()
    );

    // 1. Small joins are not enough: no single CQ[1]/CQ[2] feature
    //    explains the toxic/non-toxic split.
    let pos = train.positives();
    let neg = train.negatives();
    for m in 1..=2 {
        let found = qbe::cqm_qbe(&train.db, &pos, &neg, &EnumConfig::cqm(m).syntactic());
        println!(
            "CQ[{m}] explanation: {}",
            match &found {
                Some(q) => format!("{q}"),
                None => "none (motif needs more joins)".to_string(),
            }
        );
    }

    // 2. The product construction (§6.1) + core minimization.
    let explanation = qbe::cq_qbe_explain(&train.db, &pos, &neg, 5_000_000)
        .expect("product within budget")
        .expect("the N-O motif separates");
    println!(
        "\nproduct feature: {} atoms (most-specific common pattern)",
        explanation.atoms().len()
    );
    let cored = core_of(&explanation);
    println!("core-minimized feature: {} atoms", cored.atoms().len());
    // The product feature conditions on the whole training database,
    // including existential side conditions about *other* molecules that
    // would not transfer to new data. Keep only the part connected to
    // the classified molecule — the actual motif.
    let motif = cored.connected_to_free();
    println!(
        "motif (connected part, {} atoms):",
        motif.atom_count_for_cqm()
    );
    println!("  {motif}");

    // 3. One-feature statistic: toxic iff the motif matches.
    let model = SeparatorModel {
        statistic: Statistic::new(vec![motif.with_entity_guard()]),
        classifier: LinearClassifier::new(qint(1), vec![qint(1)]),
    };
    assert!(
        model.separates(&train),
        "the motif separates the training data"
    );

    // Held-out molecules.
    let eval = DbBuilder::new(molecule_schema())
        // t1: toxic (N-O bond present).
        .fact("has", &["t1", "t1a"])
        .fact("has", &["t1", "t1b"])
        .fact("nitrogen", &["t1a"])
        .fact("oxygen", &["t1b"])
        .fact("bond", &["t1a", "t1b"])
        .fact("bond", &["t1b", "t1a"])
        // t2: safe (C-O only).
        .fact("has", &["t2", "t2a"])
        .fact("has", &["t2", "t2b"])
        .fact("carbon", &["t2a"])
        .fact("oxygen", &["t2b"])
        .fact("bond", &["t2a", "t2b"])
        .fact("bond", &["t2b", "t2a"])
        .entity("t1")
        .entity("t2")
        .build();
    let labels = model.classify(&eval);
    println!("\nheld-out molecules:");
    for e in eval.entities() {
        println!("  {}: {:?}", eval.val_name(e), labels.get(e));
    }
}
