//! Quickstart: build a training database, test separability under every
//! regularization the paper studies, generate features, and classify new
//! entities.
//!
//! Run with: `cargo run --example quickstart`

use cqsep::{cls_ghw, gen_ghw, sep_cq, sep_cqm, sep_ghw, DbBuilder, EnumConfig, Schema};

fn main() {
    // 1. An entity schema: the distinguished unary η plus a binary edge
    //    relation ("cites", say).
    let mut schema = Schema::entity_schema();
    schema.add_relation("cites", 2);

    // 2. A training database (D, λ): papers citing a paper that itself
    //    cites something are "influential" (positive).
    let train = DbBuilder::new(schema.clone())
        .fact("cites", &["a", "b"])
        .fact("cites", &["b", "c"])
        .fact("cites", &["d", "c"])
        .positive("a") // cites b, which cites c
        .negative("b") // cites only a sink
        .negative("d")
        .negative("c")
        .training();

    // 3. Separability under the three regularized classes.
    println!("CQ-separable:      {}", sep_cq::cq_separable(&train));
    println!("GHW(1)-separable:  {}", sep_ghw::ghw_separable(&train, 1));
    println!(
        "CQ[1]-separable:   {}",
        sep_cqm::cqm_separable(&train, &EnumConfig::cqm(1))
    );
    println!(
        "CQ[2]-separable:   {}",
        sep_cqm::cqm_separable(&train, &EnumConfig::cqm(2))
    );

    // 4. Feature generation (Proposition 4.1 / Proposition 5.6): get an
    //    explicit statistic and classifier.
    let model =
        sep_cqm::cqm_generate(&train, &EnumConfig::cqm(2)).expect("CQ[2] separates this instance");
    println!(
        "\nGenerated CQ[2] model ({} features):",
        model.statistic.dimension()
    );
    println!("{}", model.classifier);

    let ghw_model = gen_ghw::ghw_generate(&train, 1, 100_000).expect("GHW(1) separates");
    println!("GHW(1) statistic:");
    print!("{}", ghw_model.statistic);

    // 5. Classify a new evaluation database — including via Algorithm 1,
    //    which never materializes the features.
    let eval = DbBuilder::new(schema)
        .fact("cites", &["x", "y"])
        .fact("cites", &["y", "z"])
        .entity("x")
        .entity("y")
        .entity("z")
        .build();
    let labels = cls_ghw::ghw_classify(&train, &eval, 1).expect("training data separable");
    println!("\nClassification of the evaluation database (Algorithm 1):");
    for e in eval.entities() {
        println!("  {}: {:?}", eval.val_name(e), labels.get(e));
    }
}
