//! Citation-network classification with the GHW(k) machinery — the
//! paper's flagship phenomenon (§5): deciding separability and
//! classifying is cheap, *materializing the features may not be*.
//!
//! We build a citation graph where the positive class is "transitively
//! influential" (long citation chains lead out of the paper). On the
//! longer chains, explicit feature generation (Proposition 5.6) under a
//! small node budget fails — the distinguishing queries are long path
//! unfoldings — while Algorithm 1 classifies an unseen network instantly.
//!
//! Run with: `cargo run --example citation_network`

use cqsep::{cls_ghw, gen_ghw, sep_ghw};
use workloads::alternating_paths;

fn main() {
    // Training data: the alternating-chain family from the paper's
    // lower-bound analysis (Theorem 5.7) — papers starting citation
    // chains of length 1..=m, alternately labeled.
    let m = 6;
    let train = alternating_paths(m);
    println!(
        "training network: {} papers, {} citations",
        train.entities().len(),
        train.db.fact_count() - train.entities().len() // subtract η facts
    );

    // Separability is polynomial (Theorem 5.3).
    assert!(sep_ghw::ghw_separable(&train, 1));
    println!("GHW(1)-separable: yes");

    // Explicit generation with a tight budget fails on this family —
    // the features are path unfoldings of growing size.
    match gen_ghw::ghw_generate(&train, 1, 8) {
        Err(e) => println!("explicit generation (budget 8 nodes): {e}"),
        Ok(model) => println!(
            "explicit generation small-budget unexpectedly succeeded \
             ({} features)",
            model.statistic.dimension()
        ),
    }
    // With a generous budget it succeeds; measure the statistic size.
    let model = gen_ghw::ghw_generate(&train, 1, 1_000_000).expect("generous budget");
    println!(
        "explicit generation (generous budget): {} features, {} total atoms",
        model.statistic.dimension(),
        model.statistic.total_atoms()
    );

    // Classification without generation (Algorithm 1, Theorem 5.8).
    // The evaluation network must be at least as globally rich as the
    // training one (features are whole-database patterns); we use a
    // larger network of the same design, with chains up to length m + 1.
    let eval = alternating_paths(m + 1).db;
    let labels = cls_ghw::ghw_classify(&train, &eval, 1).unwrap();
    println!("\nclassification of the evaluation network (chain starts):");
    let mut named: Vec<(String, relational::Val)> = eval
        .entities()
        .into_iter()
        .map(|e| (eval.val_name(e).to_string(), e))
        .collect();
    named.sort();
    for (name, e) in named {
        println!("  {name}: {:?}", labels.get(e));
    }
    println!(
        "(chain length parity was learned; the length-{} chain exceeds the\n\
         training horizon and is classified like the longest seen chain)",
        m + 1
    );
}
