//! Interruption suite for the `Ctx` task layer (PR 5's tentpole).
//!
//! Four contracts are under test:
//!
//! 1. **Prompt cancellation** — tripping a handle mid-solve unwinds the
//!    two heaviest loops (the pairwise cover-game sweep behind
//!    `CoverPreorder` and the `sep_dim` subset search) within bounded
//!    wall-clock, returning `Interrupted` with the cancellation reason.
//! 2. **Cache consistency** — an interrupted solve may not poison the
//!    engine's memo tables: re-running on the same engine completes and
//!    agrees with a fresh engine.
//! 3. **Zero deadline** — a `Duration::ZERO` budget makes *every*
//!    `foo_in` entry point return `Interrupted` (deadline reason)
//!    without panicking. The sweep below enumerates all of them; adding
//!    a `foo_in` without extending it should feel like a missing arm.
//! 4. **Past deadline** — an already-expired `Interrupt::at` handle
//!    behaves like a zero budget.

use cq::EnumConfig;
use cqsep::sep_dim::{self, DimBudget, DimClass};
use cqsep::{apx, chain, cls_ghw, fo, gen_ghw, sep_cq, sep_cqm, sep_dim_naive, sep_ghw};
use engine::{Engine, Interrupt, Reason};
use relational::TrainingDb;
use std::time::{Duration, Instant};
use workloads::lowerbound;

/// Generous per-test bound on how long a cancelled solve may keep
/// running. Cancellation checks sit between parallel fan-out blocks, so
/// the real latency is a block's worth of work — seconds of slack keep
/// slow CI hosts from flaking.
const PROMPTNESS: Duration = Duration::from_secs(20);

/// Cancel `handle` from another thread after `delay`, run `f`, and
/// return its result plus the wall-clock the solve consumed.
fn cancel_after<T>(handle: &Interrupt, delay: Duration, f: impl FnOnce() -> T) -> (T, Duration) {
    let trigger = handle.clone();
    let cancel = std::thread::spawn(move || {
        std::thread::sleep(delay);
        trigger.cancel();
    });
    let started = Instant::now();
    let out = f();
    let elapsed = started.elapsed();
    cancel.join().unwrap();
    (out, elapsed)
}

#[test]
fn cancel_lands_mid_preorder_sweep() {
    // Large enough that the pairwise cover-game sweep takes far longer
    // than the 50ms cancellation delay (alternating_paths(10) already
    // blows a 1-second budget in the serve acceptance test).
    let train = lowerbound::alternating_paths(12);
    let engine = Engine::new();
    let handle = Interrupt::none();
    let ctx = engine.ctx_with_interrupt(handle.clone());

    let (result, elapsed) = cancel_after(&handle, Duration::from_millis(50), || {
        sep_ghw::ghw_preorder_in(&ctx, &train, 1)
    });
    let interrupted = result.expect_err("cancellation must unwind the preorder sweep");
    assert_eq!(interrupted.reason, Reason::Cancelled);
    assert!(
        elapsed < PROMPTNESS,
        "cancelled preorder kept running for {elapsed:?}"
    );
}

/// The parity workload from the LP benchmarks, rebuilt inline (bench is
/// not a dependency of this suite): rows are the 2^nbits bit vectors,
/// column `m` is the parity of `row & m`, labels are the parity of the
/// full mask. No subset of the columns is linearly separable from the
/// target (thresholds cannot compute XOR), so the subset sweep runs to
/// exhaustion — unless cancelled.
fn parity_columns(nbits: u32) -> (Vec<Vec<i32>>, Vec<i32>) {
    let rows = 1usize << nbits;
    let full = rows - 1;
    let sign = |v: usize| if v.count_ones() % 2 == 1 { 1 } else { -1 };
    let columns = (1..full)
        .map(|m| (0..rows).map(|r| sign(r & m)).collect())
        .collect();
    let labels = (0..rows).map(|r| sign(r & full)).collect();
    (columns, labels)
}

#[test]
fn cancel_lands_mid_subset_sweep() {
    // 30 columns at ell = 10 is ~55M candidate subsets: hours of LPs,
    // not milliseconds.
    let (columns, labels) = parity_columns(5);
    let engine = Engine::new();
    let handle = Interrupt::none();
    let ctx = engine.ctx_with_interrupt(handle.clone());

    let (result, elapsed) = cancel_after(&handle, Duration::from_millis(50), || {
        sep_dim::search_columns_in(&ctx, &columns, &labels, 10)
    });
    let interrupted = result.expect_err("cancellation must unwind the subset sweep");
    assert_eq!(interrupted.reason, Reason::Cancelled);
    assert!(
        elapsed < PROMPTNESS,
        "cancelled subset sweep kept running for {elapsed:?}"
    );
}

#[test]
fn interrupted_engine_stays_consistent() {
    // A deliberately-starved first attempt leaves partial entries in the
    // shared hom/game/LP caches. The contract: a re-run on the *same*
    // engine completes and agrees with a fresh engine everywhere.
    let train = lowerbound::alternating_paths(7);
    let warm = Engine::new();
    let starved = warm.ctx_with_deadline(Duration::from_millis(30));
    // The outcome of the starved attempt is host-speed-dependent and
    // deliberately unasserted; only the aftermath matters.
    let _ = sep_ghw::ghw_preorder_in(&starved, &train, 1);
    let _ = apx::ghw_min_errors_in(&starved, &train, 1);

    let fresh = Engine::new();
    assert_eq!(
        sep_ghw::ghw_separable_in(&warm.ctx(), &train, 1).unwrap(),
        sep_ghw::ghw_separable_in(&fresh.ctx(), &train, 1).unwrap(),
        "GHW separability must agree after an interrupted warm-up"
    );
    assert_eq!(
        apx::ghw_min_errors_in(&warm.ctx(), &train, 1).unwrap(),
        apx::ghw_min_errors_in(&fresh.ctx(), &train, 1).unwrap(),
        "minimum error count must agree after an interrupted warm-up"
    );
    assert_eq!(
        sep_cq::cq_separable_in(&warm.ctx(), &train).unwrap(),
        sep_cq::cq_separable_in(&fresh.ctx(), &train).unwrap(),
        "CQ separability must agree after an interrupted warm-up"
    );
}

/// Assert that a `foo_in` call under an expired context returned
/// `Err(Interrupted)` with the deadline reason.
macro_rules! expect_interrupted {
    ($name:expr, $call:expr) => {
        match $call {
            Err(stop) => assert!(
                stop.deadline_exceeded(),
                "{}: interrupted with wrong reason {:?}",
                $name,
                stop.reason
            ),
            Ok(_) => panic!("{}: completed under an expired deadline", $name),
        }
    };
}

/// Every interruptible entry point, called under the given context.
/// Shared between the zero-deadline and past-deadline sweeps.
fn sweep_all_entry_points(ctx: &engine::Ctx, train: &TrainingDb) {
    let eval = train.db.clone();
    let entities = train.entities();
    let (a, b) = (entities[0], entities[1]);
    let cfg = EnumConfig::cqm(1);
    let budget = DimBudget::default();
    let columns = vec![vec![1, -1], vec![-1, 1]];
    let labels = vec![1, -1];
    // Identity preorder matrix for build_chain_in.
    let n = entities.len();
    let leq: Vec<Vec<bool>> = (0..n).map(|i| (0..n).map(|j| i == j).collect()).collect();
    // A real preorder (computed unbounded) for chain_vector_for.
    let pre = ctx
        .engine()
        .ctx()
        .preorder(&train.db, &entities, 1)
        .unwrap();
    let stat = sep_cqm::full_statistic(&train.db, &cfg.clone().syntactic());

    // crates/core: sep_cq
    expect_interrupted!("cq_separable_in", sep_cq::cq_separable_in(ctx, train));
    expect_interrupted!("cq_chain_in", sep_cq::cq_chain_in(ctx, train));
    expect_interrupted!("cq_generate_in", sep_cq::cq_generate_in(ctx, train));
    expect_interrupted!("cq_classify_in", sep_cq::cq_classify_in(ctx, train, &eval));
    expect_interrupted!(
        "cq_inseparability_witness_in",
        sep_cq::cq_inseparability_witness_in(ctx, train)
    );
    expect_interrupted!("epfo_separable_in", sep_cq::epfo_separable_in(ctx, train));

    // crates/core: sep_ghw + gen_ghw + cls_ghw
    expect_interrupted!("ghw_separable_in", sep_ghw::ghw_separable_in(ctx, train, 1));
    expect_interrupted!(
        "ghw_inseparability_witness_in",
        sep_ghw::ghw_inseparability_witness_in(ctx, train, 1)
    );
    expect_interrupted!("ghw_preorder_in", sep_ghw::ghw_preorder_in(ctx, train, 1));
    expect_interrupted!("ghw_chain_in", sep_ghw::ghw_chain_in(ctx, train, 1));
    expect_interrupted!(
        "ghw_generate_in",
        gen_ghw::ghw_generate_in(ctx, train, 1, 1_000_000)
    );
    expect_interrupted!(
        "ghw_classify_in",
        cls_ghw::ghw_classify_in(ctx, train, &eval, 1)
    );

    // crates/core: sep_cqm
    expect_interrupted!(
        "cqm_separable_in",
        sep_cqm::cqm_separable_in(ctx, train, &cfg)
    );
    expect_interrupted!(
        "cqm_generate_in",
        sep_cqm::cqm_generate_in(ctx, train, &cfg)
    );
    expect_interrupted!(
        "cqm_classify_in",
        sep_cqm::cqm_classify_in(ctx, train, &eval, &cfg)
    );
    expect_interrupted!(
        "column_reduced_statistic_in",
        sep_cqm::column_reduced_statistic_in(ctx, train, &cfg)
    );

    // crates/core: apx
    expect_interrupted!(
        "ghw_optimal_relabeling_in",
        apx::ghw_optimal_relabeling_in(ctx, train, 1)
    );
    expect_interrupted!("ghw_min_errors_in", apx::ghw_min_errors_in(ctx, train, 1));
    expect_interrupted!(
        "ghw_apx_separable_in",
        apx::ghw_apx_separable_in(ctx, train, 1, 0.1)
    );
    expect_interrupted!(
        "ghw_apx_classify_in",
        apx::ghw_apx_classify_in(ctx, train, &eval, 1)
    );
    expect_interrupted!(
        "cqm_apx_generate_in",
        apx::cqm_apx_generate_in(ctx, train, &cfg)
    );
    expect_interrupted!(
        "cqm_apx_separable_in",
        apx::cqm_apx_separable_in(ctx, train, &cfg, 0.1)
    );

    // crates/core: sep_dim + sep_dim_naive
    expect_interrupted!(
        "sep_dim_in",
        sep_dim::sep_dim_in(ctx, train, &DimClass::Cq, 2, &budget)
    );
    expect_interrupted!(
        "sep_dim_witness_in",
        sep_dim::sep_dim_witness_in(ctx, train, &DimClass::Cq, 2, &budget)
    );
    expect_interrupted!(
        "cq_sep_dim_in",
        sep_dim::cq_sep_dim_in(ctx, train, 2, &budget)
    );
    expect_interrupted!(
        "ghw_sep_dim_in",
        sep_dim::ghw_sep_dim_in(ctx, train, 1, 2, &budget)
    );
    expect_interrupted!(
        "cqm_sep_dim_in",
        sep_dim::cqm_sep_dim_in(ctx, train, &cfg, 2)
    );
    expect_interrupted!(
        "sep_dim_generate_in",
        sep_dim::sep_dim_generate_in(ctx, train, &DimClass::Cq, 2, &budget, 10_000)
    );
    expect_interrupted!(
        "sep_dim_classify_in",
        sep_dim::sep_dim_classify_in(ctx, train, &eval, &DimClass::Cq, 2, &budget, 10_000)
    );
    expect_interrupted!(
        "search_columns_in",
        sep_dim::search_columns_in(ctx, &columns, &labels, 2)
    );
    expect_interrupted!(
        "search_columns_seq_in",
        sep_dim::search_columns_seq_in(ctx, &columns, &labels, 2)
    );
    expect_interrupted!(
        "sep_dim_naive_in",
        sep_dim_naive::sep_dim_naive_in(ctx, train, &DimClass::Cq, 2, &budget)
    );

    // crates/core: chain, fo, statistic
    expect_interrupted!(
        "build_chain_in",
        chain::build_chain_in(ctx, train, &entities, &leq)
    );
    expect_interrupted!(
        "min_dimension_of_in",
        fo::min_dimension_of_in(ctx, train, &[], 8)
    );
    expect_interrupted!(
        "Statistic::apply_in",
        stat.apply_in(ctx, &train.db, &entities)
    );

    // crates/engine: QBE oracles and LP free functions
    expect_interrupted!(
        "cq_qbe_decide_in",
        engine::cq_qbe_decide_in(ctx, &train.db, &[a], &[b], 10_000)
    );
    expect_interrupted!(
        "cq_qbe_explain_in",
        engine::cq_qbe_explain_in(ctx, &train.db, &[a], &[b], 10_000)
    );
    expect_interrupted!(
        "ghw_qbe_decide_in",
        engine::ghw_qbe_decide_in(ctx, &train.db, &[a], &[b], 1, 10_000)
    );
    expect_interrupted!(
        "ghw_qbe_explain_in",
        engine::ghw_qbe_explain_in(ctx, &train.db, &[a], &[b], 1, 10_000, 10_000)
    );
    expect_interrupted!(
        "cqm_qbe_in",
        engine::cqm_qbe_in(ctx, &train.db, &[a], &[b], &cfg)
    );
    expect_interrupted!("separate_in", engine::separate_in(ctx, &columns, &labels));

    // crates/engine: Ctx primitives
    expect_interrupted!(
        "Ctx::hom_exists",
        ctx.hom_exists(&train.db, &train.db, &[(a, b)])
    );
    expect_interrupted!(
        "Ctx::cover_implies",
        ctx.cover_implies(&train.db, &[a], &train.db, &[b], 1)
    );
    expect_interrupted!("Ctx::separate", ctx.separate(&columns, &labels));
    expect_interrupted!(
        "Ctx::separate_with_margin",
        ctx.separate_with_margin(&columns, &labels)
    );
    expect_interrupted!("Ctx::min_error", ctx.min_error(&columns, &labels));
    expect_interrupted!("Ctx::preorder", ctx.preorder(&train.db, &entities, 1));
    expect_interrupted!(
        "Ctx::chain_vector_for",
        ctx.chain_vector_for(&pre, &train.db, &train.db, a)
    );
}

#[test]
fn zero_deadline_interrupts_every_entry_point() {
    let train = lowerbound::example_6_2();
    let engine = Engine::new();
    let ctx = engine.ctx_with_deadline(Duration::ZERO);
    sweep_all_entry_points(&ctx, &train);
}

#[test]
fn past_deadline_interrupts_every_entry_point() {
    let train = lowerbound::example_6_2();
    let engine = Engine::new();
    // A deadline that expired before the context was even built.
    let ctx = engine.ctx_with_interrupt(Interrupt::at(Instant::now()));
    sweep_all_entry_points(&ctx, &train);
}
