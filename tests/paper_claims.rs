//! One test per checkable claim of the paper, named after its statement.
//! These are the "unit tests of the theory": each theorem/proposition
//! whose content is observable at laptop scale gets verified on concrete
//! instances.

use cq::EnumConfig;
use cqsep::sep_dim::{cq_sep_dim, ghw_sep_dim, DimBudget};
use cqsep::{apx, cls_ghw, fo, gen_ghw, sep_cq, sep_cqm, sep_ghw};
use relational::{DbBuilder, Label, Labeling, Schema, TrainingDb};
use workloads::{alternating_paths, example_6_2, twin_cycles, twin_paths};

fn graph_schema() -> Schema {
    let mut s = Schema::entity_schema();
    s.add_relation("E", 2);
    s
}

/// Theorem 3.2 (lower-bound shape): CQ-Sep instances exist that are
/// inseparable purely because of hom-equivalence, over the single binary
/// relation + η schema the theorem pins down.
#[test]
fn theorem_3_2_schema_shape() {
    let t = twin_cycles(3);
    assert_eq!(t.db.schema().rel_count(), 2); // η and E only
    assert!(!sep_cq::cq_separable(&t));
}

/// Proposition 4.1: the all-features CQ[m] statistic decides and the
/// produced pair separates.
#[test]
fn proposition_4_1_constructive() {
    let t = alternating_paths(3);
    let model = sep_cqm::cqm_generate(&t, &EnumConfig::cqm(3)).expect("separable");
    assert!(model.separates(&t));
}

/// Proposition 4.3 / §6.3: CQ[m,p] is strictly weaker than CQ[m] (the
/// occurrence bound really bites).
#[test]
fn proposition_4_3_occurrence_bound() {
    let t = DbBuilder::new(graph_schema())
        .fact("E", &["a", "a"])
        .fact("E", &["b", "z"])
        .fact("E", &["z", "b"])
        .positive("a")
        .negative("b")
        .training();
    assert!(!sep_cqm::cqm_separable(&t, &EnumConfig::cqmp(1, 1)));
    assert!(sep_cqm::cqm_separable(&t, &EnumConfig::cqmp(1, 2)));
}

/// Theorem 5.3 + Lemma 5.4: GHW(k)-Sep equals the pairwise mutual-→_k
/// criterion (tested across instances in cross_solver.rs; here the two
/// named examples).
#[test]
fn theorem_5_3_examples() {
    assert!(sep_ghw::ghw_separable(&alternating_paths(4), 1));
    assert!(!sep_ghw::ghw_separable(&twin_cycles(4), 2));
}

/// Proposition 5.6: generation is possible (given exponential budget) and
/// the features land in GHW(k) with dimension ≤ |η(D)|.
#[test]
fn proposition_5_6_generation() {
    let t = alternating_paths(3);
    let model = gen_ghw::ghw_generate(&t, 1, 100_000).unwrap();
    assert!(model.separates(&t));
    assert!(model.statistic.dimension() <= t.entities().len());
    for q in &model.statistic.features {
        assert!(cq::ghw(q) <= 1);
    }
}

/// Theorem 5.7 (shape): on the twin-path family the distinguishing
/// feature grows with the family parameter `n` — every query separating
/// `u` from `v` must contain the out-path-of-length-`n` pattern. (The
/// paper's appendix gadget achieves `2^n`; see DESIGN.md §4.) And on the
/// alternating-chain family the *dimension* of any separating statistic
/// grows linearly — the exactly measured part (a) of the theorem.
#[test]
fn theorem_5_7_feature_blowup_shape() {
    // (b)-shape: every distinguishing query must contain the out-path
    // pattern of length n, so its E-atom count is at least n — a size
    // lower bound that grows with the family parameter. (Raw extracted
    // sizes are not monotone — the strategy unfolding is not minimal —
    // so we assert the provable bound.)
    for n in [3usize, 4, 5, 6] {
        let t = twin_paths(n);
        let u = t.db.val_by_name("u").unwrap();
        let v = t.db.val_by_name("v").unwrap();
        let (q, td) = covergame::extract_distinguishing_query(&t.db, u, &t.db, v, 1, 2_000_000)
            .expect("u is distinguishable from v");
        td.verify(&q, 1).unwrap();
        let e_atoms = q
            .atoms()
            .iter()
            .filter(|a| t.db.schema().name(a.rel) == "E")
            .count();
        assert!(
            e_atoms >= n,
            "n={n}: distinguishing query has {e_atoms} E-atoms"
        );
    }
    // (a): minimal dimension is m − 1 (measured in
    // theorem_8_7_unbounded_dimension below and in the workloads tests).
}

/// Theorem 5.8 / Algorithm 1: classification works without generation,
/// even when the generation budget would be blown.
#[test]
fn theorem_5_8_classification_without_generation() {
    let t = alternating_paths(6);
    // Tiny budget: explicit generation fails (features need path-length
    // unfoldings far past one strategy node)...
    match gen_ghw::ghw_generate(&t, 1, 2) {
        Err(gen_ghw::GenError::Budget { .. }) => {}
        other => panic!("expected budget failure, got {other:?}"),
    }
    // ...but classification succeeds and reproduces the labels.
    let lab = cls_ghw::ghw_classify(&t, &t.db, 1).unwrap();
    for e in t.entities() {
        assert_eq!(lab.get(e), t.labeling.get(e));
    }
}

/// Example 6.2: separable, not with one feature, with two.
#[test]
fn example_6_2_dimension_gap() {
    let t = example_6_2();
    let b = DimBudget::default();
    assert!(sep_cq::cq_separable(&t));
    assert!(!cq_sep_dim(&t, 1, &b).unwrap());
    assert!(cq_sep_dim(&t, 2, &b).unwrap());
}

/// Lemma 6.5 shape: the reduction's padding constants behave as the proof
/// demands (κ_i elements are positive, c⁻ negative, originals keep their
/// side). Full answer-equivalence is tested randomly in cross_solver.rs.
#[test]
fn lemma_6_5_construction_shape() {
    let mut s = Schema::new();
    s.add_relation("R", 1);
    let d = DbBuilder::new(s).fact("R", &["a"]).element("b").build();
    let a = d.val_by_name("a").unwrap();
    let b = d.val_by_name("b").unwrap();
    let red = cqsep::reduction::qbe_to_sep_ell(&d, &[a], &[b], 3);
    let t = &red.train;
    assert_eq!(t.positives().len(), 1 + 2); // a, c1, c2
    assert_eq!(t.negatives().len(), 1 + 1); // b, c_minus
    let c1 = t.db.val_by_name("c1").unwrap();
    assert_eq!(t.labeling.get(c1), Label::Positive);
    let cm = t.db.val_by_name("c_minus").unwrap();
    assert_eq!(t.labeling.get(cm), Label::Negative);
}

/// Theorem 7.4 / Algorithm 2: the relabeling is separable and optimal
/// (brute-forced here on a mixed instance).
#[test]
fn theorem_7_4_optimality() {
    // 2-cycle pair with labels 2+/1−... craft: class {a,b} labels (+,−),
    // class {c,d,e} on a 3-cycle... keep it small: two 2-cycles.
    let t = DbBuilder::new(graph_schema())
        .fact("E", &["a", "b"])
        .fact("E", &["b", "a"])
        .fact("E", &["c", "d"])
        .fact("E", &["d", "c"])
        .positive("a")
        .negative("b")
        .negative("c")
        .negative("d")
        .training();
    let lam2 = apx::ghw_optimal_relabeling(&t, 1);
    let relabeled = TrainingDb::new(t.db.clone(), lam2.clone());
    assert!(
        sep_ghw::ghw_separable(&relabeled, 1),
        "Algorithm 2 output separable"
    );
    let best = t.labeling.disagreement(&lam2);
    // Brute force over all labelings.
    let ents = t.entities();
    let mut brute = usize::MAX;
    for mask in 0u32..(1 << ents.len()) {
        let mut lab = Labeling::new();
        for (i, &e) in ents.iter().enumerate() {
            lab.set(
                e,
                if mask & (1 << i) != 0 {
                    Label::Positive
                } else {
                    Label::Negative
                },
            );
        }
        let cand = TrainingDb::new(t.db.clone(), lab.clone());
        if sep_ghw::ghw_separable(&cand, 1) {
            brute = brute.min(t.labeling.disagreement(&lab));
        }
    }
    assert_eq!(best, brute, "Algorithm 2 must be optimal");
}

/// Corollary 7.5: ApxSep answers follow the optimal-error threshold.
#[test]
fn corollary_7_5_threshold() {
    let t = DbBuilder::new(graph_schema())
        .fact("E", &["a", "b"])
        .fact("E", &["b", "a"])
        .positive("a")
        .negative("b")
        .training();
    // min errors = 1 of 2 entities: ε ≥ 1/2 accepts, below rejects.
    assert!(apx::ghw_apx_separable(&t, 1, 0.5));
    assert!(!apx::ghw_apx_separable(&t, 1, 0.49));
}

/// Proposition 7.1 (shape): padding transfers separability faithfully for
/// several fixed ε (full checks in the apx module tests).
#[test]
fn proposition_7_1_padding() {
    let sep = alternating_paths(3);
    let insep = twin_cycles(3);
    for eps in [0.2, 0.4] {
        let p_sep = apx::pad_for_error(&sep, eps);
        let p_insep = apx::pad_for_error(&insep, eps);
        let n_sep = p_sep.entities().len() as f64;
        let n_insep = p_insep.entities().len() as f64;
        assert!(apx::ghw_min_errors(&p_sep, 1) as f64 <= (eps * n_sep).floor());
        assert!(apx::ghw_min_errors(&p_insep, 1) as f64 > eps * n_insep);
    }
}

/// Proposition 8.1 / Corollary 8.2 (shape): FO-separability is decided by
/// orbit tests; a single FO feature suffices conceptually, witnessed here
/// by FO separating a CQ-inseparable instance.
#[test]
fn proposition_8_1_fo_collapse_witness() {
    // CQ-inseparable but FO-separable (pendant-broken symmetry).
    let t = DbBuilder::new(graph_schema())
        .fact("E", &["a", "b"])
        .fact("E", &["b", "c"])
        .fact("E", &["c", "a"])
        .fact("E", &["x", "y"])
        .fact("E", &["y", "z"])
        .fact("E", &["z", "x"])
        .fact("E", &["x", "t"])
        .positive("a")
        .negative("x")
        .training();
    assert!(!sep_cq::cq_separable(&t));
    assert!(fo::fo_separable(&t));
}

/// Theorem 8.7 (measured): the linear families force unbounded dimension.
#[test]
fn theorem_8_7_unbounded_dimension() {
    let schema = graph_schema();
    for m in [3usize, 5] {
        let t = alternating_paths(m);
        let pool: Vec<cq::Cq> = (1..=m)
            .map(|len| {
                let mut body = String::from("q(x0) :- eta(x0)");
                for i in 0..len {
                    body += &format!(", E(x{i},x{})", i + 1);
                }
                cq::parse::parse_cq(&schema, &body).unwrap()
            })
            .collect();
        let dim = fo::min_dimension_of(&t, &pool, m).unwrap();
        assert_eq!(dim, m - 1, "m={m}: dimension must grow with m");
    }
}

/// GHW(k) dimension-bounded separability (Theorem 6.6 upper-bound path):
/// decision via up-set search matches plain separability at saturation.
#[test]
fn theorem_6_6_ghw_dim() {
    let t = example_6_2();
    let b = DimBudget::default();
    assert!(!ghw_sep_dim(&t, 1, 1, &b).unwrap());
    assert!(ghw_sep_dim(&t, 1, 2, &b).unwrap());
}
