//! Regression scenarios beyond the binary-graph comfort zone: ternary
//! relations, mixed-arity schemas, repeated variables, and empty corner
//! cases — across every solver layer.

use cq::parse::parse_cq;
use cq::{evaluate_unary, EnumConfig};
use cqsep::{cls_ghw, sep_cq, sep_cqm, sep_ghw};
use relational::{DbBuilder, Label, Schema, TrainingDb};

/// Schema with a ternary "meeting" relation and a unary tag.
fn ternary_schema() -> Schema {
    let mut s = Schema::entity_schema();
    s.add_relation("meets", 3); // (person, person, room)
    s.add_relation("vip", 1);
    s
}

fn meetings() -> TrainingDb {
    // alice meets bob in r1; bob meets carol in r2; carol is vip.
    // dave never meets anyone.
    // Positive: people who attended a meeting in the first slot.
    DbBuilder::new(ternary_schema())
        .fact("meets", &["alice", "bob", "r1"])
        .fact("meets", &["bob", "carol", "r2"])
        .fact("vip", &["carol"])
        .positive("alice")
        .positive("bob")
        .negative("carol")
        .negative("dave")
        .training()
}

#[test]
fn ternary_relations_through_all_separability_solvers() {
    let t = meetings();
    // q(x) :- meets(x, y, z) separates attendees-in-slot-1.
    assert!(sep_cqm::cqm_separable(&t, &EnumConfig::cqm(1)));
    assert!(sep_ghw::ghw_separable(&t, 1));
    assert!(sep_cq::cq_separable(&t));
    let model = sep_cqm::cqm_generate(&t, &EnumConfig::cqm(1)).unwrap();
    assert!(model.separates(&t));
}

#[test]
fn ternary_evaluation_and_repeated_variables() {
    let s = ternary_schema();
    let d = DbBuilder::new(s.clone())
        .fact("meets", &["a", "a", "r"]) // self-meeting
        .fact("meets", &["b", "c", "r"])
        .entity("a")
        .entity("b")
        .entity("c")
        .build();
    // Repeated variable: who meets themselves?
    let q = parse_cq(&s, "q(x) :- eta(x), meets(x,x,r)").unwrap();
    let sel = evaluate_unary(&q, &d);
    assert_eq!(sel.len(), 1);
    assert_eq!(d.val_name(sel[0]), "a");
    // Projection onto the third position.
    let q = parse_cq(&s, "q(x) :- eta(x), meets(y,x,r)").unwrap();
    let names: Vec<&str> = evaluate_unary(&q, &d)
        .iter()
        .map(|&v| d.val_name(v))
        .collect();
    assert_eq!(names, vec!["a", "c"]);
}

#[test]
fn ternary_cover_game_and_classification() {
    let t = meetings();
    // Algorithm 1 over the ternary schema: training labels reproduced.
    let lab = cls_ghw::ghw_classify(&t, &t.db, 1).unwrap();
    for e in t.entities() {
        assert_eq!(lab.get(e), t.labeling.get(e), "{}", t.db.val_name(e));
    }
    // Eval database: a fresh meeting chain. All chain members must be
    // entities — the implicit features are whole-database patterns
    // including η facts, so a non-entity middleman would block them.
    let eval = DbBuilder::new(ternary_schema())
        .fact("meets", &["x", "y", "q1"])
        .fact("meets", &["y", "z", "q2"])
        .fact("vip", &["z"])
        .entity("x")
        .entity("y")
        .entity("z")
        .build();
    let lab = cls_ghw::ghw_classify(&t, &eval, 1).unwrap();
    // x matches alice's pattern exactly (starts a meeting chain).
    assert_eq!(lab.get(eval.val_by_name("x").unwrap()), Label::Positive);
    // z matches carol's (vip, meeting target in second slot).
    assert_eq!(lab.get(eval.val_by_name("z").unwrap()), Label::Negative);
}

#[test]
fn mixed_arity_ghw_machinery() {
    // ghw over a schema with arities 1, 2, 3 together.
    let mut s = Schema::entity_schema();
    s.add_relation("T", 3);
    s.add_relation("E", 2);
    s.add_relation("U", 1);
    // q(x) :- T(x,y,z), E(z,w), U(w): a chain through mixed arities.
    let q = parse_cq(&s, "q(x) :- eta(x), T(x,y,z), E(z,w), U(w)").unwrap();
    // All existential vars hang off a path: ghw 1.
    assert_eq!(cq::ghw(&q), 1);
    // q(x) :- T(y,z,w) with a triangle among y,z,w via E:
    let q2 = parse_cq(&s, "q(x) :- eta(x), T(y,z,w), E(y,z), E(z,w), E(w,y)").unwrap();
    // The single T-atom covers all three existential vars: ghw 1!
    assert_eq!(cq::ghw(&q2), 1);
    // Without the covering ternary atom the triangle needs width 2.
    let q3 = parse_cq(&s, "q(x) :- eta(x), E(y,z), E(z,w), E(w,y)").unwrap();
    assert_eq!(cq::ghw(&q3), 2);
}

#[test]
fn empty_and_degenerate_training_databases() {
    // No entities at all: trivially separable everywhere.
    let s = ternary_schema();
    let t = TrainingDb::new(
        DbBuilder::new(s.clone()).fact("vip", &["x"]).build(),
        relational::Labeling::new(),
    );
    assert!(sep_cq::cq_separable(&t));
    assert!(sep_ghw::ghw_separable(&t, 1));
    assert!(sep_cqm::cqm_separable(&t, &EnumConfig::cqm(1)));

    // Single entity: always separable; classifiers are constant.
    let t1 = DbBuilder::new(s.clone()).positive("only").training();
    assert!(sep_ghw::ghw_separable(&t1, 1));
    let lab = cls_ghw::ghw_classify(&t1, &t1.db, 1).unwrap();
    assert_eq!(lab.get(t1.db.val_by_name("only").unwrap()), Label::Positive);

    // All entities share one label: separable even when structurally
    // identical.
    let tsame = DbBuilder::new(s)
        .positive("p1")
        .positive("p2")
        .positive("p3")
        .training();
    assert!(sep_ghw::ghw_separable(&tsame, 1));
    assert!(sep_cqm::cqm_separable(&tsame, &EnumConfig::cqm(1)));
}

#[test]
fn unary_only_schema() {
    // The paper's Example 6.2 schema shape: only unary relations.
    let mut s = Schema::entity_schema();
    s.add_relation("A", 1);
    s.add_relation("B", 1);
    let t = DbBuilder::new(s)
        .fact("A", &["x"])
        .fact("B", &["y"])
        .fact("A", &["z"])
        .fact("B", &["z"])
        .positive("z") // has both
        .negative("x")
        .negative("y")
        .negative("w") // has neither
        .training();
    // CQ[1]-Sep allows MANY single-atom features: A(x) and B(x)
    // together realize the AND pattern linearly, so it separates.
    assert!(sep_cqm::cqm_separable(&t, &EnumConfig::cqm(1)));
    // But no SINGLE CQ[1] feature does (A and B each mix the classes):
    // the dimension-bounded variant at ℓ=1 fails, at ℓ=2 succeeds.
    assert!(!cqsep::sep_dim::cqm_sep_dim(&t, &EnumConfig::cqm(1), 1));
    assert!(cqsep::sep_dim::cqm_sep_dim(&t, &EnumConfig::cqm(1), 2));
    // One 2-atom feature A(x) ∧ B(x) also works: ℓ=1 at m=2.
    assert!(cqsep::sep_dim::cqm_sep_dim(&t, &EnumConfig::cqm(2), 1));
    // GHW(1) contains A(x) ∧ B(x) (no existential vars at all): yes.
    assert!(sep_ghw::ghw_separable(&t, 1));
}

#[test]
fn cross_arity_qbe() {
    let s = ternary_schema();
    let d = DbBuilder::new(s)
        .fact("meets", &["a", "b", "r"])
        .fact("meets", &["c", "d", "r"])
        .fact("vip", &["a"])
        .entity("a")
        .entity("c")
        .build();
    let a = d.val_by_name("a").unwrap();
    let c = d.val_by_name("c").unwrap();
    // vip(x) explains {a} vs {c}.
    let q = qbe::cqm_qbe(&d, &[a], &[c], &EnumConfig::cqm(1)).expect("vip explains");
    let sel = evaluate_unary(&q, &d);
    assert!(sel.contains(&a) && !sel.contains(&c));
    // And the product route agrees.
    assert!(qbe::cq_qbe_decide(&d, &[a], &[c], 100_000).unwrap());
    assert!(!qbe::cq_qbe_decide(&d, &[c], &[a], 100_000).unwrap());
}

#[test]
fn ternary_extraction_certificates() {
    let t = meetings();
    let alice = t.db.val_by_name("alice").unwrap();
    let carol = t.db.val_by_name("carol").unwrap();
    // alice and carol are distinguishable at k=1; extract and verify.
    let (q, td) = covergame::extract_distinguishing_query(&t.db, alice, &t.db, carol, 1, 100_000)
        .expect("distinguishable");
    assert!(cq::selects(&q, &t.db, alice));
    assert!(!cq::selects(&q, &t.db, carol));
    td.verify(&q, 1).unwrap();
}

#[test]
fn wide_arity_stress() {
    // Arity 5: exercises the index structures and the game's larger
    // union element sets.
    let mut s = Schema::entity_schema();
    s.add_relation("W", 5);
    let t = DbBuilder::new(s)
        .fact("W", &["p", "a", "b", "c", "d"])
        .fact("W", &["q", "a", "b", "c", "c"])
        .positive("p")
        .negative("q")
        .training();
    // p's fact has 5 distinct elements; q's repeats c — the pattern
    // W(x, y1, y2, y3, y4) with distinct-looking variables folds onto
    // both, but W(x,y,z,w,w)-style repetition separates q from p...
    // q ⪯ p? query at q: ∃ W(x,·,·,u,u): p lacks it -> not q ⪯ p.
    // p ⪯ q? query at p: W(x,a,b,c,d) folds onto q's fact by mapping
    // c,d -> c,c? distinct vars may merge: yes -> p ⪯ q.
    assert!(sep_ghw::ghw_separable(&t, 1));
    let lab = cls_ghw::ghw_classify(&t, &t.db, 1).unwrap();
    for e in t.entities() {
        assert_eq!(lab.get(e), t.labeling.get(e));
    }
}
