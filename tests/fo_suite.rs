//! Deeper §8 coverage: the FO / FO_k / ∃FO⁺ landscape, the
//! dimension-collapse characterization (Theorem 8.4), and the
//! unbounded-dimension property (Proposition 8.6 / Theorem 8.7).

use cq::parse::parse_cq;
use cqsep::fo;
use cqsep::sep_cq;
use relational::{DbBuilder, Label, Schema, TrainingDb};

fn graph_schema() -> Schema {
    let mut s = Schema::entity_schema();
    s.add_relation("E", 2);
    s
}

/// The canonical four-way landscape instance:
/// * `a` on a triangle with a pendant (E(a-triangle) + pendant out of x's
///   triangle) — CQ-inseparable from `x` but FO-separable.
fn pendant_triangles() -> TrainingDb {
    DbBuilder::new(graph_schema())
        .fact("E", &["a", "b"])
        .fact("E", &["b", "c"])
        .fact("E", &["c", "a"])
        .fact("E", &["x", "y"])
        .fact("E", &["y", "z"])
        .fact("E", &["z", "x"])
        .fact("E", &["x", "t"])
        .positive("a")
        .negative("x")
        .training()
}

#[test]
fn fo_strictly_stronger_than_cq() {
    let t = pendant_triangles();
    assert!(!sep_cq::cq_separable(&t));
    assert!(!sep_cq::epfo_separable(&t)); // ∃FO⁺ ≡ CQ (Prop 8.3(2))
    assert!(fo::fo_separable(&t));
}

#[test]
fn fo_k_hierarchy_converges_to_fo() {
    let t = pendant_triangles();
    // FO_k for large enough k (≥ structure size) coincides with FO.
    let n = t.db.dom_size();
    assert_eq!(fo::fo_k_separable(&t, n), fo::fo_separable(&t));
    // Monotone in k.
    let mut prev = false;
    for k in 1..=n {
        let now = fo::fo_k_separable(&t, k);
        if prev {
            assert!(now, "FO_{k} must not regress");
        }
        prev = now;
    }
}

#[test]
fn fo_2_separates_degree_like_properties() {
    // In/out-degree-1 distinctions need only 2 variables.
    let t = DbBuilder::new(graph_schema())
        .fact("E", &["src", "mid"])
        .fact("E", &["mid", "sink"])
        .positive("mid") // has both in- and out-edges
        .negative("src")
        .negative("sink")
        .training();
    assert!(fo::fo_k_separable(&t, 2));
    assert!(!fo::fo_k_separable(&t, 1));
}

#[test]
fn theorem_8_4_closure_violation_on_cq() {
    // Two incomparable CQ answer sets whose complements break
    // ∩-closure — the generic reason CQ lacks dimension collapse.
    let s = graph_schema();
    let d = DbBuilder::new(s.clone())
        .fact("E", &["p", "q"]) // p has out-edge
        .fact("E", &["r", "p"]) // p has in-edge
        .entity("p")
        .entity("q")
        .entity("r")
        .build();
    let out_q = parse_cq(&s, "q(x) :- eta(x), E(x,y)").unwrap();
    let in_q = parse_cq(&s, "q(x) :- eta(x), E(y,x)").unwrap();
    // out = {p, r}, in = {p, q}: their intersection {p} is not among
    // {out, in, co-out, co-in} -> violation.
    assert!(fo::intersection_closure_violation(&d, &[out_q, in_q]).is_some());
}

#[test]
fn theorem_8_4_closure_holds_for_orbit_unions() {
    // A family that IS closed under intersection: queries whose answer
    // sets form a chain (the linear family of Prop 8.6 restricted to one
    // database). Chains are ∩-closed together with complements? The
    // condition needs *all* pairwise intersections present; chain ∩
    // co-chain = set differences... verify the checker on a genuinely
    // closed family: a single query (sets {S, co-S}: S∩co-S=∅... ∅ must
    // be in the family!). Use a query selecting nothing plus one
    // selecting everything to make the family a Boolean sublattice.
    let s = graph_schema();
    let d = DbBuilder::new(s.clone())
        .fact("E", &["a", "a"])
        .entity("a")
        .entity("b")
        .build();
    // all = {a, b} via eta(x); none = {} via E(x,y),E(y,x),eta-mismatch?
    // Simplest empty-answer query here: q(x) :- eta(x), E(x,y), E(y,z),
    // E(z,x) with x != loops... the loop satisfies it. Take instead
    // "x has an out-edge AND an in-edge from a *different*"... CQs fold;
    // use q(x) :- eta(x), E(y,x) — b has no in-edge, a's loop gives a.
    // Family from {eta, loop-query}: {ab, ∅(co-eta), a, b}: need a∩b=∅
    // present -> yes (co-eta = ∅). Closed!
    let all_q = parse_cq(&s, "q(x) :- eta(x)").unwrap();
    let loop_q = parse_cq(&s, "q(x) :- eta(x), E(x,x)").unwrap();
    assert!(fo::intersection_closure_violation(&d, &[all_q, loop_q]).is_none());
}

#[test]
fn unbounded_dimension_on_linear_families() {
    // Proposition 8.6: the alternating path forces dimension growth.
    let schema = graph_schema();
    for n in [2usize, 4] {
        let t = fo::linear_family_db(n);
        let pool: Vec<cq::Cq> = (1..=n)
            .map(|len| {
                let mut body = String::from("q(x0) :- eta(x0)");
                for i in 0..len {
                    body += &format!(", E(x{i},x{})", i + 1);
                }
                parse_cq(&schema, &body).unwrap()
            })
            .collect();
        let dim = fo::min_dimension_of(&t, &pool, n + 1).expect("pool suffices");
        assert!(dim >= n / 2, "n={n}: got {dim}");
    }
}

#[test]
fn fo_classify_handles_unmatched_eval_entities() {
    let t = DbBuilder::new(graph_schema())
        .fact("E", &["s", "t"])
        .positive("s")
        .negative("t")
        .training();
    // Eval structurally different from training: nothing is pointed-
    // isomorphic, so everything defaults to Negative (a valid FO-Cls
    // answer — FO can define exactly the training iso-types).
    let eval = DbBuilder::new(graph_schema())
        .fact("E", &["a", "b"])
        .fact("E", &["b", "c"])
        .entity("a")
        .entity("b")
        .entity("c")
        .build();
    let lab = fo::fo_classify(&t, &eval).unwrap();
    for e in eval.entities() {
        assert_eq!(lab.get(e), Label::Negative);
    }
    // Inseparable training data gives no labeling.
    let bad = DbBuilder::new(graph_schema())
        .fact("E", &["u", "v"])
        .fact("E", &["v", "u"])
        .positive("u")
        .negative("v")
        .training();
    assert!(fo::fo_classify(&bad, &eval).is_none());
}

#[test]
fn fo_qbe_vs_cq_qbe() {
    // On the pendant-triangle instance FO explains what CQ cannot.
    let t = pendant_triangles();
    let pos = t.positives();
    let neg = t.negatives();
    assert!(fo::fo_qbe(&t.db, &pos, &neg));
    assert!(!qbe::cq_qbe_decide(&t.db, &pos, &neg, 1_000_000).unwrap());
}

#[test]
fn fo_k_qbe_monotone_and_bounded_by_fo() {
    let t = pendant_triangles();
    let pos = t.positives();
    let neg = t.negatives();
    let mut prev = false;
    for k in 1..=4 {
        let now = fo::fo_k_qbe(&t.db, &pos, &neg, k);
        if prev {
            assert!(now, "FO_{k}-QBE regressed");
        }
        if now {
            assert!(fo::fo_qbe(&t.db, &pos, &neg), "FO_k ⊆ FO");
        }
        prev = now;
    }
}
