//! Cross-validation between independent solver implementations. The
//! theory gives many equalities and inclusions between the problems; each
//! one is a free oracle test. Instances are small random databases, so
//! disagreements localize bugs precisely.

use cq::EnumConfig;
use cqsep::sep_dim::{cq_sep_dim, cqm_sep_dim, ghw_sep_dim, DimBudget};
use cqsep::{fo, sep_cq, sep_cqm, sep_ghw};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relational::{Database, Label, Labeling, Schema, TrainingDb};

fn graph_schema() -> Schema {
    let mut s = Schema::entity_schema();
    s.add_relation("E", 2);
    s
}

/// Random training database: `n` elements, random edges, all elements
/// entities with random labels.
fn random_train(n: usize, edge_prob: f64, seed: u64) -> TrainingDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new(graph_schema());
    let e = db.schema().rel_by_name("E").unwrap();
    let vals: Vec<_> = (0..n).map(|i| db.value(&format!("v{i}"))).collect();
    for i in 0..n {
        for j in 0..n {
            if rng.random::<f64>() < edge_prob {
                db.add_fact(e, vec![vals[i], vals[j]]);
            }
        }
    }
    let mut labeling = Labeling::new();
    for &v in &vals {
        db.add_entity(v);
        labeling.set(
            v,
            if rng.random::<bool>() {
                Label::Positive
            } else {
                Label::Negative
            },
        );
    }
    TrainingDb::new(db, labeling)
}

/// Inclusion chain: CQ[m]-separable ⇒ GHW(m)-separable ⇒ CQ-separable,
/// and GHW(k)-separable ⇒ GHW(k+1)-separable.
#[test]
fn separability_inclusions_on_random_instances() {
    for seed in 0..12 {
        let t = random_train(6, 0.25, seed);
        let cqm1 = sep_cqm::cqm_separable(&t, &EnumConfig::cqm(1));
        let cqm2 = sep_cqm::cqm_separable(&t, &EnumConfig::cqm(2));
        let g1 = sep_ghw::ghw_separable(&t, 1);
        let g2 = sep_ghw::ghw_separable(&t, 2);
        let cq = sep_cq::cq_separable(&t);
        assert!(!cqm1 || cqm2, "CQ[1] ⊆ CQ[2] (seed {seed})");
        assert!(!cqm1 || g1, "CQ[1] ⊆ GHW(1) (seed {seed})");
        assert!(!cqm2 || g2, "CQ[2] ⊆ GHW(2) (seed {seed})");
        assert!(!g1 || g2, "GHW(1) ⊆ GHW(2) (seed {seed})");
        assert!(!g2 || cq, "GHW(2) ⊆ CQ (seed {seed})");
        // CQ separability implies FO separability (FO ⊇ ∃FO⁺ in power).
        if cq {
            assert!(fo::fo_separable(&t), "CQ ⊆ FO separability (seed {seed})");
        }
    }
}

/// GHW(k)-Sep must agree with the definitional criterion evaluated
/// through an entirely different code path: mutual →_k on pos/neg pairs
/// computed via the preorder structure.
#[test]
fn ghw_sep_agrees_with_preorder_classes() {
    for seed in 0..10 {
        let t = random_train(5, 0.3, seed * 31 + 1);
        for k in 1..=2 {
            let direct = sep_ghw::ghw_separable(&t, k);
            let pre = sep_ghw::ghw_preorder(&t, k);
            let class_pure = pre.classes.iter().all(|class| {
                let first = t.labeling.get(pre.elems[class[0]]);
                class.iter().all(|&i| t.labeling.get(pre.elems[i]) == first)
            });
            assert_eq!(direct, class_pure, "seed {seed}, k={k}");
        }
    }
}

/// Sep[ℓ] with ℓ = number of entities coincides with unrestricted Sep.
#[test]
fn sep_dim_saturates_to_plain_sep() {
    let budget = DimBudget::default();
    for seed in 0..8 {
        let t = random_train(4, 0.3, seed * 7 + 3);
        let ell = t.entities().len();
        assert_eq!(
            cq_sep_dim(&t, ell, &budget).unwrap(),
            sep_cq::cq_separable(&t),
            "CQ seed {seed}"
        );
        assert_eq!(
            ghw_sep_dim(&t, 1, ell, &budget).unwrap(),
            sep_ghw::ghw_separable(&t, 1),
            "GHW seed {seed}"
        );
        assert_eq!(
            cqm_sep_dim(&t, &EnumConfig::cqm(1), ell.max(8)),
            sep_cqm::cqm_separable(&t, &EnumConfig::cqm(1)),
            "CQ[1] seed {seed}"
        );
    }
}

/// Sep[ℓ] is monotone in ℓ and bounded above by plain separability.
#[test]
fn sep_dim_monotonicity_random() {
    let budget = DimBudget::default();
    for seed in 0..6 {
        let t = random_train(4, 0.35, seed * 13 + 5);
        let mut prev = false;
        for ell in 1..=3 {
            let now = cq_sep_dim(&t, ell, &budget).unwrap();
            if prev {
                assert!(now, "seed {seed}: Sep[{ell}] regressed");
            }
            if now {
                assert!(sep_cq::cq_separable(&t), "seed {seed}");
            }
            prev = now;
        }
    }
}

/// The QBE ⇄ Sep[ℓ] bridge (Lemma 6.5) on random instances: reduce and
/// compare answers end-to-end.
#[test]
fn lemma_6_5_reduction_random() {
    use cqsep::reduction::qbe_to_sep_ell;
    for seed in 0..8 {
        // Build a plain (non-entity) database.
        let mut s = Schema::new();
        s.add_relation("E", 2);
        let mut rng = StdRng::seed_from_u64(seed * 17 + 11);
        let mut db = Database::new(s);
        let e = db.schema().rel_by_name("E").unwrap();
        let vals: Vec<_> = (0..4).map(|i| db.value(&format!("u{i}"))).collect();
        for i in 0..4 {
            for j in 0..4 {
                if rng.random::<f64>() < 0.4 {
                    db.add_fact(e, vec![vals[i], vals[j]]);
                }
            }
        }
        // Random nonempty S+ (partition with S-).
        let mask: usize = rng.random_range(1..(1 << 4) - 1);
        let pos: Vec<_> = (0..4)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| vals[i])
            .collect();
        let neg: Vec<_> = (0..4)
            .filter(|i| mask & (1 << i) == 0)
            .map(|i| vals[i])
            .collect();
        let qbe_answer = qbe::cq_qbe_decide(&db, &pos, &neg, 500_000).unwrap();
        for ell in 1..=2 {
            let red = qbe_to_sep_ell(&db, &pos, &neg, ell);
            let sep_answer = cq_sep_dim(&red.train, ell, &DimBudget::default()).unwrap();
            assert_eq!(
                qbe_answer, sep_answer,
                "seed {seed}, ℓ={ell}: Lemma 6.5 equivalence violated"
            );
        }
    }
}

/// FO_k separability grows with k and is sandwiched between FO_1 and FO.
#[test]
fn fo_hierarchy_random() {
    for seed in 0..6 {
        let t = random_train(4, 0.3, seed * 29 + 2);
        let mut prev = false;
        for k in 1..=3 {
            let now = fo::fo_k_separable(&t, k);
            if prev {
                assert!(now, "seed {seed}: FO_{k} regressed");
            }
            prev = now;
        }
        if prev {
            // FO_3 separable on a 4-element structure... FO_k ⊆ FO always.
            assert!(fo::fo_separable(&t), "seed {seed}");
        }
    }
}

/// Homomorphism solver vs brute force on random pointed pairs — the
/// lowest-level oracle everything else depends on.
#[test]
fn hom_solver_vs_brute_force_random() {
    use relational::hom::{brute_force_exists, homomorphism_exists};
    for seed in 0..20 {
        let t1 = random_train(4, 0.35, seed * 3 + 1);
        let t2 = random_train(4, 0.35, seed * 3 + 2);
        let e1 = t1.entities()[0];
        let e2 = t2.entities()[0];
        assert_eq!(
            homomorphism_exists(&t1.db, &t2.db, &[(e1, e2)]),
            brute_force_exists(&t1.db, &t2.db, &[(e1, e2)]),
            "seed {seed}"
        );
        assert_eq!(
            homomorphism_exists(&t1.db, &t2.db, &[]),
            brute_force_exists(&t1.db, &t2.db, &[]),
            "seed {seed} (no point)"
        );
    }
}

/// The cover game must sandwich the homomorphism relation:
/// `→ ⊆ →_{k+1} ⊆ →_k` (the approximation chain of §5).
#[test]
fn cover_game_sandwich_random() {
    use covergame::cover_implies;
    use relational::homomorphism_exists;
    for seed in 0..10 {
        let t = random_train(5, 0.3, seed * 41 + 13);
        let ents = t.entities();
        for &a in ents.iter().take(3) {
            for &b in ents.iter().take(3) {
                let hom = homomorphism_exists(&t.db, &t.db, &[(a, b)]);
                let k1 = cover_implies(&t.db, &[a], &t.db, &[b], 1);
                let k2 = cover_implies(&t.db, &[a], &t.db, &[b], 2);
                if hom {
                    assert!(k2, "seed {seed}: → ⊄ →_2");
                }
                if k2 {
                    assert!(k1, "seed {seed}: →_2 ⊄ →_1");
                }
            }
        }
    }
}
