//! Deep §7 coverage: approximate separability across classes, the
//! ε-threshold semantics, classification under noise, and the padding
//! reduction at several fixed ε.

use cq::EnumConfig;
use cqsep::{apx, sep_cqm, sep_ghw};
use relational::{DbBuilder, Schema, TrainingDb};
use workloads::{flip_labels, replicated_paths, twin_cycles};

fn graph_schema() -> Schema {
    let mut s = Schema::entity_schema();
    s.add_relation("E", 2);
    s
}

#[test]
fn apx_sep_threshold_is_exact() {
    // Twin groups of 3 with a 2-vs-1 label split force exactly 1 error
    // per conflicted group.
    let mut b = DbBuilder::new(graph_schema());
    for g in 0..2 {
        for c in 0..3 {
            let from = format!("g{g}c{c}");
            let to = format!("g{g}c{c}x");
            b = b.fact("E", &[&from, &to]);
        }
    }
    // Group 0: labels + + -  (1 forced error); group 1: + + + (clean).
    let t = b
        .positive("g0c0")
        .positive("g0c1")
        .negative("g0c2")
        .positive("g1c0")
        .positive("g1c1")
        .positive("g1c2")
        .training();
    assert_eq!(apx::ghw_min_errors(&t, 1), 1);
    let n = t.entities().len() as f64; // 6
    assert!(apx::ghw_apx_separable(&t, 1, 1.0 / n));
    assert!(!apx::ghw_apx_separable(&t, 1, 1.0 / n - 1e-9));
}

#[test]
fn apx_classify_realizes_the_optimum() {
    let clean = replicated_paths(3, 3);
    for (rate, seed) in [(0.15, 3u64), (0.3, 9)] {
        let (noisy, _) = flip_labels(&clean, rate, seed);
        let min = apx::ghw_min_errors(&noisy, 1);
        let recovered = apx::ghw_apx_classify(&noisy, &noisy.db, 1);
        // The recovered labeling is GHW(1)-separable...
        let cand = TrainingDb::new(noisy.db.clone(), recovered.clone());
        assert!(sep_ghw::ghw_separable(&cand, 1));
        // ...and achieves exactly the optimal disagreement.
        assert_eq!(noisy.labeling.disagreement(&recovered), min);
    }
}

#[test]
fn class_power_ordering_of_min_errors() {
    // Richer classes can only reduce the minimal error:
    // err_GHW(2) ≤ err_GHW(1) and err_GHW(1) ≤ err_CQ[1].
    let clean = replicated_paths(3, 2);
    for seed in [1u64, 5, 11] {
        let (noisy, _) = flip_labels(&clean, 0.3, seed);
        let g1 = apx::ghw_min_errors(&noisy, 1);
        let g2 = apx::ghw_min_errors(&noisy, 2);
        let (_, c1) = apx::cqm_apx_generate(&noisy, &EnumConfig::cqm(1));
        assert!(
            g2 <= g1,
            "seed {seed}: GHW(2) must not err more than GHW(1)"
        );
        assert!(g1 <= c1, "seed {seed}: GHW(1) must not err more than CQ[1]");
    }
}

#[test]
fn inseparable_twins_err_at_every_class() {
    // Twin cycles: the conflicted pair costs 1 error under every class.
    let t = twin_cycles(3);
    assert_eq!(apx::ghw_min_errors(&t, 1), 1);
    assert_eq!(apx::ghw_min_errors(&t, 2), 1);
    let (_, errs) = apx::cqm_apx_generate(&t, &EnumConfig::cqm(2));
    assert_eq!(errs, 1);
}

#[test]
fn padding_reduction_multiple_epsilons() {
    // The ε-padding transfers exact separability to ε-separability and
    // inseparability to ε-inseparability, for several fixed ε and both
    // outcomes, measured through the GHW(1) optimum.
    let sep = replicated_paths(3, 1); // clean, separable
    let insep = twin_cycles(4);
    for eps in [0.0, 0.15, 0.3, 0.45] {
        let p = apx::pad_for_error(&sep, eps);
        let n = p.entities().len() as f64;
        let min = apx::ghw_min_errors(&p, 1) as f64;
        assert!(
            min <= (eps * n).floor(),
            "eps={eps}: separable must fit budget ({min} > {})",
            (eps * n).floor()
        );
        let p = apx::pad_for_error(&insep, eps);
        let n = p.entities().len() as f64;
        let min = apx::ghw_min_errors(&p, 1) as f64;
        assert!(min > eps * n, "eps={eps}: inseparable must exceed budget");
    }
}

#[test]
fn cqm_apx_model_usable_for_classification() {
    let clean = replicated_paths(3, 2);
    let (noisy, _) = flip_labels(&clean, 0.2, 21);
    let (model, errors) = apx::cqm_apx_generate(&noisy, &EnumConfig::cqm(3));
    assert_eq!(model.errors(&noisy), errors);
    // The model classifies a fresh evaluation database without panicking
    // and deterministically.
    let eval = replicated_paths(4, 1).db;
    let a = model.classify(&eval);
    let b = model.classify(&eval);
    for e in eval.entities() {
        assert_eq!(a.get(e), b.get(e));
    }
}

#[test]
fn zero_noise_means_zero_errors_everywhere() {
    let clean = replicated_paths(4, 2);
    assert_eq!(apx::ghw_min_errors(&clean, 1), 0);
    assert!(apx::ghw_apx_separable(&clean, 1, 0.0));
    let (_, errs) = apx::cqm_apx_generate(&clean, &EnumConfig::cqm(4));
    assert_eq!(errs, 0);
    assert!(apx::cqm_apx_separable(&clean, &EnumConfig::cqm(4), 0.0));
    assert!(sep_cqm::cqm_separable(&clean, &EnumConfig::cqm(4)));
}
