//! End-to-end pipelines: train → decide separability → generate features
//! → classify evaluation data → verify every promise the paper makes
//! about the produced artifacts, across all solver families.

use cq::EnumConfig;
use cqsep::{apx, cls_ghw, gen_ghw, sep_cq, sep_cqm, sep_ghw};
use relational::{DbBuilder, Label, Schema, TrainingDb};
use workloads::{alternating_paths, flip_labels, random_digraph_train};

fn graph_schema() -> Schema {
    let mut s = Schema::entity_schema();
    s.add_relation("E", 2);
    s
}

/// A small "social graph": people follow each other; the one account at
/// the end of an incoming 2-path ("star") is the positive class.
fn social_train() -> TrainingDb {
    DbBuilder::new(graph_schema())
        .fact("E", &["fan1", "mid"])
        .fact("E", &["mid", "star"])
        .fact("E", &["fan2", "mid"])
        .fact("E", &["loner_fan", "minor"])
        .positive("star")
        .negative("mid")
        .negative("minor")
        .negative("fan1")
        .training()
}

#[test]
fn full_pipeline_cqm() {
    let t = social_train();
    // "star" is the only entity with an incoming 2-path: needs 2 atoms.
    let model = sep_cqm::cqm_generate(&t, &EnumConfig::cqm(2)).expect("CQ[2] separates");
    assert!(model.separates(&t));
    // Every feature respects the m-bound and carries the η guard.
    for q in &model.statistic.features {
        assert!(q.atom_count_for_cqm() <= 2);
        assert!(q.has_entity_guard());
    }
    // Transfer to a fresh evaluation database with the same shape.
    let eval = DbBuilder::new(graph_schema())
        .fact("E", &["a", "b"])
        .fact("E", &["b", "c"])
        .entity("c")
        .entity("b")
        .build();
    let lab = model.classify(&eval);
    assert_eq!(lab.get(eval.val_by_name("c").unwrap()), Label::Positive);
    assert_eq!(lab.get(eval.val_by_name("b").unwrap()), Label::Negative);
}

#[test]
fn full_pipeline_ghw() {
    let t = social_train();
    assert!(sep_ghw::ghw_separable(&t, 1));
    // Implicit classification (Algorithm 1) reproduces training labels.
    let lab = cls_ghw::ghw_classify(&t, &t.db, 1).unwrap();
    for e in t.entities() {
        assert_eq!(lab.get(e), t.labeling.get(e));
    }
    // Explicit generation also works here (small instance) and its
    // features verify: bounded ghw, correct selection on training data.
    let model = gen_ghw::ghw_generate(&t, 1, 50_000).unwrap();
    assert!(model.separates(&t));
    for q in &model.statistic.features {
        assert!(cq::ghw(q) <= 1, "{q}");
    }
}

#[test]
fn full_pipeline_cq() {
    let t = social_train();
    assert!(sep_cq::cq_separable(&t));
    let model = sep_cq::cq_generate(&t).unwrap();
    assert!(model.separates(&t));
    // The CQ statistic has one feature per hom-equivalence class and
    // polynomial total size.
    assert!(model.statistic.dimension() <= t.entities().len());
    let cells: usize = model.statistic.total_atoms();
    assert!(cells <= model.statistic.dimension() * (t.db.fact_count() + 1));
}

#[test]
fn noisy_pipeline_recovers_with_apx() {
    // Plant a separable labeling on a random graph, flip ~20% of labels,
    // and check Algorithm 2 finds a relabeling at least as close as the
    // noise level (it is optimal, and the clean labeling is separable
    // when no two →_1-equivalent entities got different clean labels —
    // guaranteed here because the clean labels are a →_1-invariant:
    // "has an out-edge").
    let clean = random_digraph_train(14, 0.18, 99);
    let (noisy, flips) = flip_labels(&clean, 0.2, 7);
    let min_err = apx::ghw_min_errors(&noisy, 1);
    assert!(
        min_err <= flips,
        "optimal relabeling ({min_err}) cannot beat undoing the {flips} flips"
    );
    // ApxCls produces a labeling realizable with exactly min_err errors.
    let recovered = apx::ghw_apx_classify(&noisy, &noisy.db, 1);
    assert_eq!(noisy.labeling.disagreement(&recovered), min_err);
}

#[test]
fn chain_workload_crosses_all_solvers() {
    let t = alternating_paths(3);
    // Separable under every class (all classes are singletons).
    assert!(sep_cq::cq_separable(&t));
    assert!(sep_ghw::ghw_separable(&t, 1));
    assert!(sep_cqm::cqm_separable(&t, &EnumConfig::cqm(3)));
    // And the generated models actually separate.
    assert!(sep_cq::cq_generate(&t).unwrap().separates(&t));
    assert!(gen_ghw::ghw_generate(&t, 1, 100_000).unwrap().separates(&t));
    assert!(sep_cqm::cqm_generate(&t, &EnumConfig::cqm(3))
        .unwrap()
        .separates(&t));
}

#[test]
fn eval_classification_is_deterministic_and_consistent() {
    // The formal guarantee of L-Cls: there is a statistic separating the
    // training data that also produces the emitted labels. We verify the
    // checkable consequences: rerunning classification on the training
    // database returns λ, and eval labels are stable across calls.
    let t = alternating_paths(3);
    let eval = alternating_paths(5).db;
    let a = cls_ghw::ghw_classify(&t, &eval, 1).unwrap();
    let b = cls_ghw::ghw_classify(&t, &eval, 1).unwrap();
    for f in eval.entities() {
        assert_eq!(a.get(f), b.get(f));
    }
    let back = cls_ghw::ghw_classify(&t, &t.db, 1).unwrap();
    for e in t.entities() {
        assert_eq!(back.get(e), t.labeling.get(e));
    }
}

#[test]
fn text_format_roundtrip_through_solvers() {
    // Parse a training database from the text format, solve, re-emit.
    let text = "\
rel follows/2
fact follows(ann,bob)
fact follows(bob,cat)
fact follows(dan,bob)
entity ann -
entity bob -
entity cat +
entity dan -
";
    let spec = relational::spec::DatabaseSpec::parse(text).unwrap();
    let t = spec.to_training().unwrap();
    assert!(sep_cq::cq_separable(&t));
    let model = sep_cqm::cqm_generate(&t, &EnumConfig::cqm(2)).unwrap();
    assert!(model.separates(&t));
    let back = relational::spec::DatabaseSpec::from_database(&t.db, Some(&t.labeling));
    let reparsed = relational::spec::DatabaseSpec::parse(&back.to_text()).unwrap();
    let t2 = reparsed.to_training().unwrap();
    assert_eq!(t.entities().len(), t2.entities().len());
    assert!(sep_cq::cq_separable(&t2));
}
